"""Campaign execution: admit, reserve, dispatch, merge, finalize.

The control flow mirrors the run-level parallel scheduler one layer up
— experiments are the schedulable units:

1. **Admit**: :func:`repro.campaign.admission.plan_admission` computes
   the deterministic plan and ``admission.jsonl`` is written up front.
2. **Reserve**: every admitted window is booked on the *shared* pool
   calendar through :meth:`Allocator.reserve` — all-or-nothing, in
   decision order, so booking ids are deterministic.  Each placement
   also enqueues on the calendar wait-list of its nodes, in dispatch
   order.
3. **Dispatch**: a placement becomes eligible when it heads the
   wait-list of *every* node it booked and those nodes are FREE — i.e.
   all predecessors on its nodes have completed and released.  Eligible
   placements are claimed (reservation → live allocation) and handed to
   worker processes (``--jobs N``) or run inline (``--jobs 1``); both
   paths call the same :func:`repro.campaign.workload.run_placement`.
4. **Merge**: outcomes flow through a
   :class:`repro.core.scheduler.ReorderBuffer`, so campaign journal
   entries (and completion callbacks) land strictly in admission order
   no matter the completion order — the journal is byte-identical for
   any job count and a crash leaves a resumable prefix.
5. **Finalize**: campaign-level telemetry (``campaign.json``,
   ``campaign-trace.jsonl``) and the published index page are written
   as pure functions of the outcome set.

Resume (``--resume``) recomputes the plan (pure function of the spec),
replays the journal, and classifies each admitted experiment: journaled
ok → adopt; its own tree complete → adopt without invoking the
controller; trustworthy partial journal → controller-level resume;
anything else → wipe and re-run.  Boundary crashes therefore reproduce
byte-identical trees; a duplicated run directory is impossible.
"""

from __future__ import annotations

import os
import shutil
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.campaign.admission import AdmissionPlan, Placement, plan_admission
from repro.campaign.journal import CampaignJournal
from repro.campaign.spec import CampaignSpec, load_campaign_file
from repro.campaign import workload as _workload
from repro.core.allocation import Allocation, Allocator, Reservation
from repro.core.calendar import Calendar
from repro.core.errors import CampaignError
from repro.core.scheduler import ReorderBuffer, resolve_jobs
from repro.telemetry.campaign import CampaignTelemetry
from repro.testbed.node import Node, NodeState

__all__ = ["CampaignResult", "run_campaign", "campaign_status"]


@dataclass
class CampaignResult:
    """What a finished campaign returns."""

    name: str
    path: str
    admitted: int
    rejected: int
    experiments: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(entry.get("ok") for entry in self.experiments)

    @property
    def completed_experiments(self) -> int:
        return sum(1 for entry in self.experiments if entry.get("ok"))

    @property
    def failed_experiments(self) -> int:
        return sum(1 for entry in self.experiments if not entry.get("ok"))


def _build_pool(spec: CampaignSpec) -> Allocator:
    """The shared pool: bookkeeping nodes + the campaign calendar.

    The pool clock is pinned to the campaign's base epoch — virtual
    time, like everything else that feeds admission.
    """
    calendar = Calendar(clock=lambda: spec.base_epoch)
    nodes = {name: Node(name) for name in spec.pool}
    return Allocator(calendar, nodes)


def _classify(
    campaign_dir: str,
    spec: CampaignSpec,
    placement: Placement,
    journaled: Dict[int, dict],
    resume: bool,
) -> str:
    """Decide how one admitted experiment executes (or is adopted)."""
    if placement.execution_index in journaled:
        return "journaled"
    if not resume:
        return "fresh"
    expected = _workload.expected_result_dir(
        campaign_dir, spec.base_epoch, placement
    )
    state = _workload.inspect_result_dir(expected, placement.spec.run_count)
    if state == "complete":
        return "complete"
    if state == "partial":
        return "resume"
    return "fresh"


def _adopted_outcome(
    campaign_dir: str, spec: CampaignSpec, placement: Placement, how: str,
    journaled: Dict[int, dict],
) -> dict:
    """An outcome for an experiment that needs no execution."""
    if how == "journaled":
        entry = journaled[placement.execution_index]
        return {
            "index": placement.execution_index,
            "name": placement.spec.name,
            "user": placement.spec.user,
            "ok": True,
            "dir": entry.get("dir"),
            "runs_completed": int(entry.get("runs_completed", 0)),
            "runs_failed": int(entry.get("runs_failed", 0)),
            "error": None,
            "adopted": True,
            "journaled": True,
        }
    expected = _workload.expected_result_dir(
        campaign_dir, spec.base_epoch, placement
    )
    counts = _workload.completed_counts(expected)
    return {
        "index": placement.execution_index,
        "name": placement.spec.name,
        "user": placement.spec.user,
        "ok": True,
        "dir": os.path.relpath(expected, campaign_dir),
        "runs_completed": counts["runs_completed"],
        "runs_failed": counts["runs_failed"],
        "error": None,
        "adopted": True,
    }


def run_campaign(
    campaign: Union[str, CampaignSpec],
    results_dir: str,
    jobs: Optional[int] = None,
    resume: bool = False,
    on_experiment_complete: Optional[Callable[[dict], None]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    agents: Optional[int] = None,
) -> CampaignResult:
    """Run (or resume) a campaign against one shared simulated pool.

    ``agents`` > 0 executes each experiment's runs on the distributed
    plane (``agents`` loopback node agents per experiment) instead of
    inline — see :mod:`repro.dist`.  Orthogonal to ``jobs``, which
    controls how many *experiments* run concurrently.
    """
    spec = (
        load_campaign_file(campaign) if isinstance(campaign, str) else campaign
    )
    spec.validate()
    jobs = resolve_jobs(jobs)
    from repro.dist import resolve_agents

    agents = resolve_agents(agents)
    plan = plan_admission(spec)
    campaign_dir = os.path.abspath(results_dir)
    os.makedirs(campaign_dir, exist_ok=True)
    plan.write(campaign_dir)

    if resume:
        journal = CampaignJournal.open(campaign_dir)
        try:
            journal.validate_against(spec.name, len(plan.admitted))
            journaled = journal.completed()
        except Exception:
            journal.close()
            raise
    else:
        journal = CampaignJournal.create(
            campaign_dir, spec.name, len(plan.admitted)
        )
        journaled = {}

    telemetry = CampaignTelemetry(campaign_dir)
    result = CampaignResult(
        name=spec.name,
        path=campaign_dir,
        admitted=len(plan.admitted),
        rejected=len(plan.rejected),
    )
    total = len(plan.admitted)

    # -- reserve: shared pool calendar, decision order --------------------
    allocator = _build_pool(spec)
    calendar = allocator.calendar
    reservations: Dict[int, Reservation] = {}
    for placement in plan.admitted:
        reservations[placement.execution_index] = allocator.reserve(
            placement.spec.user,
            placement.nodes,
            placement.end - placement.start,
            start=spec.base_epoch + placement.start,
        )
    # Classify before enqueueing: adopted experiments never join the
    # wait-lists, so a tree that finished out of admission order (a
    # crash at --jobs > 1, or a repaired hole mid-campaign) cannot
    # wedge the queues of the experiments that still have to execute.
    how_by_index: Dict[int, str] = {
        placement.execution_index: _classify(
            campaign_dir, spec, placement, journaled, resume
        )
        for placement in plan.admitted
    }
    for placement in plan.dispatch_order():
        if how_by_index[placement.execution_index] in (
            "journaled", "complete"
        ):
            continue
        for node in placement.nodes:
            calendar.enqueue_waiter(node, placement.execution_index)

    # -- merge: journal entries strictly in admission order ---------------
    def deliver(index: int, outcome: dict) -> None:
        result.experiments.append(outcome)
        # An experiment adopted from the campaign journal already has
        # its entry; everything else — including a tree adopted from a
        # crashed-but-finished worker — is journalled now, in order.
        if not outcome.get("journaled"):
            journal.record_experiment(
                index,
                outcome["name"],
                outcome["user"],
                ok=bool(outcome["ok"]),
                result_dir=outcome.get("dir"),
                runs_completed=int(outcome.get("runs_completed", 0)),
                runs_failed=int(outcome.get("runs_failed", 0)),
                error=outcome.get("error"),
            )
        if progress is not None:
            progress(len(result.experiments), total)
        if on_experiment_complete is not None:
            on_experiment_complete(outcome)

    buffer = ReorderBuffer(total, deliver)

    # -- dispatch ----------------------------------------------------------
    claimed: Dict[int, Allocation] = {}
    by_index = {p.execution_index: p for p in plan.admitted}
    waiting: List[Placement] = []

    def finish(index: int) -> None:
        """Release one experiment's pool nodes; wait-lists advance."""
        allocation = claimed.pop(index, None)
        if allocation is not None:
            allocation.release()
        placement = by_index[index]
        for node in placement.nodes:
            if index in calendar.waiting(node):
                popped = calendar.pop_waiter(node)
                if popped != index:
                    raise CampaignError(
                        f"wait-list of node {node!r} out of order: expected "
                        f"{index}, found {popped}"
                    )

    def eligible(placement: Placement) -> bool:
        """Heads every booked node's wait-list and the nodes are FREE."""
        for node in placement.nodes:
            queue = calendar.waiting(node)
            if not queue or queue[0] != placement.execution_index:
                return False
            if allocator.nodes[node].state is not NodeState.FREE:
                return False
        return True

    try:
        for placement in plan.dispatch_order():
            how = how_by_index[placement.execution_index]
            if how in ("journaled", "complete"):
                # Never enqueued, nothing claimed: just deliver the
                # adopted outcome through the reorder buffer.
                buffer.put(
                    placement.execution_index,
                    _adopted_outcome(
                        campaign_dir, spec, placement, how, journaled
                    ),
                )
                continue
            if how == "fresh":
                expected = _workload.expected_result_dir(
                    campaign_dir, spec.base_epoch, placement
                )
                if os.path.isdir(expected):
                    # A tree without a trustworthy journal: wipe it so a
                    # re-run can never duplicate a run directory.
                    shutil.rmtree(expected)
            waiting.append(placement)
        buffer.drain()

        if jobs <= 1:
            # Inline path: dispatch order *is* completion order, through
            # exactly the same worker function as the process pool.
            for placement in waiting:
                if not eligible(placement):
                    raise CampaignError(
                        f"experiment {placement.spec.name!r} is not "
                        f"dispatchable; the admission plan is inconsistent"
                    )
                claimed[placement.execution_index] = allocator.claim(
                    reservations[placement.execution_index]
                )
                how = how_by_index[placement.execution_index]
                request = _workload.execution_request(
                    campaign_dir, spec.base_epoch, placement,
                    "resume" if how == "resume" else "fresh",
                    agents=agents,
                )
                outcome = _workload.run_placement(request)
                finish(placement.execution_index)
                buffer.put(placement.execution_index, outcome)
                buffer.drain()
        elif waiting:
            pending = list(waiting)
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {}

                def submit_ready() -> None:
                    remaining = []
                    for placement in pending:
                        if eligible(placement):
                            index = placement.execution_index
                            claimed[index] = allocator.claim(
                                reservations[index]
                            )
                            how = how_by_index[index]
                            request = _workload.execution_request(
                                campaign_dir, spec.base_epoch, placement,
                                "resume" if how == "resume" else "fresh",
                                agents=agents,
                            )
                            futures[
                                pool.submit(_workload.run_placement, request)
                            ] = index
                        else:
                            remaining.append(placement)
                    pending[:] = remaining

                submit_ready()
                while futures:
                    done, _ = wait(
                        list(futures), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        index = futures.pop(future)
                        outcome = future.result()
                        finish(index)
                        buffer.put(index, outcome)
                    submit_ready()
                    buffer.drain()

        if not buffer.complete():
            raise CampaignError(
                f"campaign finished with {total - buffer.next_index} "
                f"experiment(s) undelivered"
            )
        completion = {"event": "complete", "ok": result.ok}
        # Resuming a campaign that already finished must leave the
        # journal byte-identical — never stack a second completion.
        if completion not in journal.entries:
            journal.record_event("complete", ok=result.ok)
    finally:
        journal.close()

    # -- finalize: pure functions of the outcome set ----------------------
    telemetry.finalize(spec, plan, result.experiments)
    from repro.publication.website import generate_campaign_index

    generate_campaign_index(campaign_dir)
    return result


def campaign_status(campaign_dir: str) -> str:
    """One-shot textual status of a campaign directory, artifacts only."""
    import json

    admission_path = os.path.join(campaign_dir, "admission.jsonl")
    if not os.path.isfile(admission_path):
        raise CampaignError(f"no admission log at {admission_path}")
    decisions: List[dict] = []
    with open(admission_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                decisions.append(json.loads(line))
            except ValueError:
                break
    journaled: Dict[int, dict] = {}
    header: dict = {}
    journal_path = os.path.join(campaign_dir, "journal.jsonl")
    complete = False
    if os.path.isfile(journal_path):
        with open(journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    break
                if entry.get("event") == "campaign":
                    header = entry
                elif entry.get("event") == "experiment":
                    journaled[int(entry["index"])] = entry
                elif entry.get("event") == "complete":
                    complete = True
    lines = []
    name = header.get("name", os.path.basename(campaign_dir))
    lines.append(f"campaign: {name}")
    admitted = [d for d in decisions if d.get("event") == "admit"]
    rejected = [d for d in decisions if d.get("event") == "reject"]
    lines.append(
        f"admitted: {len(admitted)}  rejected: {len(rejected)}  "
        f"finished: {len(journaled)}/{len(admitted)}"
        + ("  [complete]" if complete else "")
    )
    for decision in admitted:
        index = int(decision.get("execution", 0))
        entry = journaled.get(index)
        if entry is None:
            state = "pending"
        elif entry.get("ok"):
            state = (
                f"ok ({entry.get('runs_completed', 0)} runs)"
            )
        else:
            state = f"FAILED ({entry.get('error')})"
        lines.append(
            f"  [{index}] {decision['user']}/{decision['experiment']} "
            f"nodes={','.join(decision['nodes'])} "
            f"window=[{decision['start']}, {decision['end']}) -> {state}"
        )
    for decision in rejected:
        lines.append(
            f"  [-] {decision['user']}/{decision['experiment']} "
            f"REJECTED ({decision['reason']})"
        )
    return "\n".join(lines) + "\n"
