"""Multi-tenant experiment campaigns over one shared node pool.

pos is a multi-user testbed: "we use an integrated calendar to
temporally separate the experimental devices between users" (Sec. 4.4).
A *campaign* makes that contention real inside the reproduction: N
experiment specs — each with its own user, node requirements, priority
and deadline — are admitted through the calendar (all-or-nothing
booking, half-open intervals, priority + backfill + per-user fairness)
and executed concurrently against one simulated pool, with every
artifact byte-identical for any ``--jobs N`` and across crash+resume.
"""

from repro.campaign.admission import AdmissionPlan, plan_admission
from repro.campaign.journal import CampaignJournal
from repro.campaign.scheduler import CampaignResult, campaign_status, run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    ExperimentSpec,
    load_campaign,
    load_campaign_file,
)

__all__ = [
    "AdmissionPlan",
    "CampaignJournal",
    "CampaignResult",
    "CampaignSpec",
    "ExperimentSpec",
    "campaign_status",
    "load_campaign",
    "load_campaign_file",
    "plan_admission",
    "run_campaign",
]
