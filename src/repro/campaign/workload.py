"""Campaign experiment workloads and their isolated worker worlds.

Each admitted experiment executes in a *fresh* simulated world — its
own hosts (named after the pool nodes the admission plan assigned),
power controllers, transports, calendar, allocator and controller — so
concurrent experiments share nothing but the parent's bookkeeping.
Everything a worker needs crosses the process boundary as a plain dict
(:func:`execution_request`), and :func:`run_placement` is module-level
so it pickles by reference, exactly like the run-level scheduler's
worker factories.

Determinism: the world is a pure function of the request, the
controller's result-store clock is pinned to the experiment's *virtual
admission epoch* (base epoch + planned start), and the workload scripts
are fixed commands over the spec's loop variable — so the artifact tree
of an experiment depends only on the admission plan, never on which
worker ran it or when.
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, List, Optional

from repro.campaign.admission import Placement
from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.errors import JournalError, PosError
from repro.core.experiment import Experiment, Role
from repro.core.journal import RunJournal
from repro.core.results import ResultStore, format_timestamp
from repro.core.scripts import CommandScript
from repro.core.variables import Variables
from repro.netsim.host import SimHost
from repro.testbed.images import default_registry
from repro.testbed.node import Node
from repro.testbed.power import IpmiController
from repro.testbed.transport import SshTransport

__all__ = [
    "EXPERIMENTS_SUBDIR",
    "build_campaign_experiment",
    "execution_request",
    "expected_result_dir",
    "inspect_result_dir",
    "run_placement",
]

#: Where per-experiment result trees live inside a campaign directory.
EXPERIMENTS_SUBDIR = "experiments"


def build_campaign_experiment(
    name: str, node_names: List[str], duration: float, rates: List[int],
    loop: Optional[Dict[str, List[object]]] = None,
) -> Experiment:
    """A deterministic sweep workload over the assigned nodes.

    One role per node; every role synchronizes on the setup barrier and
    echoes a fixed measurement line per loop instance, so the captured
    artifacts are a pure function of (name, nodes, rates/loop).

    Without ``loop`` this is the classic single-variable sweep (one run
    per rate).  With ``loop`` the measurement sweeps the full cross
    product of the given variables and echoes every ``name=value``
    assignment, so downstream evaluation can parse the whole loop
    instance back out of the captured ``pos.log``/``commands.log``.
    """
    if loop is None:
        loop_vars: Dict[str, List[object]] = {"pkt_rate": list(rates)}
        measure = "echo {name} measuring at $pkt_rate on {node}"
    else:
        loop_vars = {variable: list(levels) for variable, levels in loop.items()}
        assignments = " ".join(
            f"{variable}=${variable}" for variable in loop_vars
        )
        measure = "echo {name} measuring " + assignments + " on {node}"
    roles = [
        Role(
            name=f"role-{node}",
            node=node,
            setup=CommandScript(
                f"setup-{node}",
                ["sysctl -w net.ipv4.ip_forward=1", "pos barrier setup-done"],
            ),
            measurement=CommandScript(
                f"measure-{node}",
                [measure.format(name=name, node=node)],
            ),
        )
        for node in sorted(node_names)
    ]
    return Experiment(
        name=name,
        roles=roles,
        variables=Variables(loop_vars=loop_vars),
        duration_s=duration,
    )


def execution_request(
    campaign_dir: str, base_epoch: float, placement: Placement, mode: str,
    agents: Optional[int] = None,
) -> dict:
    """The plain-dict work order shipped to a worker process.

    ``agents`` > 0 makes the worker execute its experiment's runs on
    the fault-tolerant distributed plane (:mod:`repro.dist`) instead of
    inline — campaigns ride the same controller → node-agent split as
    single experiments, and the artifact tree stays byte-identical.
    """
    return {
        "campaign_dir": campaign_dir,
        "index": placement.execution_index,
        "name": placement.spec.name,
        "user": placement.spec.user,
        "nodes": list(placement.nodes),
        "duration": placement.spec.duration,
        "rates": list(placement.spec.rates),
        "loop": (
            None if placement.spec.loop is None
            else {
                variable: list(levels)
                for variable, levels in placement.spec.loop.items()
            }
        ),
        "epoch": base_epoch + placement.start,
        "mode": mode,
        "agents": int(agents) if agents else 0,
    }


def expected_result_dir(
    campaign_dir: str, base_epoch: float, placement: Placement,
) -> str:
    """The deterministic result path an admitted experiment will use."""
    return os.path.join(
        campaign_dir,
        EXPERIMENTS_SUBDIR,
        placement.spec.user,
        placement.spec.name,
        format_timestamp(base_epoch + placement.start),
    )


def inspect_result_dir(path: str, total_runs: int) -> str:
    """Classify an experiment directory for resume.

    Returns ``"missing"`` (no directory or no readable journal — any
    partial tree is deleted and the experiment re-runs from scratch),
    ``"complete"`` (its own journal records every run ok and a complete
    marker — the tree is adopted untouched, without invoking the
    controller), or ``"partial"`` (a trustworthy journal prefix exists —
    the controller resumes it, adopting completed runs).
    """
    if not os.path.isdir(path):
        return "missing"
    try:
        journal = RunJournal.open(path)
    except JournalError:
        shutil.rmtree(path)
        return "missing"
    try:
        completed = journal.completed()
        finished = any(
            entry.get("event") == "complete" and entry.get("ok")
            for entry in journal.entries
        )
    finally:
        journal.close()
    if finished and len(completed) >= total_runs:
        return "complete"
    return "partial"


def completed_counts(path: str) -> Dict[str, int]:
    """Run statistics of a finished experiment, from its journal alone."""
    journal = RunJournal.open(path)
    try:
        runs = journal.run_entries()
        latest: Dict[int, dict] = {}
        for entry in runs:
            latest[int(entry["index"])] = entry
        ok = sum(1 for entry in latest.values() if entry.get("ok"))
        return {"runs_completed": ok, "runs_failed": len(latest) - ok}
    finally:
        journal.close()


def _build_world(node_names: List[str]) -> Dict[str, Node]:
    """Fresh simulated hosts named after the assigned pool nodes."""
    nodes: Dict[str, Node] = {}
    for name in sorted(node_names):
        host = SimHost(name)
        nodes[name] = Node(
            name,
            host=host,
            power=IpmiController(host),
            transport=SshTransport(host),
        )
    return nodes


def _campaign_worker_world(node_names: List[str]) -> "WorkerWorld":
    """One node agent's isolated world for a campaign experiment.

    Module-level so the :class:`~repro.core.scheduler.WorkerEnv` recipe
    pickles by reference, exactly like the case study's worker factory.
    A fresh set of simulated hosts per call — agents share nothing.
    """
    from repro.core.scheduler import WorkerWorld

    return WorkerWorld(
        nodes=_build_world(node_names),
        images=default_registry(),
        context_extra={},
        fault_injector=None,
    )


def run_placement(request: dict) -> dict:
    """Execute one admitted experiment in an isolated world.

    Runs inside a worker process (or inline for ``--jobs 1`` — same
    function, same world, same artifacts).  Returns a picklable outcome
    dict; the campaign journal entry is derived from it by the parent,
    in admission order, through the reorder buffer.
    """
    campaign_dir = request["campaign_dir"]
    epoch = float(request["epoch"])
    nodes = _build_world(request["nodes"])
    calendar = Calendar(clock=lambda: epoch)
    allocator = Allocator(calendar, nodes)
    results = ResultStore(
        os.path.join(campaign_dir, EXPERIMENTS_SUBDIR), clock=lambda: epoch
    )
    controller = Controller(allocator, default_registry(), results)
    experiment = build_campaign_experiment(
        request["name"], request["nodes"], request["duration"],
        request["rates"], loop=request.get("loop"),
    )
    outcome = {
        "index": request["index"],
        "name": request["name"],
        "user": request["user"],
        "ok": False,
        "dir": None,
        "runs_completed": 0,
        "runs_failed": 0,
        "error": None,
        "adopted": False,
    }
    agents = int(request.get("agents") or 0)
    extra: dict = {}
    if agents > 0:
        from repro.core.scheduler import WorkerEnv

        # Campaigns always fan out over the loopback transport: it is
        # deterministic, and a campaign worker may itself be a pool
        # subprocess that must not spawn grandchildren.
        extra = {
            "jobs": 1,  # agents and jobs are mutually exclusive planes
            "agents": agents,
            "transport": "loopback",
            "worker_env": WorkerEnv(
                factory=_campaign_worker_world,
                kwargs={"node_names": sorted(request["nodes"])},
            ),
        }
    result_path: Optional[str] = None
    try:
        if request["mode"] == "resume":
            result_path = os.path.join(
                campaign_dir,
                EXPERIMENTS_SUBDIR,
                request["user"],
                request["name"],
                format_timestamp(epoch),
            )
            handle = controller.resume(
                experiment, result_path, user=request["user"], **extra
            )
        else:
            handle = controller.run(experiment, user=request["user"], **extra)
        result_path = handle.result_path
        outcome["ok"] = handle.failed_runs == 0 and not handle.aborted
        outcome["runs_completed"] = handle.completed_runs
        outcome["runs_failed"] = handle.failed_runs
    except PosError as exc:
        outcome["error"] = str(exc)
    if result_path is not None:
        outcome["dir"] = os.path.relpath(result_path, campaign_dir)
    return outcome
