"""Campaign specification: N experiments, one shared node pool.

A campaign file is a YAML document (parsed by the built-in
:mod:`repro.core.yamlite` subset) describing the pool and the submitted
experiments::

    name: winter-sweep
    pool: [alpha, beta, gamma]
    base_epoch: 1600000000
    max_active_per_user: 2
    experiments:
      - name: router-sweep
        user: alice
        nodes: 2            # node count, or an explicit list of names
        duration: 120       # virtual seconds booked on the calendar
        priority: 10        # larger runs earlier; default 0
        deadline: 600       # optional: latest allowed virtual end
        rates: [100, 200]   # loop-variable values, one run per rate

Everything that feeds admission is explicit and ordered, so the
admission plan is a pure function of this file: the experiment's
position in the list is its submit index, the deterministic tie-breaker
after priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core import yamlite
from repro.core.errors import CampaignError

__all__ = [
    "DEFAULT_BASE_EPOCH",
    "CampaignSpec",
    "ExperimentSpec",
    "load_campaign",
    "load_campaign_file",
]

#: Virtual campaign epoch: all calendar time is relative to this, so the
#: result-tree timestamps are a pure function of the spec.
DEFAULT_BASE_EPOCH = 1_600_000_000.0


@dataclass
class ExperimentSpec:
    """One submitted experiment: who wants what, for how long."""

    name: str
    user: str
    nodes: Union[int, List[str]]
    duration: float
    submit_index: int = 0
    priority: int = 0
    deadline: Optional[float] = None
    rates: List[int] = field(default_factory=lambda: [100, 200])
    #: Generic loop variables (name -> ordered level list).  When set,
    #: the workload sweeps the full cross product of these instead of
    #: the classic single ``pkt_rate`` sweep over ``rates`` — this is
    #: how a study's factorial cells ride the campaign plane.
    loop: Optional[Dict[str, List[object]]] = None

    @property
    def node_count(self) -> int:
        return self.nodes if isinstance(self.nodes, int) else len(self.nodes)

    @property
    def run_count(self) -> int:
        """Measurement runs this experiment expands into."""
        if self.loop is None:
            return len(self.rates)
        count = 1
        for levels in self.loop.values():
            count *= len(levels)
        return count

    def describe(self) -> dict:
        info = {
            "name": self.name,
            "user": self.user,
            "nodes": self.nodes,
            "duration": self.duration,
            "priority": self.priority,
            "rates": list(self.rates),
        }
        if self.deadline is not None:
            info["deadline"] = self.deadline
        if self.loop is not None:
            info["loop"] = {name: list(levels) for name, levels in self.loop.items()}
        return info


@dataclass
class CampaignSpec:
    """The whole campaign: pool, fairness policy, submitted experiments."""

    name: str
    pool: List[str]
    experiments: List[ExperimentSpec]
    base_epoch: float = DEFAULT_BASE_EPOCH
    max_active_per_user: Optional[int] = None

    def validate(self) -> None:
        if not self.name:
            raise CampaignError("campaign needs a name")
        if not self.pool:
            raise CampaignError("campaign needs a non-empty node pool")
        if len(set(self.pool)) != len(self.pool):
            raise CampaignError(f"duplicate nodes in pool: {self.pool}")
        if not self.experiments:
            raise CampaignError("campaign submits no experiments")
        if self.max_active_per_user is not None and self.max_active_per_user < 1:
            raise CampaignError("max_active_per_user must be at least 1")
        pool = set(self.pool)
        seen = set()
        for spec in self.experiments:
            if not spec.name:
                raise CampaignError("every experiment needs a name")
            if (spec.user, spec.name) in seen:
                raise CampaignError(
                    f"duplicate experiment {spec.name!r} for user {spec.user!r}"
                )
            seen.add((spec.user, spec.name))
            if not spec.user:
                raise CampaignError(f"experiment {spec.name!r} needs a user")
            if spec.duration <= 0:
                raise CampaignError(
                    f"experiment {spec.name!r}: duration must be positive"
                )
            if spec.deadline is not None and spec.deadline < spec.duration:
                raise CampaignError(
                    f"experiment {spec.name!r}: deadline {spec.deadline} is "
                    f"shorter than its duration {spec.duration}"
                )
            if not spec.rates:
                raise CampaignError(f"experiment {spec.name!r}: empty rates")
            if spec.loop is not None:
                if not spec.loop:
                    raise CampaignError(
                        f"experiment {spec.name!r}: loop must define at "
                        f"least one variable"
                    )
                for variable, levels in spec.loop.items():
                    if not isinstance(variable, str) or not variable.isidentifier():
                        raise CampaignError(
                            f"experiment {spec.name!r}: loop variable "
                            f"{variable!r} is not a valid identifier"
                        )
                    if not isinstance(levels, list) or not levels:
                        raise CampaignError(
                            f"experiment {spec.name!r}: loop variable "
                            f"{variable!r} needs a non-empty level list"
                        )
                    for level in levels:
                        if isinstance(level, bool) or not isinstance(
                            level, (int, float, str)
                        ):
                            raise CampaignError(
                                f"experiment {spec.name!r}: loop variable "
                                f"{variable!r} has non-scalar level {level!r}"
                            )
            if isinstance(spec.nodes, int):
                if spec.nodes < 1:
                    raise CampaignError(
                        f"experiment {spec.name!r}: node count must be >= 1"
                    )
                if spec.nodes > len(self.pool):
                    raise CampaignError(
                        f"experiment {spec.name!r} wants {spec.nodes} nodes, "
                        f"the pool has {len(self.pool)}"
                    )
            else:
                if not spec.nodes:
                    raise CampaignError(
                        f"experiment {spec.name!r}: empty node list"
                    )
                if len(set(spec.nodes)) != len(spec.nodes):
                    raise CampaignError(
                        f"experiment {spec.name!r}: duplicate nodes {spec.nodes}"
                    )
                unknown = sorted(set(spec.nodes) - pool)
                if unknown:
                    raise CampaignError(
                        f"experiment {spec.name!r} references nodes outside "
                        f"the pool: {', '.join(unknown)}"
                    )

    def describe(self) -> dict:
        info = {
            "name": self.name,
            "pool": list(self.pool),
            "base_epoch": self.base_epoch,
            "experiments": [spec.describe() for spec in self.experiments],
        }
        if self.max_active_per_user is not None:
            info["max_active_per_user"] = self.max_active_per_user
        return info


def _as_float(value, what: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise CampaignError(f"{what} must be a number, got {value!r}") from None


def _as_int(value, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise CampaignError(f"{what} must be an integer, got {value!r}")
    return value


def load_campaign(document) -> CampaignSpec:
    """Build a validated :class:`CampaignSpec` from a parsed document."""
    if not isinstance(document, dict):
        raise CampaignError("campaign file must be a mapping at the top level")
    raw_experiments = document.get("experiments")
    if not isinstance(raw_experiments, list):
        raise CampaignError("campaign file needs an 'experiments' list")
    experiments: List[ExperimentSpec] = []
    for position, raw in enumerate(raw_experiments):
        if not isinstance(raw, dict):
            raise CampaignError(f"experiment #{position} must be a mapping")
        nodes = raw.get("nodes", 1)
        if isinstance(nodes, list):
            nodes = [str(node) for node in nodes]
        else:
            nodes = _as_int(nodes, f"experiment #{position}: nodes")
        deadline = raw.get("deadline")
        rates = raw.get("rates", [100, 200])
        if not isinstance(rates, list):
            raise CampaignError(f"experiment #{position}: rates must be a list")
        loop = raw.get("loop")
        if loop is not None:
            if not isinstance(loop, dict):
                raise CampaignError(
                    f"experiment #{position}: loop must be a mapping"
                )
            loop = {
                str(variable): (
                    list(levels) if isinstance(levels, list) else [levels]
                )
                for variable, levels in loop.items()
            }
        experiments.append(
            ExperimentSpec(
                name=str(raw.get("name", "")),
                user=str(raw.get("user", "")),
                nodes=nodes,
                duration=_as_float(
                    raw.get("duration", 0), f"experiment #{position}: duration"
                ),
                submit_index=position,
                priority=_as_int(
                    raw.get("priority", 0), f"experiment #{position}: priority"
                ),
                deadline=(
                    None if deadline is None
                    else _as_float(deadline, f"experiment #{position}: deadline")
                ),
                rates=[
                    _as_int(rate, f"experiment #{position}: rate") for rate in rates
                ],
                loop=loop,
            )
        )
    pool = document.get("pool")
    if not isinstance(pool, list):
        raise CampaignError("campaign file needs a 'pool' list of node names")
    spec = CampaignSpec(
        name=str(document.get("name", "")),
        pool=[str(node) for node in pool],
        experiments=experiments,
        base_epoch=_as_float(
            document.get("base_epoch", DEFAULT_BASE_EPOCH), "base_epoch"
        ),
        max_active_per_user=(
            None if document.get("max_active_per_user") is None
            else _as_int(document["max_active_per_user"], "max_active_per_user")
        ),
    )
    spec.validate()
    return spec


def load_campaign_file(path: str) -> CampaignSpec:
    """Parse and validate a campaign YAML file."""
    try:
        document = yamlite.load_file(path)
    except OSError as exc:
        raise CampaignError(f"cannot read campaign file {path}: {exc}") from exc
    return load_campaign(document)
