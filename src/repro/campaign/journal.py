"""Crash-safe campaign journal.

Same mechanics as the per-experiment run journal (append-only JSON
lines, flushed and fsynced per record, torn tails truncated on open),
one level up: a header describing the campaign, then one record per
*experiment* as it completes — appended strictly in admission decision
order through the reorder buffer, so a crash at any instant leaves a
prefix that resume understands and the journal bytes are identical for
any ``--jobs N``.  Resume never writes markers into this file: after a
crash+resume the journal is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.core.errors import JournalError
from repro.core.journal import JOURNAL_NAME, JsonlJournal

__all__ = ["CampaignJournal"]


class CampaignJournal(JsonlJournal):
    """Append-only, fsync'd record of finished campaign experiments."""

    @classmethod
    def create(cls, campaign_dir: str, campaign: str, total: int)\
            -> "CampaignJournal":
        """Start a fresh journal for a new campaign execution."""
        journal = cls(os.path.join(campaign_dir, JOURNAL_NAME))
        journal._open("w")
        journal._append(
            {"event": "campaign", "name": campaign, "total_experiments": total}
        )
        return journal

    @classmethod
    def open(cls, campaign_dir: str) -> "CampaignJournal":
        """Load an existing campaign journal, keeping it appendable."""
        path = os.path.join(campaign_dir, JOURNAL_NAME)
        journal = cls._load(path)
        if not journal.entries or journal.entries[0].get("event") != "campaign":
            raise JournalError(f"journal {path} has no campaign header")
        return journal

    # -- writing -------------------------------------------------------------

    def record_experiment(
        self,
        index: int,
        name: str,
        user: str,
        ok: bool,
        result_dir: Optional[str] = None,
        runs_completed: int = 0,
        runs_failed: int = 0,
        error: Optional[str] = None,
    ) -> None:
        """Record one finished experiment durably."""
        entry: Dict[str, Any] = {
            "event": "experiment",
            "index": index,
            "name": name,
            "user": user,
            "ok": ok,
            "runs_completed": runs_completed,
            "runs_failed": runs_failed,
        }
        if result_dir is not None:
            entry["dir"] = result_dir
        if error is not None:
            entry["error"] = error
        self._append(entry)

    # -- reading -------------------------------------------------------------

    def experiment_entries(self) -> List[dict]:
        return [
            entry for entry in self.entries if entry.get("event") == "experiment"
        ]

    def completed(self) -> Dict[int, dict]:
        """Latest journal entry per execution index that finished ok."""
        latest: Dict[int, dict] = {}
        for entry in self.experiment_entries():
            latest[int(entry["index"])] = entry
        return {
            index: entry
            for index, entry in latest.items()
            if entry.get("ok", False)
        }

    def validate_against(self, campaign: str, total: int) -> None:
        """Refuse to resume a journal written by a different campaign."""
        header = self.header
        if header.get("name") != campaign:
            raise JournalError(
                f"journal belongs to campaign {header.get('name')!r}, "
                f"not {campaign!r}"
            )
        if header.get("total_experiments") != total:
            raise JournalError(
                f"journal expects {header.get('total_experiments')} "
                f"experiments, the plan admits {total} — refusing to resume"
            )
