"""Deterministic campaign admission: priority, backfill, fairness.

Admission is a *pure function* of the campaign spec.  Experiments are
considered in priority order (larger first; the submit index breaks
ties), and each one is placed at the earliest virtual time at which

* every requested node is free for the whole window (all-or-nothing,
  half-open ``[start, end)`` — the calendar's rule),
* the user stays under the per-user fairness cap of concurrently
  planned experiments, and
* an optional deadline (latest allowed virtual end) is met; an
  experiment that cannot finish by its deadline is rejected with a
  recorded reason rather than silently delayed.

Scanning candidate start times in ascending order over the event points
of the partial plan is conservative backfill: a small low-priority
experiment slots into a calendar gap left by larger ones, but never
delays an experiment already placed.  Node selection for count-based
requests is first-fit over the *sorted* pool names, so the whole plan —
admission order, windows, node assignment — is byte-identical on every
machine and every run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.campaign.spec import CampaignSpec, ExperimentSpec

__all__ = ["ADMISSION_NAME", "Placement", "Rejection", "AdmissionPlan", "plan_admission"]

ADMISSION_NAME = "admission.jsonl"


@dataclass
class Placement:
    """One admitted experiment: its window and assigned nodes."""

    spec: ExperimentSpec
    start: float
    end: float
    nodes: List[str]
    decision_index: int
    execution_index: int

    def overlaps(self, start: float, end: float) -> bool:
        return self.start < end and start < self.end

    def entry(self) -> dict:
        return {
            "event": "admit",
            "decision": self.decision_index,
            "execution": self.execution_index,
            "experiment": self.spec.name,
            "user": self.spec.user,
            "submit_index": self.spec.submit_index,
            "priority": self.spec.priority,
            "start": self.start,
            "end": self.end,
            "nodes": list(self.nodes),
        }


@dataclass
class Rejection:
    """One rejected experiment and why it could not be placed."""

    spec: ExperimentSpec
    reason: str
    decision_index: int

    def entry(self) -> dict:
        return {
            "event": "reject",
            "decision": self.decision_index,
            "experiment": self.spec.name,
            "user": self.spec.user,
            "submit_index": self.spec.submit_index,
            "priority": self.spec.priority,
            "reason": self.reason,
        }


@dataclass
class AdmissionPlan:
    """The full admission decision list, in decision order."""

    spec: CampaignSpec
    admitted: List[Placement] = field(default_factory=list)
    rejected: List[Rejection] = field(default_factory=list)

    def entries(self) -> List[dict]:
        """All decisions — admissions and rejections — in decision order."""
        decisions: List[Tuple[int, dict]] = [
            (placement.decision_index, placement.entry())
            for placement in self.admitted
        ]
        decisions.extend(
            (rejection.decision_index, rejection.entry())
            for rejection in self.rejected
        )
        return [entry for _, entry in sorted(decisions, key=lambda item: item[0])]

    def write(self, campaign_dir: str) -> str:
        """Write ``admission.jsonl``: one decision per line, fsynced.

        The write is atomic (temp file + :func:`os.replace`): a crash
        mid-write can never leave a torn admission log behind — readers
        see either the previous complete plan or the new one.  The plan
        is a pure function of the spec, so a resume that recomputes and
        rewrites it produces identical bytes either way; atomicity
        protects the *observers* (``pos campaign status``, the health
        plane) that read the log while a campaign starts up.
        """
        path = os.path.join(campaign_dir, ADMISSION_NAME)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for entry in self.entries():
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        return path

    def dispatch_order(self) -> List[Placement]:
        """Placements in execution order: by window start, then decision."""
        return sorted(
            self.admitted, key=lambda p: (p.start, p.decision_index)
        )

    def predecessors(self, placement: Placement) -> List[Placement]:
        """Admitted experiments whose earlier window shares a node.

        The calendar guarantees per-node windows never overlap, so the
        windows of two placements sharing a node are totally ordered —
        dispatching an experiment strictly after its predecessors have
        released their nodes can never deadlock.
        """
        mine = set(placement.nodes)
        return [
            other
            for other in self.admitted
            if other is not placement
            and mine & set(other.nodes)
            and (other.start, other.decision_index)
            < (placement.start, placement.decision_index)
        ]


def _free_nodes_during(
    pool: List[str],
    busy: Dict[str, List[Placement]],
    start: float,
    end: float,
) -> List[str]:
    """Pool nodes (sorted) with no planned window overlapping [start, end)."""
    return [
        node
        for node in sorted(pool)
        if not any(p.overlaps(start, end) for p in busy.get(node, []))
    ]


def plan_admission(spec: CampaignSpec) -> AdmissionPlan:
    """Compute the deterministic admission plan for a campaign spec."""
    spec.validate()
    plan = AdmissionPlan(spec=spec)
    order = sorted(
        spec.experiments, key=lambda e: (-e.priority, e.submit_index)
    )
    busy: Dict[str, List[Placement]] = {}
    per_user: Dict[str, List[Placement]] = {}
    cap = spec.max_active_per_user
    for decision_index, experiment in enumerate(order):
        duration = experiment.duration
        # Candidate start times: the plan's event points.  Any feasible
        # start can be shifted left onto the previous event point while
        # staying feasible, so scanning these ascending finds the true
        # earliest placement (conservative backfill).
        points: Set[float] = {0.0}
        points.update(p.end for p in plan.admitted)
        placed: Optional[Placement] = None
        deadline_blocked = False
        for start in sorted(points):
            end = start + duration
            if experiment.deadline is not None and end > experiment.deadline:
                deadline_blocked = True
                break  # points ascend; later candidates only end later
            if cap is not None:
                active = sum(
                    1
                    for p in per_user.get(experiment.user, [])
                    if p.overlaps(start, end)
                )
                if active >= cap:
                    continue
            free = _free_nodes_during(spec.pool, busy, start, end)
            if isinstance(experiment.nodes, int):
                if len(free) < experiment.nodes:
                    continue
                nodes = free[: experiment.nodes]
            else:
                if any(node not in free for node in experiment.nodes):
                    continue
                nodes = sorted(experiment.nodes)
            placed = Placement(
                spec=experiment,
                start=start,
                end=end,
                nodes=nodes,
                decision_index=decision_index,
                execution_index=len(plan.admitted),
            )
            break
        if placed is None:
            if deadline_blocked:
                reason = (
                    f"cannot finish by deadline {experiment.deadline}: no "
                    f"feasible window ends in time"
                )
            else:
                reason = "no feasible window in the pool"
            plan.rejected.append(
                Rejection(
                    spec=experiment, reason=reason, decision_index=decision_index
                )
            )
            continue
        plan.admitted.append(placed)
        for node in placed.nodes:
            busy.setdefault(node, []).append(placed)
        per_user.setdefault(experiment.user, []).append(placed)
    return plan
