"""OSNT hardware packet generator model.

Section 4.2 of the paper: "Our flexible testbed architecture also
enables the integration of hardware packet generators, such as OSNT.
OSNT is based on the NetFPGA platform, which can be integrated into
experiment hosts as PCIe cards."

The distinguishing property of a hardware generator is precision: the
FPGA emits frames with essentially no software jitter and timestamps
every frame (not a sampled subset) with nanosecond resolution.  The
model therefore reuses the MoonGen job/report structures but generates
perfectly spaced traffic and samples every packet's latency.
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.loadgen.moongen import MoonGen, MoonGenJob

from repro.netsim.engine import Simulator
from repro.netsim.nic import HardwareNic, Nic
from repro.netsim.packet import Packet

__all__ = ["Osnt"]


class Osnt(MoonGen):
    """NetFPGA-based generator: zero-jitter CBR, per-packet timestamps."""

    latency_sample_every = 1

    def __init__(self, sim: Simulator, tx_nic: Nic, rx_nic: Nic):
        if not isinstance(tx_nic, HardwareNic) or not isinstance(rx_nic, HardwareNic):
            raise SimulationError(
                "OSNT is a PCIe NetFPGA card; it needs hardware NIC ports"
            )
        super().__init__(sim, tx_nic, rx_nic, seed=0)

    def start(
        self,
        rate_pps: float,
        frame_size: int,
        duration_s: float,
        pattern: str = "cbr",
        interval_s: float = 1.0,
    ) -> MoonGenJob:
        if pattern != "cbr":
            raise SimulationError("OSNT generates constant-bit-rate traffic only")
        return super().start(
            rate_pps=rate_pps,
            frame_size=frame_size,
            duration_s=duration_s,
            pattern="cbr",
            interval_s=interval_s,
        )

    def _send_next(self) -> None:
        job = self._job
        if job is None or job.finished or self.sim.now >= self._deadline:
            return
        self._roll_interval()
        packet = Packet(seq=self._seq, frame_size=job.frame_size)
        self._seq += 1
        # Hardware timestamping of *every* frame.
        packet.tx_time = self.sim.now
        if self.tx_nic.transmit(packet):
            job.tx_packets += 1
            job.tx_bytes += packet.frame_size
            if self._interval is not None:
                self._interval.tx_packets += 1
                self._interval.tx_bytes += packet.frame_size
        self.sim.schedule(1.0 / job.rate_pps, self._send_next)
