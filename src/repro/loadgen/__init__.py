"""Load generators: MoonGen (primary), iPerf, OSNT, and pcap replay."""

from repro.loadgen.iperf import Iperf, IperfJob, format_iperf_report
from repro.loadgen.moongen import (
    MoonGen,
    MoonGenJob,
    format_report,
    latency_histogram_csv,
)
from repro.loadgen.osnt import Osnt
from repro.loadgen.pcap import (
    PcapRecord,
    PcapRecorder,
    PcapReplayer,
    read_pcap,
    write_pcap,
)

__all__ = [
    "Iperf",
    "IperfJob",
    "format_iperf_report",
    "MoonGen",
    "MoonGenJob",
    "format_report",
    "latency_histogram_csv",
    "Osnt",
    "PcapRecord",
    "PcapRecorder",
    "PcapReplayer",
    "read_pcap",
    "write_pcap",
]
