"""Minimal pcap file format support and trace replay.

Besides synthetic traffic, pos experiments "use pcaps of recorded
traffic".  This module implements the classic libpcap file format
(magic ``0xa1b2c3d4``, microsecond timestamps) from scratch — enough to
write captures taken in the simulator, read them back, and replay a
trace through a load-generator port with its original inter-arrival
timing (or at a fixed rate).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.errors import ParseError, SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.nic import Nic
from repro.netsim.packet import MIN_FRAME_SIZE, MAX_FRAME_SIZE, Packet

__all__ = ["PcapRecord", "write_pcap", "read_pcap", "PcapReplayer", "PcapRecorder"]

_MAGIC = 0xA1B2C3D4
_VERSION_MAJOR = 2
_VERSION_MINOR = 4
_LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass
class PcapRecord:
    """One captured frame: a timestamp and its bytes."""

    timestamp_s: float
    data: bytes

    @property
    def frame_size(self) -> int:
        return len(self.data)


def write_pcap(path, records: Iterable[PcapRecord], snaplen: int = 65535) -> None:
    """Write records to a classic pcap file."""
    with open(path, "wb") as handle:
        handle.write(
            _GLOBAL_HEADER.pack(
                _MAGIC, _VERSION_MAJOR, _VERSION_MINOR, 0, 0, snaplen, _LINKTYPE_ETHERNET
            )
        )
        for record in records:
            seconds = int(record.timestamp_s)
            micros = int(round((record.timestamp_s - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            captured = record.data[:snaplen]
            handle.write(
                _RECORD_HEADER.pack(seconds, micros, len(captured), len(record.data))
            )
            handle.write(captured)


def read_pcap(path) -> List[PcapRecord]:
    """Read a classic pcap file; rejects anything but the supported dialect."""
    with open(path, "rb") as handle:
        raw = handle.read()
    if len(raw) < _GLOBAL_HEADER.size:
        raise ParseError(f"{path}: truncated pcap global header")
    magic, major, minor, __, __, __, linktype = _GLOBAL_HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise ParseError(f"{path}: unsupported pcap magic 0x{magic:08x}")
    if (major, minor) != (_VERSION_MAJOR, _VERSION_MINOR):
        raise ParseError(f"{path}: unsupported pcap version {major}.{minor}")
    if linktype != _LINKTYPE_ETHERNET:
        raise ParseError(f"{path}: unsupported link type {linktype}")
    records: List[PcapRecord] = []
    offset = _GLOBAL_HEADER.size
    while offset < len(raw):
        if offset + _RECORD_HEADER.size > len(raw):
            raise ParseError(f"{path}: truncated record header at byte {offset}")
        seconds, micros, incl_len, orig_len = _RECORD_HEADER.unpack_from(raw, offset)
        offset += _RECORD_HEADER.size
        if offset + incl_len > len(raw):
            raise ParseError(f"{path}: truncated record body at byte {offset}")
        data = raw[offset : offset + incl_len]
        offset += incl_len
        records.append(PcapRecord(timestamp_s=seconds + micros / 1e6, data=data))
    return records


class PcapRecorder:
    """Capture frames arriving at a NIC into an in-memory record list."""

    def __init__(self, sim: Simulator, nic: Nic):
        self.sim = sim
        self.records: List[PcapRecord] = []
        nic.set_rx_handler(self._on_receive)

    def _on_receive(self, packet: Packet) -> None:
        # Synthesize frame bytes: we only carry sizes through the
        # simulator, so the body is a deterministic filler pattern.
        body = bytes((packet.seq + i) % 256 for i in range(packet.frame_size))
        self.records.append(PcapRecord(timestamp_s=self.sim.now, data=body))


class PcapReplayer:
    """Replay a pcap trace out of a NIC port.

    ``rate_pps=None`` preserves the original inter-arrival gaps; a fixed
    rate replaces them with constant spacing.
    """

    def __init__(self, sim: Simulator, nic: Nic, records: List[PcapRecord]):
        if not records:
            raise SimulationError("cannot replay an empty trace")
        self.sim = sim
        self.nic = nic
        self.records = records
        self.transmitted = 0
        self.skipped = 0

    def start(self, rate_pps: Optional[float] = None) -> None:
        """Schedule the whole trace for transmission."""
        base = self.records[0].timestamp_s
        for index, record in enumerate(self.records):
            size = record.frame_size
            if size < MIN_FRAME_SIZE or size > MAX_FRAME_SIZE:
                self.skipped += 1
                continue
            if rate_pps is None:
                offset = record.timestamp_s - base
            else:
                offset = index / rate_pps
            self.sim.schedule(offset, self._transmit, index, size)

    def _transmit(self, seq: int, frame_size: int) -> None:
        packet = Packet(seq=seq, frame_size=frame_size)
        if self.nic.transmit(packet):
            self.transmitted += 1
