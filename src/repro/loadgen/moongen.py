"""MoonGen-style scriptable packet generator.

The paper's experiments use MoonGen as the load generator: it creates
synthetic traffic at a configured rate, counts what comes back from the
DuT, and timestamps a subset of packets in hardware for latency
distributions.  This module reproduces that behaviour on top of the
discrete-event simulator and emits *MoonGen-compatible text output*, so
the evaluation pipeline (parser → aggregation → plots) runs unchanged
against it.

Latency measurements require hardware timestamping on both ports.  The
virtio NICs of the vpos VMs do not support it, which is why — exactly as
in Appendix A of the paper — vpos runs produce throughput data only.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.nic import Nic
from repro.netsim.packet import Packet
from repro.telemetry import context as _telemetry

__all__ = ["MoonGenJob", "MoonGen", "format_report", "latency_histogram_csv"]

#: One latency sample is taken every this many generated packets.
LATENCY_SAMPLE_INTERVAL = 100


@dataclass
class IntervalStats:
    """Per-reporting-interval counters (MoonGen prints one line a second)."""

    start: float
    tx_packets: int = 0
    rx_packets: int = 0
    tx_bytes: int = 0
    rx_bytes: int = 0


@dataclass
class MoonGenJob:
    """State and results of one measurement run."""

    rate_pps: float
    frame_size: int
    duration_s: float
    interval_s: float = 1.0
    pattern: str = "cbr"
    #: Number of distinct flows generated round-robin; with RSS on the
    #: DuT each flow hashes onto one receive queue/core.
    flows: int = 1
    tx_packets: int = 0
    rx_packets: int = 0
    tx_bytes: int = 0
    rx_bytes: int = 0
    latency_samples_s: List[float] = field(default_factory=list)
    intervals: List[IntervalStats] = field(default_factory=list)
    timestamping: bool = False
    finished: bool = False

    @property
    def tx_mpps(self) -> float:
        """Achieved transmit rate in Mpps over the whole run."""
        if self.duration_s <= 0:
            return 0.0
        return self.tx_packets / self.duration_s / 1e6

    @property
    def rx_mpps(self) -> float:
        """Received (forwarded-back) rate in Mpps over the whole run."""
        if self.duration_s <= 0:
            return 0.0
        return self.rx_packets / self.duration_s / 1e6

    @property
    def loss_fraction(self) -> float:
        """Fraction of generated packets that never came back."""
        if self.tx_packets == 0:
            return 0.0
        return 1.0 - self.rx_packets / self.tx_packets

    def interval_rx_mpps(self) -> List[float]:
        """Per-interval receive rates, the basis of the instability metric."""
        return [
            stats.rx_packets / self.interval_s / 1e6 for stats in self.intervals
        ]

    def rx_rate_stddev_mpps(self) -> float:
        """Standard deviation of per-interval RX rates (Mpps)."""
        rates = self.interval_rx_mpps()
        if len(rates) < 2:
            return 0.0
        return statistics.pstdev(rates)


class MoonGen:
    """Traffic generator bound to a TX and an RX port of the load generator.

    Usage::

        gen = MoonGen(sim, tx_nic, rx_nic, seed=1)
        job = gen.start(rate_pps=100_000, frame_size=64, duration_s=1.0)
        sim.run()
        print(format_report(job))
    """

    #: Every how many generated packets one is hardware-timestamped.
    #: Subclasses model denser samplers (OSNT stamps every frame).
    latency_sample_every = LATENCY_SAMPLE_INTERVAL

    def __init__(self, sim: Simulator, tx_nic: Nic, rx_nic: Nic, seed: int = 0):
        self.sim = sim
        self.tx_nic = tx_nic
        self.rx_nic = rx_nic
        self.seed = seed
        self._rng = random.Random(seed)
        self._job: Optional[MoonGenJob] = None
        self._seq = 0
        self._interval: Optional[IntervalStats] = None
        rx_nic.set_rx_handler(self._on_receive)
        rx_nic.rx_owner = self

    def reseed(self, seed: int) -> None:
        """Restart the pacing RNG from a fresh seed.

        Run isolation hook: the parallel scheduler reseeds every
        stochastic component from the run index before each run, so a
        run's traffic is a function of the run alone, not of which runs
        the same generator executed earlier.
        """
        self.seed = seed
        self._rng = random.Random(seed)

    @property
    def supports_latency(self) -> bool:
        """Hardware timestamping needs support on both ports."""
        return self.tx_nic.supports_timestamping and self.rx_nic.supports_timestamping

    def start(
        self,
        rate_pps: float,
        frame_size: int,
        duration_s: float,
        pattern: str = "cbr",
        interval_s: float = 1.0,
        flows: int = 1,
    ) -> MoonGenJob:
        """Schedule a measurement run; results are final once the sim ran."""
        if rate_pps <= 0:
            raise SimulationError(f"rate must be positive, got {rate_pps}")
        if duration_s <= 0:
            raise SimulationError(f"duration must be positive, got {duration_s}")
        if pattern not in ("cbr", "poisson"):
            raise SimulationError(f"unknown traffic pattern {pattern!r}")
        if flows < 1:
            raise SimulationError(f"need at least one flow, got {flows}")
        if self._job is not None and not self._job.finished:
            raise SimulationError("a measurement run is already in progress")
        job = MoonGenJob(
            rate_pps=rate_pps,
            frame_size=frame_size,
            duration_s=duration_s,
            interval_s=interval_s,
            pattern=pattern,
            flows=flows,
            timestamping=self.supports_latency,
        )
        self._job = job
        self._seq = 0
        self._interval = IntervalStats(start=self.sim.now)
        job.intervals.append(self._interval)
        self._deadline = self.sim.now + duration_s
        self._next_interval_end = self.sim.now + interval_s
        # The finish event is scheduled first in both paths so it wins
        # the heap tie against any packet event landing exactly on the
        # deadline — frames arriving at or after it never count.
        self.sim.schedule(duration_s, self._finish, job)
        batched = self._start_batched(job)
        if not batched:
            self.sim.schedule(0.0, self._send_next)
        collector = _telemetry.current()
        if collector is not None:
            # Explicit start/end: start() returns before the simulator
            # advances, so the job's extent is known analytically here
            # on both the event path and the batched fast path.
            collector.record_span(
                "loadgen.job",
                start=self.sim.now,
                end=self._deadline,
                rate_pps=rate_pps,
                frame_size=frame_size,
                pattern=pattern,
                path="fast" if batched else "event",
            )
        return job

    def _start_batched(self, job: MoonGenJob) -> bool:
        """Replay the run on the batched fast path when the topology allows.

        Returns False when the traffic path is not an analytically
        replayable feed-forward DAG (or batching is disabled), in which
        case the caller schedules the legacy per-packet event loop.
        Consecutive runs on an unchanged topology reuse the compiled
        stage table and its replay arrays (the vectorized sweep path).
        """
        from repro.netsim import fastpath

        if not fastpath.enabled():
            return False
        spec = fastpath.acquire_dag(self)
        if spec is None:
            return False
        fastpath.run_batched(self, job, spec)
        return True

    # -- transmit ------------------------------------------------------------

    def _send_next(self) -> None:
        job = self._job
        if job is None or job.finished or self.sim.now >= self._deadline:
            return
        self._roll_interval()
        packet = Packet(
            seq=self._seq,
            frame_size=job.frame_size,
            flow=self._seq % job.flows,
            src=f"{self.tx_nic.name}",
            dst=f"{self.rx_nic.name}",
        )
        self._seq += 1
        if job.timestamping and packet.seq % self.latency_sample_every == 0:
            packet.tx_time = self.sim.now
        if self.tx_nic.transmit(packet):
            job.tx_packets += 1
            job.tx_bytes += packet.frame_size
            if self._interval is not None:
                self._interval.tx_packets += 1
                self._interval.tx_bytes += packet.frame_size
        if job.pattern == "cbr":
            gap = 1.0 / job.rate_pps
        else:
            gap = self._rng.expovariate(job.rate_pps)
        self.sim.schedule(gap, self._send_next)

    # -- receive ----------------------------------------------------------------

    def _on_receive(self, packet: Packet) -> None:
        job = self._job
        if job is None or job.finished:
            return
        self._roll_interval()
        job.rx_packets += 1
        job.rx_bytes += packet.frame_size
        if self._interval is not None:
            self._interval.rx_packets += 1
            self._interval.rx_bytes += packet.frame_size
        if packet.tx_time is not None:
            packet.rx_time = self.sim.now
            job.latency_samples_s.append(packet.rx_time - packet.tx_time)

    # -- bookkeeping ----------------------------------------------------------------

    def _roll_interval(self) -> None:
        job = self._job
        if job is None or self._interval is None:
            return
        while self.sim.now >= self._next_interval_end and (
            self._next_interval_end <= self._deadline
        ):
            self._interval = IntervalStats(start=self._next_interval_end)
            job.intervals.append(self._interval)
            self._next_interval_end += job.interval_s

    def _finish(self, job: MoonGenJob) -> None:
        job.finished = True
        if self._job is job:
            self._job = None
        collector = _telemetry.current()
        if collector is not None:
            collector.count("loadgen.jobs")
            collector.count(
                "loadgen.latency_samples", len(job.latency_samples_s)
            )
            for sample in job.latency_samples_s:
                collector.observe("loadgen.latency_s", sample)


def _mbit(bytes_count: int, duration_s: float, framing_bytes: int = 0, packets: int = 0) -> float:
    bits = (bytes_count + framing_bytes * packets) * 8
    if duration_s <= 0:
        return 0.0
    return bits / duration_s / 1e6


def format_report(job: MoonGenJob) -> str:
    """Render a run in the MoonGen-compatible text format.

    This is the format :mod:`repro.evaluation.moongen_parser` consumes:
    one TX/RX pair per reporting interval, a final summary pair, and an
    optional latency summary when hardware timestamping was available.
    """
    lines: List[str] = []
    for stats in job.intervals:
        span = job.interval_s
        lines.append(
            "[Device: id=0] TX: %.6f Mpps, %.2f Mbit/s (%.2f Mbit/s with framing)"
            % (
                stats.tx_packets / span / 1e6,
                _mbit(stats.tx_bytes, span),
                _mbit(stats.tx_bytes, span, framing_bytes=20, packets=stats.tx_packets),
            )
        )
        lines.append(
            "[Device: id=1] RX: %.6f Mpps, %.2f Mbit/s (%.2f Mbit/s with framing)"
            % (
                stats.rx_packets / span / 1e6,
                _mbit(stats.rx_bytes, span),
                _mbit(stats.rx_bytes, span, framing_bytes=20, packets=stats.rx_packets),
            )
        )
    lines.append(
        "[Device: id=0] TX: %.6f Mpps (total %d packets with %d bytes payload)"
        % (job.tx_mpps, job.tx_packets, job.tx_bytes)
    )
    lines.append(
        "[Device: id=1] RX: %.6f Mpps (total %d packets with %d bytes payload)"
        % (job.rx_mpps, job.rx_packets, job.rx_bytes)
    )
    if job.timestamping and job.latency_samples_s:
        samples_us = sorted(s * 1e6 for s in job.latency_samples_s)
        avg = sum(samples_us) / len(samples_us)
        lines.append(
            "[Latency] min: %.3f us, avg: %.3f us, max: %.3f us, samples: %d"
            % (samples_us[0], avg, samples_us[-1], len(samples_us))
        )
    return "\n".join(lines) + "\n"


def latency_histogram_csv(job: MoonGenJob, bucket_ns: int = 1000) -> str:
    """MoonGen-style latency histogram CSV (``latency_ns,count`` rows)."""
    buckets: dict = {}
    for sample in job.latency_samples_s:
        bucket = int(sample * 1e9) // bucket_ns * bucket_ns
        buckets[bucket] = buckets.get(bucket, 0) + 1
    lines = ["latency_ns,count"]
    for bucket in sorted(buckets):
        lines.append(f"{bucket},{buckets[bucket]}")
    return "\n".join(lines) + "\n"
