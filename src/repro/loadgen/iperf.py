"""iPerf-style software traffic generator.

The paper notes that pos "does not solely depend on MoonGen. Other
software packet generators, such as iPerf, can be run on off-the-shelf
or even virtualized experiment hosts."  This module provides such an
alternative generator with iPerf's familiar interval output, to
demonstrate generator pluggability and the parser-extension point of
the evaluation pipeline.

Compared to :class:`~repro.loadgen.moongen.MoonGen`, iPerf is
software-timestamped and bandwidth-oriented: it reports Mbit/s per
interval and has no hardware latency sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.nic import Nic
from repro.netsim.packet import Packet

__all__ = ["IperfJob", "Iperf", "format_iperf_report"]


@dataclass
class IperfInterval:
    start_s: float
    end_s: float
    bytes_transferred: int = 0


@dataclass
class IperfJob:
    """One iPerf run (client → DuT → server on the same host)."""

    bandwidth_bps: float
    frame_size: int
    duration_s: float
    interval_s: float = 1.0
    tx_packets: int = 0
    rx_packets: int = 0
    rx_bytes: int = 0
    intervals: List[IperfInterval] = field(default_factory=list)
    finished: bool = False

    @property
    def throughput_bps(self) -> float:
        """Goodput measured at the receiver over the full run."""
        if self.duration_s <= 0:
            return 0.0
        return self.rx_bytes * 8 / self.duration_s


class Iperf:
    """UDP-style constant-bandwidth generator with interval reporting."""

    def __init__(self, sim: Simulator, tx_nic: Nic, rx_nic: Nic):
        self.sim = sim
        self.tx_nic = tx_nic
        self.rx_nic = rx_nic
        self._job: Optional[IperfJob] = None
        self._seq = 0
        rx_nic.set_rx_handler(self._on_receive)

    def start(
        self,
        bandwidth_bps: float,
        frame_size: int = 1470,
        duration_s: float = 10.0,
        interval_s: float = 1.0,
    ) -> IperfJob:
        """Schedule a run sending ``bandwidth_bps`` of traffic."""
        if bandwidth_bps <= 0:
            raise SimulationError("bandwidth must be positive")
        if self._job is not None and not self._job.finished:
            raise SimulationError("an iperf run is already in progress")
        job = IperfJob(
            bandwidth_bps=bandwidth_bps,
            frame_size=frame_size,
            duration_s=duration_s,
            interval_s=interval_s,
        )
        self._job = job
        self._deadline = self.sim.now + duration_s
        self._epoch = self.sim.now
        count = int(duration_s / interval_s)
        for index in range(count):
            job.intervals.append(
                IperfInterval(start_s=index * interval_s, end_s=(index + 1) * interval_s)
            )
        self.sim.schedule(0.0, self._send_next)
        self.sim.schedule(duration_s, self._finish, job)
        return job

    def _send_next(self) -> None:
        job = self._job
        if job is None or job.finished or self.sim.now >= self._deadline:
            return
        packet = Packet(seq=self._seq, frame_size=job.frame_size)
        self._seq += 1
        if self.tx_nic.transmit(packet):
            job.tx_packets += 1
        gap = job.frame_size * 8 / job.bandwidth_bps
        self.sim.schedule(gap, self._send_next)

    def _on_receive(self, packet: Packet) -> None:
        job = self._job
        if job is None or job.finished:
            return
        job.rx_packets += 1
        job.rx_bytes += packet.frame_size
        offset = self.sim.now - self._epoch
        index = min(int(offset / job.interval_s), len(job.intervals) - 1)
        if 0 <= index < len(job.intervals):
            job.intervals[index].bytes_transferred += packet.frame_size

    def _finish(self, job: IperfJob) -> None:
        job.finished = True
        if self._job is job:
            self._job = None


def format_iperf_report(job: IperfJob) -> str:
    """Render the run in iPerf's interval/summary text format."""
    lines = [
        "------------------------------------------------------------",
        f"Client connecting to DuT, UDP, {job.frame_size} byte datagrams",
        "------------------------------------------------------------",
    ]
    for index, interval in enumerate(job.intervals):
        mbits = interval.bytes_transferred * 8 / job.interval_s / 1e6
        lines.append(
            "[  3] %4.1f-%4.1f sec  %8d Bytes  %7.2f Mbits/sec"
            % (interval.start_s, interval.end_s, interval.bytes_transferred, mbits)
        )
    total_mbits = job.throughput_bps / 1e6
    lines.append(
        "[  3]  0.0-%.1f sec  %8d Bytes  %7.2f Mbits/sec (summary)"
        % (job.duration_s, job.rx_bytes, total_mbits)
    )
    return "\n".join(lines) + "\n"
