"""Unit tests for fault plans and the injection wrappers."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    FaultPlanError,
    PowerError,
    TransportError,
    TransportTimeout,
)
from repro.faults.injector import (
    FaultInjector,
    install_fault_plan,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    fault_plan_from_dict,
    load_fault_plan,
)
from repro.netsim.host import SimHost
from repro.testbed.images import default_registry
from repro.testbed.node import Node
from repro.testbed.power import IpmiController
from repro.testbed.transport import SshTransport


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="gremlin")

    def test_wildcards_match_everything(self):
        spec = FaultSpec(kind="transport")
        assert spec.matches(("transport",), "execute", "tartu", 5)
        assert spec.matches(("transport",), "connect", None, None)

    def test_pinned_fields_constrain_matching(self):
        spec = FaultSpec(kind="power", node="tartu", operation="power_cycle",
                         runs=(3, 5))
        assert spec.matches(("power",), "power_cycle", "tartu", 3)
        assert not spec.matches(("power",), "power_cycle", "riga", 3)
        assert not spec.matches(("power",), "power_on", "tartu", 3)
        assert not spec.matches(("power",), "power_cycle", "tartu", 4)
        # Pinned runs never match the run-less setup phase.
        assert not spec.matches(("power",), "power_cycle", "tartu", None)

    def test_invalid_budget_and_probability_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="power", times=0)
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="power", probability=0.0)
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="power", probability=1.5)


class TestFaultPlan:
    def test_budget_is_consumed(self):
        plan = FaultPlan([FaultSpec(kind="power", times=2)])
        assert plan.fire(("power",), "power_cycle", "tartu", None) is not None
        assert plan.fire(("power",), "power_cycle", "tartu", None) is not None
        assert plan.fire(("power",), "power_cycle", "tartu", None) is None
        assert plan.fired_counts() == [2]

    def test_unbudgeted_spec_keeps_striking(self):
        plan = FaultPlan([FaultSpec(kind="script", times=None, runs=(1,))])
        for __ in range(5):
            assert plan.fire(("script",), "execute", "dut", 1) is not None
        assert plan.fire(("script",), "execute", "dut", 2) is None

    def test_first_matching_spec_wins(self):
        plan = FaultPlan([
            FaultSpec(kind="power", node="riga"),
            FaultSpec(kind="power"),
        ])
        index, spec = plan.fire(("power",), "power_cycle", "tartu", None)
        assert index == 1 and spec.node is None

    def test_probabilistic_specs_are_deterministic_per_seed(self):
        def draw_sequence(seed):
            plan = FaultPlan(
                [FaultSpec(kind="timeout", probability=0.5, times=None)],
                seed=seed,
            )
            return [
                plan.fire(("timeout",), "execute", "dut", run) is not None
                for run in range(20)
            ]

        assert draw_sequence(42) == draw_sequence(42)
        assert draw_sequence(42) != draw_sequence(43)

    def test_adding_a_spec_does_not_perturb_other_draws(self):
        base = FaultPlan(
            [FaultSpec(kind="timeout", probability=0.5, times=None)], seed=1
        )
        extended = FaultPlan(
            [
                FaultSpec(kind="timeout", probability=0.5, times=None),
                FaultSpec(kind="power", probability=0.5, times=None),
            ],
            seed=1,
        )
        base_draws = [
            base.fire(("timeout",), "execute", "dut", run) is not None
            for run in range(10)
        ]
        extended_draws = [
            extended.fire(("timeout",), "execute", "dut", run) is not None
            for run in range(10)
        ]
        assert base_draws == extended_draws


class TestPlanLoading:
    def test_from_dict(self):
        plan = fault_plan_from_dict({
            "seed": 9,
            "faults": [
                {"kind": "power", "node": "tartu", "runs": [3]},
                {"kind": "timeout", "probability": 0.1, "times": 2},
            ],
        })
        assert plan.seed == 9
        assert plan.specs[0].runs == (3,)
        assert plan.specs[1].probability == 0.1

    def test_scalar_runs_allowed(self):
        plan = fault_plan_from_dict({"faults": [{"kind": "script", "runs": 4}]})
        assert plan.specs[0].runs == (4,)

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown field"):
            fault_plan_from_dict({"faults": [{"kind": "power", "frequency": 2}]})

    def test_missing_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="missing 'kind'"):
            fault_plan_from_dict({"faults": [{"node": "tartu"}]})

    def test_load_from_yaml_file(self, tmp_path):
        path = tmp_path / "faults.yml"
        path.write_text(
            "seed: 42\n"
            "faults:\n"
            "  - kind: power\n"
            "    node: tartu\n"
            "  - kind: script\n"
            "    times: 3\n"
        )
        plan = load_fault_plan(str(path))
        assert plan.seed == 42
        assert [spec.kind for spec in plan.specs] == ["power", "script"]

    def test_load_missing_file_raises_plan_error(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot load"):
            load_fault_plan(str(tmp_path / "absent.yml"))


def make_node(name="tartu"):
    host = SimHost(name)
    return Node(
        name, host=host, power=IpmiController(host),
        transport=SshTransport(host),
    )


class TestInjectedWrappers:
    def test_power_fault_raises_native_power_error(self):
        node = make_node()
        injector = install_fault_plan(
            {"tartu": node}, FaultPlan([FaultSpec(kind="power", times=1)])
        )
        with pytest.raises(PowerError, match="injected power failure"):
            node.power.power_cycle()
        # Budget consumed: the next cycle goes through to the rail.
        node.power.power_cycle()
        assert node.host.booted
        assert [event.kind for event in injector.events] == ["power"]

    def test_failed_cycle_leaves_host_state_untouched(self):
        node = make_node()
        install_fault_plan(
            {"tartu": node}, FaultPlan([FaultSpec(kind="power", times=1)])
        )
        node.host.booted = True
        with pytest.raises(PowerError):
            node.power.power_cycle()
        assert node.host.booted  # the rail was never touched

    def test_timeout_fault_raises_transport_timeout(self):
        node = make_node()
        install_fault_plan(
            {"tartu": node}, FaultPlan([FaultSpec(kind="timeout", times=1)])
        )
        node.host.boot(image="debian-buster", image_version="v",
                       kernel_version="5.8", boot_parameters={})
        node.transport.connect()
        with pytest.raises(TransportTimeout):
            node.transport.execute("sleep 10")
        # After the budget, the same command executes normally.
        assert node.transport.execute("echo hi").exit_code == 0

    def test_script_fault_returns_failing_exit_code(self):
        node = make_node()
        install_fault_plan(
            {"tartu": node},
            FaultPlan([FaultSpec(kind="script", times=1, message="boom")]),
        )
        node.host.boot(image="debian-buster", image_version="v",
                       kernel_version="5.8", boot_parameters={})
        node.transport.connect()
        result = node.transport.execute("ip link show")
        assert result.exit_code == 1
        assert "boom" in result.stdout

    def test_boot_fault_strikes_connect(self):
        node = make_node()
        install_fault_plan(
            {"tartu": node}, FaultPlan([FaultSpec(kind="boot", times=1)])
        )
        node.host.boot(image="debian-buster", image_version="v",
                       kernel_version="5.8", boot_parameters={})
        with pytest.raises(TransportError, match="never came up"):
            node.transport.connect()

    def test_wedge_fault_wedges_the_host(self):
        node = make_node()
        install_fault_plan(
            {"tartu": node}, FaultPlan([FaultSpec(kind="wedge", times=1)])
        )
        node.host.boot(image="debian-buster", image_version="v",
                       kernel_version="5.8", boot_parameters={})
        node.transport.connect()
        with pytest.raises(TransportError, match="wedged"):
            node.transport.execute("stress")
        assert node.host.wedged

    def test_node_pinning_spares_other_nodes(self):
        tartu, riga = make_node("tartu"), make_node("riga")
        install_fault_plan(
            {"tartu": tartu, "riga": riga},
            FaultPlan([FaultSpec(kind="power", node="tartu", times=None)]),
        )
        riga.power.power_cycle()  # unaffected
        with pytest.raises(PowerError):
            tartu.power.power_cycle()

    def test_wrappers_preserve_inner_protocol_and_describe(self):
        node = make_node()
        install_fault_plan({"tartu": node}, FaultPlan([]))
        assert node.power.protocol == "ipmi"
        assert node.transport.protocol == "ssh"
        assert node.power.describe()["fault_injection"] is True

    def test_node_retry_absorbs_single_budgeted_fault(self):
        """A one-shot transport fault is survived by the node's own
        retry policy — exactly how a real transient loss behaves."""
        node = make_node()
        install_fault_plan(
            {"tartu": node},
            FaultPlan([FaultSpec(kind="transport", operation="execute",
                                 times=1)]),
        )
        node.set_image(default_registry().resolve("debian-buster"))
        node.reset()
        result = node.execute("echo resilient")
        assert result.exit_code == 0

    def test_injector_run_context_gates_run_pinned_specs(self):
        node = make_node()
        injector = install_fault_plan(
            {"tartu": node},
            FaultPlan([FaultSpec(kind="timeout", runs=(2,), times=None)]),
        )
        node.host.boot(image="debian-buster", image_version="v",
                       kernel_version="5.8", boot_parameters={})
        node.transport.connect()
        node.transport.execute("true")  # outside any run: no strike
        injector.begin_run(1)
        node.transport.execute("true")  # wrong run index: no strike
        injector.begin_run(2)
        with pytest.raises(TransportTimeout):
            node.transport.execute("true")
        injector.end_run()
        events = injector.events
        assert len(events) == 1 and events[0].run_index == 2

    def test_all_kinds_are_exercised_by_the_plan_format(self):
        plan = fault_plan_from_dict(
            {"faults": [{"kind": kind} for kind in FAULT_KINDS]}
        )
        assert len(plan.specs) == len(FAULT_KINDS)

    def test_injector_describe_records_plan_and_trail(self):
        injector = FaultInjector(FaultPlan([FaultSpec(kind="power")], seed=3))
        injector.fire("power", "power_cycle", "tartu")
        info = injector.describe()
        assert info["plan"]["seed"] == 3
        assert info["fired"][0]["kind"] == "power"
