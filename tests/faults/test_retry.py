"""Unit tests for the unified retry policy and its clocks."""

from __future__ import annotations

import pytest

from repro.core.errors import PowerError, RetryExhausted, TransportError
from repro.faults.clock import SimClock, SystemClock
from repro.faults.retry import RetryPolicy


class TestDelays:
    def test_delay_sequence_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.5, seed=7)
        assert policy.delays() == policy.delays()
        # A second instance with the same parameters agrees too.
        twin = RetryPolicy(max_attempts=5, base_delay_s=0.5, seed=7)
        assert policy.delays() == twin.delays()

    def test_seed_changes_jitter_not_shape(self):
        a = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter_fraction=0.1, seed=1)
        b = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter_fraction=0.1, seed=2)
        assert a.delays() != b.delays()
        for delay_a, delay_b in zip(a.delays(), b.delays()):
            # Same backoff envelope: both within +-10% of the same base.
            assert abs(delay_a - delay_b) <= 0.2 * max(delay_a, delay_b)

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=3.0, jitter_fraction=0.0,
        )
        assert policy.delays() == [1.0, 2.0, 3.0, 3.0, 3.0]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, multiplier=1.0,
            max_delay_s=1.0, jitter_fraction=0.25, seed=3,
        )
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.25

    def test_one_attempt_means_no_delays(self):
        assert RetryPolicy(max_attempts=1).delays() == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.0)


class TestCall:
    def test_succeeds_first_try_without_sleeping(self):
        clock = SimClock()
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(lambda: 42, clock=clock) == 42
        assert clock.sleeps == []

    def test_retries_then_succeeds(self):
        clock = SimClock()
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.5, jitter_fraction=0.0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise PowerError("transient")
            return "ok"

        assert policy.call(flaky, retry_on=(PowerError,), clock=clock) == "ok"
        assert calls["n"] == 3
        # Slept exactly the policy's deterministic backoff sequence.
        assert clock.sleeps == policy.delays()

    def test_exhaustion_raises_with_attempt_count_and_cause(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.01)

        def always_fails():
            raise TransportError("ssh: lost")

        with pytest.raises(RetryExhausted, match="after 4 attempts") as info:
            policy.call(always_fails, retry_on=(TransportError,),
                        clock=SimClock(), describe="connect")
        assert info.value.attempts == 4
        assert isinstance(info.value.last_error, TransportError)
        assert "connect" in str(info.value)

    def test_non_matching_errors_propagate_immediately(self):
        clock = SimClock()
        policy = RetryPolicy(max_attempts=5)

        def wrong_kind():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(wrong_kind, retry_on=(PowerError,), clock=clock)
        assert clock.sleeps == []

    def test_on_retry_hook_sees_each_failure(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.1)
        seen = []
        with pytest.raises(RetryExhausted):
            policy.call(
                lambda: (_ for _ in ()).throw(PowerError("bmc")),
                retry_on=(PowerError,),
                clock=SimClock(),
                on_retry=lambda attempt, exc: seen.append(attempt),
            )
        # The hook fires before each backoff, not after the last attempt.
        assert seen == [1, 2]

    def test_describe_round_trips_the_parameters(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.25, seed=9)
        info = policy.describe()
        assert info["max_attempts"] == 2
        assert info["base_delay_s"] == 0.25
        assert info["seed"] == 9


class TestMaxElapsed:
    """The time budget truncates the backoff sequence deterministically."""

    def test_budget_truncates_delay_sequence(self):
        unbounded = RetryPolicy(
            max_attempts=6, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=10.0, jitter_fraction=0.0,
        )
        assert unbounded.delays() == [1.0, 2.0, 4.0, 8.0, 10.0]
        budgeted = RetryPolicy(
            max_attempts=6, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=10.0, jitter_fraction=0.0, max_elapsed_s=7.5,
        )
        # 1 + 2 + 4 = 7 fits; adding the 8s delay would cross 7.5.
        assert budgeted.delays() == [1.0, 2.0, 4.0]

    def test_budget_is_cumulative_not_per_delay(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, multiplier=1.0,
            max_delay_s=1.0, jitter_fraction=0.0, max_elapsed_s=3.0,
        )
        assert policy.delays() == [1.0, 1.0, 1.0]

    def test_zero_budget_means_single_attempt(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.5, jitter_fraction=0.0,
            max_elapsed_s=0.0,
        )
        assert policy.delays() == []
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise PowerError("down")

        with pytest.raises(RetryExhausted, match="after 1 attempts"):
            policy.call(fails, retry_on=(PowerError,), clock=SimClock())
        assert calls["n"] == 1

    def test_call_respects_the_truncated_schedule(self):
        clock = SimClock()
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=10.0, jitter_fraction=0.0, max_elapsed_s=3.5,
        )

        def always_fails():
            raise PowerError("bmc")

        with pytest.raises(RetryExhausted, match="after 3 attempts") as info:
            policy.call(always_fails, retry_on=(PowerError,), clock=clock)
        assert info.value.attempts == 3
        assert clock.sleeps == [1.0, 2.0]
        assert sum(clock.sleeps) <= 3.5

    def test_no_budget_preserves_historical_behaviour(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1)
        assert len(policy.delays()) == 3
        assert "max_elapsed_s" not in policy.describe()

    def test_budget_appears_in_describe_when_set(self):
        policy = RetryPolicy(max_attempts=4, max_elapsed_s=9.0)
        assert policy.describe()["max_elapsed_s"] == 9.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed_s=-1.0)


class TestClocks:
    def test_sim_clock_advances_and_records(self):
        clock = SimClock(start=100.0)
        clock.sleep(2.5)
        clock.sleep(0.5)
        assert clock.now() == 103.0
        assert clock.sleeps == [2.5, 0.5]

    def test_sim_clock_rejects_negative_sleep(self):
        with pytest.raises(ValueError):
            SimClock().sleep(-1.0)

    def test_system_clock_skips_nonpositive_sleep(self):
        # Must return immediately — no real blocking in the test suite.
        SystemClock().sleep(0.0)
        SystemClock().sleep(-1.0)
