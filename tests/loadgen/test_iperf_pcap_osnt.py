"""Tests for the iPerf generator, pcap support, and the OSNT model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ParseError, SimulationError
from repro.loadgen.iperf import Iperf, format_iperf_report
from repro.loadgen.moongen import format_report
from repro.loadgen.osnt import Osnt
from repro.loadgen.pcap import (
    PcapRecord,
    PcapRecorder,
    PcapReplayer,
    read_pcap,
    write_pcap,
)
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic, VirtioNic

from repro.netsim.router import LinuxRouter


def forwarding_rig(sim, nic_class=HardwareNic):
    tx = nic_class(sim, "lg.tx")
    rx = nic_class(sim, "lg.rx")
    p0 = nic_class(sim, "dut.p0")
    p1 = nic_class(sim, "dut.p1")
    router = LinuxRouter(sim)
    router.add_port(p0)
    router.add_port(p1)
    DirectWire(sim, tx, p0)
    DirectWire(sim, p1, rx)
    return tx, rx


class TestIperf:
    def test_bandwidth_throughput(self):
        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        iperf = Iperf(sim, tx, rx)
        job = iperf.start(bandwidth_bps=100e6, frame_size=1470, duration_s=1.0)
        sim.run(until=1.5)
        assert job.finished
        assert job.throughput_bps == pytest.approx(100e6, rel=0.02)

    def test_interval_accounting(self):
        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        iperf = Iperf(sim, tx, rx)
        job = iperf.start(bandwidth_bps=50e6, duration_s=1.0, interval_s=0.25)
        sim.run(until=1.5)
        assert len(job.intervals) == 4
        assert sum(i.bytes_transferred for i in job.intervals) == job.rx_bytes

    def test_report_parses_back(self):
        from repro.evaluation.iperf_parser import parse_iperf_output

        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        iperf = Iperf(sim, tx, rx)
        job = iperf.start(bandwidth_bps=80e6, duration_s=0.5, interval_s=0.1)
        sim.run(until=1.0)
        parsed = parse_iperf_output(format_iperf_report(job))
        assert parsed.throughput_mbits == pytest.approx(
            job.throughput_bps / 1e6, abs=0.01
        )
        assert len(parsed.interval_mbits) == 5

    def test_invalid_bandwidth_rejected(self):
        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        with pytest.raises(SimulationError):
            Iperf(sim, tx, rx).start(bandwidth_bps=0)

    def test_overlapping_runs_rejected(self):
        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        iperf = Iperf(sim, tx, rx)
        iperf.start(bandwidth_bps=1e6, duration_s=1.0)
        with pytest.raises(SimulationError, match="in progress"):
            iperf.start(bandwidth_bps=1e6, duration_s=1.0)


class TestPcapFormat:
    def test_round_trip(self, tmp_path):
        records = [
            PcapRecord(timestamp_s=1.0, data=b"\x01" * 64),
            PcapRecord(timestamp_s=1.5, data=b"\x02" * 128),
        ]
        path = tmp_path / "trace.pcap"
        write_pcap(path, records)
        loaded = read_pcap(path)
        assert [record.data for record in loaded] == [r.data for r in records]
        assert loaded[0].timestamp_s == pytest.approx(1.0, abs=1e-6)

    def test_snaplen_truncates(self, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(path, [PcapRecord(0.0, b"x" * 200)], snaplen=100)
        assert len(read_pcap(path)[0].data) == 100

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ParseError, match="magic"):
            read_pcap(path)

    def test_truncated_file_rejected(self, tmp_path):
        good = tmp_path / "good.pcap"
        write_pcap(good, [PcapRecord(0.0, b"x" * 64)])
        bad = tmp_path / "truncated.pcap"
        bad.write_bytes(good.read_bytes()[:-10])
        with pytest.raises(ParseError, match="truncated"):
            read_pcap(bad)

    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, sizes, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("pcap")
        records = [
            PcapRecord(timestamp_s=index * 0.001, data=bytes(size % 256 for __ in range(size)))
            for index, size in enumerate(sizes)
        ]
        path = tmp / "trace.pcap"
        write_pcap(path, records)
        loaded = read_pcap(path)
        assert len(loaded) == len(records)
        for original, decoded in zip(records, loaded):
            assert decoded.data == original.data
            assert decoded.timestamp_s == pytest.approx(
                original.timestamp_s, abs=2e-6
            )


class TestPcapReplayAndCapture:
    def test_capture_then_replay(self, tmp_path):
        # Capture a short MoonGen run at the DuT-facing port...
        sim = Simulator()
        tx = HardwareNic(sim, "tx")
        sink = HardwareNic(sim, "sink")
        DirectWire(sim, tx, sink)
        recorder = PcapRecorder(sim, sink)
        from repro.netsim.packet import Packet

        for seq in range(10):
            sim.schedule(seq * 0.001, tx.transmit, Packet(seq=seq, frame_size=64))
        sim.run()
        assert len(recorder.records) == 10
        path = tmp_path / "capture.pcap"
        write_pcap(path, recorder.records)

        # ...and replay it through a fresh rig with original timing.
        sim2 = Simulator()
        tx2, rx2 = forwarding_rig(sim2)
        received = []
        rx2.set_rx_handler(received.append)
        replayer = PcapReplayer(sim2, tx2, read_pcap(path))
        replayer.start()
        sim2.run()
        assert replayer.transmitted == 10
        assert len(received) == 10

    def test_replay_at_fixed_rate(self):
        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        times = []
        rx.set_rx_handler(lambda p: times.append(sim.now))
        records = [PcapRecord(timestamp_s=0.0, data=b"x" * 64) for __ in range(5)]
        PcapReplayer(sim, tx, records).start(rate_pps=1000)
        sim.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap == pytest.approx(0.001, rel=0.01) for gap in gaps)

    def test_oversized_frames_skipped(self):
        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        records = [
            PcapRecord(0.0, b"x" * 64),
            PcapRecord(0.001, b"x" * 4000),  # jumbo: not replayable
        ]
        replayer = PcapReplayer(sim, tx, records)
        replayer.start()
        sim.run()
        assert replayer.transmitted == 1
        assert replayer.skipped == 1

    def test_empty_trace_rejected(self):
        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        with pytest.raises(SimulationError, match="empty"):
            PcapReplayer(sim, tx, [])


class TestOsnt:
    def test_requires_hardware_nics(self):
        sim = Simulator()
        tx, rx = forwarding_rig(sim, nic_class=VirtioNic)
        with pytest.raises(SimulationError, match="NetFPGA"):
            Osnt(sim, tx, rx)

    def test_timestamps_every_packet(self):
        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        osnt = Osnt(sim, tx, rx)
        job = osnt.start(rate_pps=10_000, frame_size=64, duration_s=0.05)
        sim.run(until=0.2)
        # Every received packet carries a latency sample (not 1-in-100).
        assert len(job.latency_samples_s) == job.rx_packets
        assert job.rx_packets > 400

    def test_cbr_only(self):
        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        osnt = Osnt(sim, tx, rx)
        with pytest.raises(SimulationError, match="constant-bit-rate"):
            osnt.start(rate_pps=1000, frame_size=64, duration_s=0.1,
                       pattern="poisson")

    def test_output_parses_like_moongen(self):
        from repro.evaluation.moongen_parser import parse_moongen_output

        sim = Simulator()
        tx, rx = forwarding_rig(sim)
        osnt = Osnt(sim, tx, rx)
        job = osnt.start(rate_pps=10_000, frame_size=64, duration_s=0.05)
        sim.run(until=0.2)
        parsed = parse_moongen_output(format_report(job))
        assert parsed.latency is not None
