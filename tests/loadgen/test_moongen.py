"""Tests for the MoonGen-style generator and its output format."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.loadgen.moongen import (
    LATENCY_SAMPLE_INTERVAL,
    MoonGen,
    format_report,
    latency_histogram_csv,
)
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic, VirtioNic
from repro.netsim.router import LinuxRouter


def rig(sim, nic_class=HardwareNic, seed=0):
    """MoonGen wired through a bare-metal router and back."""
    tx = nic_class(sim, "lg.tx")
    rx = nic_class(sim, "lg.rx")
    p0 = nic_class(sim, "dut.p0")
    p1 = nic_class(sim, "dut.p1")
    router = LinuxRouter(sim)
    router.add_port(p0)
    router.add_port(p1)
    DirectWire(sim, tx, p0)
    DirectWire(sim, p1, rx)
    return MoonGen(sim, tx, rx, seed=seed), router


class TestGeneration:
    def test_cbr_rate_is_accurate(self):
        sim = Simulator()
        gen, __ = rig(sim)
        job = gen.start(rate_pps=100_000, frame_size=64, duration_s=0.1)
        sim.run(until=0.2)
        assert job.finished
        assert job.tx_packets == pytest.approx(10_000, abs=2)
        assert job.tx_mpps == pytest.approx(0.1, rel=0.01)

    def test_rx_counts_forwarded_traffic(self):
        sim = Simulator()
        gen, __ = rig(sim)
        job = gen.start(rate_pps=50_000, frame_size=64, duration_s=0.05)
        sim.run(until=0.2)
        assert job.rx_packets == pytest.approx(job.tx_packets, abs=3)
        assert job.loss_fraction < 0.01

    def test_poisson_pattern_varies_gaps_but_keeps_mean(self):
        sim = Simulator()
        gen, __ = rig(sim, seed=5)
        job = gen.start(
            rate_pps=100_000, frame_size=64, duration_s=0.1, pattern="poisson"
        )
        sim.run(until=0.3)
        assert job.tx_packets == pytest.approx(10_000, rel=0.1)

    def test_unknown_pattern_rejected(self):
        gen, __ = rig(Simulator())
        with pytest.raises(SimulationError, match="pattern"):
            gen.start(rate_pps=1000, frame_size=64, duration_s=0.1, pattern="burst")

    def test_overlapping_jobs_rejected(self):
        sim = Simulator()
        gen, __ = rig(sim)
        gen.start(rate_pps=1000, frame_size=64, duration_s=1.0)
        with pytest.raises(SimulationError, match="in progress"):
            gen.start(rate_pps=1000, frame_size=64, duration_s=1.0)

    def test_sequential_jobs_allowed(self):
        sim = Simulator()
        gen, __ = rig(sim)
        first = gen.start(rate_pps=10_000, frame_size=64, duration_s=0.05)
        sim.run(until=0.1)
        second = gen.start(rate_pps=10_000, frame_size=64, duration_s=0.05)
        sim.run(until=0.2)
        assert first.finished and second.finished
        assert second.tx_packets > 0

    def test_invalid_parameters_rejected(self):
        gen, __ = rig(Simulator())
        with pytest.raises(SimulationError):
            gen.start(rate_pps=0, frame_size=64, duration_s=1.0)
        with pytest.raises(SimulationError):
            gen.start(rate_pps=1000, frame_size=64, duration_s=0)


class TestIntervals:
    def test_interval_count(self):
        sim = Simulator()
        gen, __ = rig(sim)
        job = gen.start(
            rate_pps=50_000, frame_size=64, duration_s=0.5, interval_s=0.1
        )
        sim.run(until=0.7)
        assert len(job.intervals) == 5

    def test_interval_rates_sum_to_total(self):
        sim = Simulator()
        gen, __ = rig(sim)
        job = gen.start(
            rate_pps=50_000, frame_size=64, duration_s=0.4, interval_s=0.1
        )
        sim.run(until=0.6)
        assert sum(stats.tx_packets for stats in job.intervals) == job.tx_packets

    def test_stable_run_has_low_interval_stddev(self):
        sim = Simulator()
        gen, __ = rig(sim)
        job = gen.start(
            rate_pps=100_000, frame_size=64, duration_s=0.4, interval_s=0.1
        )
        sim.run(until=0.6)
        assert job.rx_rate_stddev_mpps() < 0.001


class TestLatency:
    def test_hardware_nics_sample_latency(self):
        sim = Simulator()
        gen, __ = rig(sim)
        job = gen.start(rate_pps=100_000, frame_size=64, duration_s=0.1)
        sim.run(until=0.2)
        expected = job.tx_packets // LATENCY_SAMPLE_INTERVAL
        assert len(job.latency_samples_s) == pytest.approx(expected, abs=2)
        assert all(sample > 0 for sample in job.latency_samples_s)

    def test_virtio_nics_cannot_measure_latency(self):
        """Appendix A: 'in our VM, we cannot generate latency
        measurements, due to the limited hardware support'."""
        sim = Simulator()
        gen, __ = rig(sim, nic_class=VirtioNic)
        assert not gen.supports_latency
        job = gen.start(rate_pps=50_000, frame_size=64, duration_s=0.05)
        sim.run(until=0.2)
        assert job.latency_samples_s == []
        assert not job.timestamping

    def test_latency_reflects_service_and_wire_time(self):
        sim = Simulator()
        gen, router = rig(sim)
        job = gen.start(rate_pps=10_000, frame_size=64, duration_s=0.05)
        sim.run(until=0.2)
        floor = router.base_cost_s  # must at least pay the router service
        assert min(job.latency_samples_s) > floor


class TestOutputFormat:
    def make_job(self, rate=100_000, size=64, duration=0.1):
        sim = Simulator()
        gen, __ = rig(sim)
        job = gen.start(rate_pps=rate, frame_size=size, duration_s=duration)
        sim.run(until=duration * 2)
        return job

    def test_report_has_summary_lines(self):
        report = format_report(self.make_job())
        assert "(total " in report
        assert "[Device: id=0] TX:" in report
        assert "[Device: id=1] RX:" in report

    def test_report_has_latency_line_for_hardware(self):
        report = format_report(self.make_job())
        assert "[Latency] min:" in report

    def test_histogram_csv_counts_match_samples(self):
        job = self.make_job()
        csv = latency_histogram_csv(job)
        lines = csv.strip().splitlines()
        assert lines[0] == "latency_ns,count"
        total = sum(int(line.split(",")[1]) for line in lines[1:])
        assert total == len(job.latency_samples_s)

    def test_report_round_trips_through_parser(self):
        from repro.evaluation.moongen_parser import parse_moongen_output

        job = self.make_job()
        parsed = parse_moongen_output(format_report(job))
        assert parsed.tx_summary.packets == job.tx_packets
        assert parsed.rx_summary.packets == job.rx_packets
        assert parsed.tx_mpps == pytest.approx(job.tx_mpps, abs=1e-6)
        assert parsed.latency is not None
        assert parsed.latency.samples == len(job.latency_samples_s)
