"""Tests for the Table 1 comparison machinery."""

from __future__ import annotations

import pytest

from repro.comparison import (
    PAPER_SYSTEMS,
    REQUIREMENTS,
    Support,
    SystemProfile,
    comparison_matrix,
    evaluate_requirement,
    format_table,
)

#: Table 1 of the paper, cell by cell.
PAPER_TABLE = {
    "Chameleon": ["full", "partial", "full", "n.a.", "n.a."],
    "CloudLab": ["full", "partial", "full", "n.a.", "n.a."],
    "Grid'5000": ["full", "partial", "full", "n.a.", "n.a."],
    "OMF": ["n.a.", "n.a.", "n.a.", "full", "none"],
    "NEPI": ["n.a.", "n.a.", "n.a.", "full", "none"],
    "SNDZoo": ["n.a.", "n.a.", "n.a.", "full", "partial"],
    "pos": ["full", "full", "full", "full", "full"],
}


class TestPaperTable:
    def test_matrix_reproduces_table_1_exactly(self):
        matrix = comparison_matrix()
        assert set(matrix) == set(PAPER_TABLE)
        for system, expected_row in PAPER_TABLE.items():
            actual = [matrix[system][req].value for req in REQUIREMENTS]
            assert actual == expected_row, f"row {system} differs"

    def test_pos_is_the_only_full_row(self):
        matrix = comparison_matrix()
        full_rows = [
            name
            for name, row in matrix.items()
            if all(cell is Support.FULL for cell in row.values())
        ]
        assert full_rows == ["pos"]

    def test_table_text_contains_all_systems(self):
        table = format_table()
        for system in PAPER_TABLE:
            assert system in table
        assert "fully supported" in table


class TestRuleEngine:
    def test_methodology_gets_na_for_testbed_requirements(self):
        profile = SystemProfile(name="m", kind="methodology", automation=True)
        for requirement in ("R1", "R2", "R3"):
            assert evaluate_requirement(profile, requirement) is (
                Support.NOT_APPLICABLE
            )

    def test_testbed_gets_na_for_methodology_requirements(self):
        profile = SystemProfile(name="t", kind="testbed")
        for requirement in ("R4", "R5"):
            assert evaluate_requirement(profile, requirement) is (
                Support.NOT_APPLICABLE
            )

    def test_direct_wiring_gives_full_isolation(self):
        profile = SystemProfile(name="t", kind="testbed", isolation="direct")
        assert evaluate_requirement(profile, "R2") is Support.FULL

    def test_switched_gives_partial_isolation(self):
        profile = SystemProfile(name="t", kind="testbed", isolation="switched")
        assert evaluate_requirement(profile, "R2") is Support.PARTIAL

    def test_no_isolation_is_none(self):
        profile = SystemProfile(name="t", kind="testbed")
        assert evaluate_requirement(profile, "R2") is Support.NONE

    def test_publishability_needs_evaluation_and_release(self):
        evaluation_only = SystemProfile(
            name="m", kind="methodology", automation=True,
            evaluation_in_workflow=True,
        )
        assert evaluate_requirement(evaluation_only, "R5") is Support.PARTIAL
        complete = SystemProfile(
            name="m2", kind="methodology", automation=True,
            evaluation_in_workflow=True, publication="full",
        )
        assert evaluate_requirement(complete, "R5") is Support.FULL

    def test_adding_a_new_system_is_declarative(self):
        """The extension point: declare capabilities, get a row."""
        emulab = SystemProfile(
            name="Emulab", kind="testbed",
            heterogeneous_hardware=True, isolation="switched", recoverable=True,
        )
        matrix = comparison_matrix(PAPER_SYSTEMS + [emulab])
        assert matrix["Emulab"]["R2"] is Support.PARTIAL
        assert "Emulab" in format_table(PAPER_SYSTEMS + [emulab])

    def test_unknown_requirement_rejected(self):
        from repro.core.errors import PosError

        with pytest.raises(PosError):
            evaluate_requirement(PAPER_SYSTEMS[0], "R9")

    def test_symbols(self):
        assert Support.FULL.symbol == "Y"
        assert Support.PARTIAL.symbol == "o"
        assert Support.NONE.symbol == "x"
        assert Support.NOT_APPLICABLE.symbol == "n.a."
