"""The shell-script form of the case study: exportable and re-runnable.

Appendix A's workflow is: clone the artifact repository, run
``experiment.sh``.  This suite exercises our equivalent loop —
the case study expressed purely as command scripts, exported to the
artifact folder layout, loaded back, and executed — and the loader's
ability to parse MoonGen output out of the captured command log.
"""

from __future__ import annotations

import os

import pytest

from repro.casestudy import build_case_study_experiment, build_environment, run_case_study
from repro.core.errors import ExperimentError
from repro.core.expdir import load_experiment_dir, write_experiment_dir
from repro.evaluation.loader import extract_command_output, load_experiment
from repro.evaluation.plotter import plot_experiment


class TestShellStyle:
    def test_unknown_style_rejected(self):
        with pytest.raises(ExperimentError, match="script_style"):
            build_case_study_experiment("pos", script_style="lua")

    def test_shell_style_runs_and_parses(self, tmp_path):
        handle = run_case_study(
            "pos", str(tmp_path), rates=[1_000_000, 2_000_000], sizes=(64,),
            duration_s=0.02, interval_s=0.01, script_style="shell",
        )
        assert handle.completed_runs == 2
        results = load_experiment(handle.result_path)
        # No explicit moongen.log upload — parsed out of commands.log.
        run = results.runs[1]
        assert "moongen.log" not in run.outputs["loadgen"]
        assert run.moongen().rx_mpps == pytest.approx(1.746, rel=0.05)

    def test_shell_style_plots(self, tmp_path):
        handle = run_case_study(
            "pos", str(tmp_path), rates=[500_000], sizes=(64, 1500),
            duration_s=0.02, interval_s=0.01, script_style="shell",
        )
        results = load_experiment(handle.result_path)
        written = plot_experiment(results, formats=("svg",))
        assert any(path.endswith("throughput.svg") for path in written)

    def test_shell_and_python_styles_measure_the_same(self, tmp_path):
        outcomes = {}
        for style in ("python", "shell"):
            handle = run_case_study(
                "pos", str(tmp_path / style), rates=[2_000_000], sizes=(64,),
                duration_s=0.02, interval_s=0.01, script_style=style,
            )
            results = load_experiment(handle.result_path)
            outcomes[style] = results.runs[0].moongen().rx_mpps
        assert outcomes["shell"] == pytest.approx(outcomes["python"], rel=0.02)


class TestExportReload:
    def test_export_load_run_loop(self, tmp_path):
        """The full artifact loop: export → load → execute → evaluate."""
        experiment = build_case_study_experiment(
            "vpos", rates=[20_000, 40_000], sizes=(64,), duration_s=0.1,
            script_style="shell",
        )
        write_experiment_dir(experiment, str(tmp_path / "artifact"))
        loaded = load_experiment_dir(str(tmp_path / "artifact"))

        env = build_environment("vpos", str(tmp_path / "results"), seed=5)
        try:
            handle = env.controller.run(
                loaded, setup_context_extra={"setup": env.setup}
            )
        finally:
            env.setup.hypervisor.stop()
        assert handle.completed_runs == 2
        results = load_experiment(handle.result_path)
        assert results.runs[0].moongen().tx_mpps == pytest.approx(0.02, rel=0.05)

    def test_artifact_folder_has_the_paper_layout(self, tmp_path):
        experiment = build_case_study_experiment("pos", script_style="shell")
        write_experiment_dir(experiment, str(tmp_path / "artifact"))
        assert os.path.isfile(tmp_path / "artifact" / "loop-variables.yml")
        assert os.path.isfile(tmp_path / "artifact" / "global-variables.yml")
        assert os.path.isfile(
            tmp_path / "artifact" / "scripts" / "loadgen-measurement.sh"
        )

    def test_python_style_is_not_exportable(self, tmp_path):
        experiment = build_case_study_experiment("pos", script_style="python")
        with pytest.raises(ExperimentError, match="CommandScript"):
            write_experiment_dir(experiment, str(tmp_path / "artifact"))


class TestExtractCommandOutput:
    LOG = (
        "$ ip link show\n"
        "2: eno1: UP\n"
        "(exit 0)\n"
        "$ moongen --rate 1000 --size 64 --duration 0.1\n"
        "[Device: id=0] TX: 0.001000 Mpps (total 100 packets with 6400 bytes payload)\n"
        "[Device: id=1] RX: 0.001000 Mpps (total 100 packets with 6400 bytes payload)\n"
        "(exit 0)\n"
    )

    def test_extracts_named_command_block(self):
        block = extract_command_output(self.LOG, "moongen")
        assert block.startswith("[Device: id=0]")
        assert block.count("\n") == 2

    def test_ignores_other_commands(self):
        block = extract_command_output(self.LOG, "ip")
        assert "eno1" in block

    def test_missing_command_returns_none(self):
        assert extract_command_output(self.LOG, "iperf") is None

    def test_failed_invocation_skipped(self):
        log = "$ moongen --bad\nmoongen: unknown argument\n(exit 2)\n"
        assert extract_command_output(log, "moongen") is None

    def test_prefix_does_not_false_match(self):
        log = "$ moongen2 --x\nstuff\n(exit 0)\n"
        assert extract_command_output(log, "moongen") is None


class TestMoonGenHostCommand:
    def setup_host(self):
        from repro.testbed.scenarios import build_pos_pair
        from tests.conftest import boot_and_configure

        setup = build_pos_pair()
        boot_and_configure(setup)
        return setup

    def test_reports_moongen_output(self):
        setup = self.setup_host()
        result = setup.nodes["riga"].execute(
            "moongen --rate 100000 --size 64 --duration 0.02"
        )
        assert result.ok
        assert "[Device: id=0] TX:" in result.stdout
        assert "[Latency]" in result.stdout  # hardware timestamping

    def test_missing_arguments_fail(self):
        setup = self.setup_host()
        result = setup.nodes["riga"].execute("moongen --rate 1000")
        assert result.exit_code == 2
        assert "missing" in result.stdout

    def test_bad_values_fail(self):
        setup = self.setup_host()
        result = setup.nodes["riga"].execute(
            "moongen --rate fast --size 64 --duration 0.1"
        )
        assert result.exit_code == 2

    def test_unknown_flag_fails(self):
        setup = self.setup_host()
        result = setup.nodes["riga"].execute(
            "moongen --rate 1 --size 64 --duration 0.1 --turbo yes"
        )
        assert result.exit_code == 2

    def test_flows_flag_accepted(self):
        setup = self.setup_host()
        result = setup.nodes["riga"].execute(
            "moongen --rate 10000 --size 64 --duration 0.01 --flows 4"
        )
        assert result.ok
