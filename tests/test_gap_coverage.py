"""Coverage for remaining branches across modules."""

from __future__ import annotations

import pytest

from repro.testbed.scenarios import build_pos_pair
from tests.conftest import boot_and_configure


class TestMoonGenHostCommandOptions:
    def test_interval_option(self):
        setup = build_pos_pair()
        boot_and_configure(setup)
        result = setup.nodes["riga"].execute(
            "moongen --rate 100000 --size 64 --duration 0.05 --interval 0.01"
        )
        assert result.ok
        # 5 intervals -> 5 TX interval lines plus the summary pair.
        tx_lines = [line for line in result.stdout.splitlines()
                    if "TX" in line and "framing" in line]
        assert len(tx_lines) == 5

    def test_flag_without_value(self):
        setup = build_pos_pair()
        boot_and_configure(setup)
        result = setup.nodes["riga"].execute("moongen --rate")
        assert result.exit_code == 2
        assert "expects a value" in result.stdout

    def test_command_survives_reboot(self):
        """The moongen tool is part of the image/tooling, not OS state."""
        setup = build_pos_pair()
        boot_and_configure(setup)
        node = setup.nodes["riga"]
        node.reset()
        node.execute("ip link set eno1 up")
        node.execute("ip link set eno2 up")
        result = node.execute("moongen --rate 1000 --size 64 --duration 0.01")
        assert result.ok


class TestNodeReleaseSemantics:
    def test_release_closes_transport_session(self):
        setup = build_pos_pair()
        node = setup.nodes["riga"]
        node.set_image(setup.images.resolve("debian-buster"))
        node.reset()
        assert node.execute("echo up").ok
        node.release()
        from repro.core.errors import TransportError

        with pytest.raises(TransportError):
            node.execute("echo down")


class TestCliEdgeCases:
    def test_evaluate_rejects_unknown_format(self, tmp_path, capsys):
        from repro.casestudy import run_case_study
        from repro.cli.main import main

        handle = run_case_study(
            "pos", str(tmp_path), rates=[1_000_000], sizes=(64,),
            duration_s=0.02, interval_s=0.01,
        )
        code = main(["evaluate", "--results", handle.result_path,
                     "--formats", "png"])
        assert code == 1
        assert "unknown export" in capsys.readouterr().err

    def test_topology_vpos_variant(self, tmp_path, capsys):
        from repro.cli.main import main

        target = str(tmp_path / "vfig.svg")
        assert main(["topology", "--platform", "vpos",
                     "--output", target]) == 0
        with open(target) as handle:
            svg = handle.read()
        assert "vkaunas" in svg and "vriga" in svg


class TestRecorderBytes:
    def test_recorder_synthesizes_frame_sized_bodies(self):
        from repro.loadgen.pcap import PcapRecorder
        from repro.netsim.engine import Simulator
        from repro.netsim.link import DirectWire
        from repro.netsim.nic import HardwareNic
        from repro.netsim.packet import Packet

        sim = Simulator()
        tx, sink = HardwareNic(sim, "tx"), HardwareNic(sim, "sink")
        DirectWire(sim, tx, sink)
        recorder = PcapRecorder(sim, sink)
        tx.transmit(Packet(seq=3, frame_size=128))
        sim.run()
        assert len(recorder.records) == 1
        assert recorder.records[0].frame_size == 128
        # Deterministic filler derived from the sequence number.
        assert recorder.records[0].data[0] == 3


class TestVposServiceSeeding:
    def test_service_seed_offsets_instances(self, tmp_path):
        from repro.testbed.vposservice import VposService

        service = VposService(str(tmp_path), seed=100)
        first = service.create_instance("alice")
        # Instance seeds derive from service seed + instance number.
        router = first.environment.setup.router
        assert router.name == "vtartu-router"
