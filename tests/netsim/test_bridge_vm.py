"""Tests for the Linux bridge and virtualization models."""

from __future__ import annotations

import statistics


from repro.netsim.bridge import LinuxBridge
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.nic import Nic, VirtioNic
from repro.netsim.packet import Packet
from repro.netsim.vm import VM_PROFILE, Hypervisor, VirtualizedLinuxRouter


class TestLinuxBridge:
    def make_bridge(self, sim, ports=2):
        bridge = LinuxBridge(sim)
        nics = []
        for index in range(ports):
            nic = Nic(sim, f"br.p{index}")
            bridge.add_port(nic)
            nics.append(nic)
        return bridge, nics

    def test_two_port_forwarding(self):
        sim = Simulator()
        bridge, (p0, p1) = self.make_bridge(sim)
        outside = Nic(sim, "host")
        DirectWire(sim, p1, outside)
        received = []
        outside.set_rx_handler(received.append)
        sim.schedule(0.0, p0.deliver, Packet(seq=0, frame_size=64, src="A", dst="B"))
        sim.run()
        assert len(received) == 1

    def test_unknown_destination_floods_all_other_ports(self):
        sim = Simulator()
        bridge, (p0, p1, p2) = self.make_bridge(sim, ports=3)
        out1, out2 = Nic(sim, "o1"), Nic(sim, "o2")
        DirectWire(sim, p1, out1)
        DirectWire(sim, p2, out2)
        seen1, seen2 = [], []
        out1.set_rx_handler(seen1.append)
        out2.set_rx_handler(seen2.append)
        sim.schedule(0.0, p0.deliver, Packet(seq=0, frame_size=64, src="A", dst="?"))
        sim.run()
        assert len(seen1) == 1 and len(seen2) == 1

    def test_learning_stops_flooding(self):
        sim = Simulator()
        bridge, (p0, p1, p2) = self.make_bridge(sim, ports=3)
        out1, out2 = Nic(sim, "o1"), Nic(sim, "o2")
        DirectWire(sim, p1, out1)
        DirectWire(sim, p2, out2)
        seen1, seen2 = [], []
        out1.set_rx_handler(seen1.append)
        out2.set_rx_handler(seen2.append)
        # B announces itself through port 1.
        sim.schedule(0.0, p1.deliver, Packet(seq=0, frame_size=64, src="B", dst="?"))
        # Later, traffic to B goes only out port 1.
        sim.schedule(0.001, p0.deliver, Packet(seq=1, frame_size=64, src="A", dst="B"))
        sim.run()
        assert bridge.fdb["B"] == "br.p1"
        assert len(seen1) == 1  # only the directed frame
        assert len(seen2) == 1  # only the initial flood

    def test_bridge_cost_is_service_time(self):
        bridge = LinuxBridge(Simulator(), cost_s=5e-6)
        assert bridge.service_time(Packet(seq=0, frame_size=1500)) == 5e-6


class TestVirtualizedRouter:
    def vm_rig(self, sim, seed=0, **kwargs):
        tx = VirtioNic(sim, "lg.tx")
        rx = VirtioNic(sim, "lg.rx")
        p0 = VirtioNic(sim, "vm.p0")
        p1 = VirtioNic(sim, "vm.p1")
        router = VirtualizedLinuxRouter(sim, seed=seed, **kwargs)
        router.add_port(p0)
        router.add_port(p1)
        DirectWire(sim, tx, p0)
        DirectWire(sim, p1, rx)
        received = []
        rx.set_rx_handler(received.append)
        return tx, rx, router, received

    def offer(self, sim, tx, rate_pps, frame_size, duration):
        count = int(rate_pps * duration)
        for seq in range(count):
            sim.schedule(
                seq / rate_pps, tx.transmit, Packet(seq=seq, frame_size=frame_size)
            )
        return count

    def test_drop_free_ceiling_near_0_04_mpps(self):
        """Fig. 3b: the VM forwards without drops up to ~0.04 Mpps."""
        sim = Simulator()
        tx, rx, router, received = self.vm_rig(sim)
        sent = self.offer(sim, tx, rate_pps=30_000, frame_size=64, duration=0.3)
        sim.run()
        assert len(received) == sent

    def test_ceiling_independent_of_packet_size(self):
        """Fig. 3b: the VM ceiling is (nearly) the same for 64 B and
        1500 B frames — the virtualization cost dominates."""
        ceilings = {}
        for size in (64, 1500):
            router = VirtualizedLinuxRouter(Simulator())
            ceilings[size] = 1.0 / router.service_time(
                Packet(seq=0, frame_size=size)
            )
        ratio = ceilings[64] / ceilings[1500]
        assert 1.0 <= ratio < 1.15

    def test_factor_44_below_bare_metal(self):
        """Sec. 5: 'a decrease in the maximum forwarding throughput by a
        factor of up to 44' — the calm-mode service rates must span
        roughly that gap (1.75 Mpps vs ~0.04 Mpps)."""
        from repro.netsim.router import LinuxRouter

        bare = LinuxRouter(Simulator())
        virtual = VirtualizedLinuxRouter(Simulator())
        packet = Packet(seq=0, frame_size=64)
        factor = virtual.base_cost_s / bare.base_cost_s
        assert 35 <= factor <= 55

    def test_overload_is_unstable_across_epochs(self):
        """Beyond the ceiling, per-interval throughput varies much more
        than below it."""
        def interval_rates(rate):
            sim = Simulator()
            tx, rx, router, received = self.vm_rig(sim, seed=3)
            times = []
            rx.set_rx_handler(lambda p: times.append(sim.now))
            self.offer(sim, tx, rate_pps=rate, frame_size=64, duration=1.0)
            sim.run()
            buckets = [0] * 10
            for moment in times:
                buckets[min(int(moment / 0.1), 9)] += 1
            return buckets[1:9]  # ignore edge buckets

        calm = interval_rates(20_000)
        overloaded = interval_rates(200_000)
        calm_cv = statistics.pstdev(calm) / statistics.mean(calm)
        over_cv = statistics.pstdev(overloaded) / statistics.mean(overloaded)
        assert over_cv > calm_cv * 3

    def test_seed_determinism(self):
        def run(seed):
            sim = Simulator()
            tx, rx, router, received = self.vm_rig(sim, seed=seed)
            self.offer(sim, tx, rate_pps=100_000, frame_size=64, duration=0.1)
            sim.run()
            return len(received)

        assert run(7) == run(7)
        assert run(7) != run(8) or run(7) != run(9)  # very likely differs


class TestHypervisor:
    def test_preemption_pauses_and_resumes_guest(self):
        sim = Simulator()
        router = VirtualizedLinuxRouter(sim)
        hypervisor = Hypervisor(sim, quantum_s=0.01, pause_mean_s=1e-4, seed=1)
        hypervisor.attach(router)
        sim.run(until=0.1)
        hypervisor.stop()
        sim.run()  # drain any in-flight release event
        assert hypervisor.preemptions >= 9
        assert hypervisor.total_stolen_s > 0
        assert not router.paused  # released at the end of each pause

    def test_stop_halts_preemption(self):
        sim = Simulator()
        hypervisor = Hypervisor(sim, quantum_s=0.01, seed=1)
        sim.run(until=0.05)
        count = hypervisor.preemptions
        hypervisor.stop()
        sim.run(until=0.2)
        assert hypervisor.preemptions == count

    def test_stolen_time_reduces_throughput_under_saturation(self):
        """With the guest saturated, hypervisor pauses cost throughput."""
        def saturated_throughput(with_hypervisor):
            sim = Simulator()
            rig = TestVirtualizedRouter()
            tx, rx, router, received = rig.vm_rig(sim, seed=5)
            hypervisor = None
            if with_hypervisor:
                hypervisor = Hypervisor(
                    sim, quantum_s=0.004, pause_mean_s=2e-3, seed=6
                )
                hypervisor.attach(router)
            rig.offer(sim, tx, rate_pps=300_000, frame_size=64, duration=0.3)
            sim.run(until=0.4)
            if hypervisor:
                hypervisor.stop()
            return len(received)

        assert saturated_throughput(True) < saturated_throughput(False)

    def test_vm_profile_constants_sane(self):
        assert VM_PROFILE["base_cost_s"] > 0
        # Calm capacity sits just above the paper's 0.04 Mpps drop-free
        # point, so that exact sweep value still forwards without loss.
        capacity = 1.0 / VM_PROFILE["base_cost_s"]
        assert 0.04e6 < capacity < 0.055e6

    def test_paper_sweep_point_0_04_is_drop_free(self):
        """Fig. 3b: 0.04 Mpps forwards without drops for both sizes."""
        for size in (64, 1500):
            sim = Simulator()
            rig = TestVirtualizedRouter()
            tx, rx, router, received = rig.vm_rig(sim, seed=13)
            sent = rig.offer(sim, tx, rate_pps=40_000, frame_size=size,
                             duration=0.3)
            sim.run()
            assert len(received) == sent, f"pkt_sz={size} dropped frames"
