"""Tests for the Tofino-class ASIC switch experiment host."""

from __future__ import annotations

import pytest

from repro.core.errors import TopologyError
from repro.netsim.asicswitch import PIPELINE_LATENCY_S, AsicSwitch, attach_http_control
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic
from repro.netsim.packet import Packet, line_rate_pps


def switch_rig(sim, ports=4):
    switch = AsicSwitch(sim, ports=ports)
    hosts = []
    for index in range(ports):
        nic = HardwareNic(sim, f"host{index}", line_rate_bps=100e9)
        DirectWire(sim, nic, switch.ports[index], length_m=0.0)
        received = []
        nic.set_rx_handler(received.append)
        hosts.append((nic, received))
    return switch, hosts


class TestDataPlane:
    def test_unconfigured_pipeline_drops(self):
        sim = Simulator()
        switch, hosts = switch_rig(sim)
        hosts[0][0].transmit(Packet(seq=0, frame_size=64, dst="B"))
        sim.run()
        assert switch.missed == 1
        assert all(not received for __, received in hosts[1:])

    def test_rule_forwards_to_configured_port(self):
        sim = Simulator()
        switch, hosts = switch_rig(sim)
        switch.add_rule("B", egress_port=2)
        hosts[0][0].transmit(Packet(seq=0, frame_size=64, dst="B"))
        sim.run()
        assert len(hosts[2][1]) == 1
        assert switch.matched == 1

    def test_hairpin_to_ingress_dropped(self):
        sim = Simulator()
        switch, hosts = switch_rig(sim)
        switch.add_rule("B", egress_port=0)
        hosts[0][0].transmit(Packet(seq=0, frame_size=64, dst="B"))
        sim.run()
        assert switch.missed == 1

    def test_pipeline_latency_is_constant(self):
        sim = Simulator()
        switch, hosts = switch_rig(sim)
        switch.add_rule("B", egress_port=1)
        times = []
        hosts[1][0].set_rx_handler(lambda p: times.append(sim.now))
        for seq in range(3):
            sim.schedule(seq * 1e-3, hosts[0][0].transmit,
                         Packet(seq=seq, frame_size=64, dst="B"))
        sim.run()
        serialization = (64 + 20) * 8 / 100e9
        expected_path = 2 * serialization + PIPELINE_LATENCY_S
        for index, moment in enumerate(times):
            assert moment - index * 1e-3 == pytest.approx(expected_path, rel=1e-6)

    def test_forwards_at_line_rate_no_cpu_ceiling(self):
        """The ASIC's ceiling is the port speed: 10 Mpps of 64 B frames
        (far beyond any software router) forward without loss."""
        sim = Simulator()
        switch, hosts = switch_rig(sim)
        switch.add_rule("B", egress_port=1)
        count = 10_000
        rate = 10_000_000
        for seq in range(count):
            sim.schedule(seq / rate, hosts[0][0].transmit,
                         Packet(seq=seq, frame_size=64, dst="B"))
        sim.run()
        assert len(hosts[1][1]) == count
        assert rate < line_rate_pps(100e9, 64)  # sanity: below line rate

    def test_minimum_ports(self):
        with pytest.raises(TopologyError):
            AsicSwitch(Simulator(), ports=1)

    def test_rule_validation(self):
        switch = AsicSwitch(Simulator())
        with pytest.raises(TopologyError, match="out of range"):
            switch.add_rule("B", egress_port=9)


class TestHttpControlPlane:
    def make_managed_switch(self):
        from repro.netsim.host import SimHost
        from repro.testbed.transport import HttpTransport

        sim = Simulator()
        switch, hosts = switch_rig(sim)
        agent_host = SimHost("tofino-agent")
        agent_host.boot("switch-os", "v1")
        transport = HttpTransport(agent_host)
        attach_http_control(switch, transport)
        transport.connect()
        return sim, switch, hosts, transport

    def test_add_rule_via_http(self):
        sim, switch, hosts, transport = self.make_managed_switch()
        result = transport.execute("POST /tables/forward B 2")
        assert result.ok
        assert switch.rules() == {"B": 2}

    def test_list_rules_via_http(self):
        sim, switch, hosts, transport = self.make_managed_switch()
        transport.execute("POST /tables/forward A 1")
        transport.execute("POST /tables/forward B 2")
        listing = transport.execute("GET /tables/forward")
        assert listing.stdout.splitlines() == ["A->1", "B->2"]

    def test_delete_rule_via_http(self):
        sim, switch, hosts, transport = self.make_managed_switch()
        transport.execute("POST /tables/forward B 2")
        assert transport.execute("POST /tables/forward/delete B").ok
        assert switch.rules() == {}
        missing = transport.execute("POST /tables/forward/delete B")
        assert not missing.ok

    def test_malformed_request_rejected(self):
        sim, switch, hosts, transport = self.make_managed_switch()
        bad = transport.execute("POST /tables/forward B")
        assert not bad.ok
        bad_port = transport.execute("POST /tables/forward B nine")
        assert not bad_port.ok

    def test_http_configured_switch_forwards(self):
        """End to end: a setup script configures the ASIC over HTTP,
        then the data plane carries traffic accordingly."""
        sim, switch, hosts, transport = self.make_managed_switch()
        transport.execute("POST /tables/forward B 3")
        hosts[0][0].transmit(Packet(seq=0, frame_size=64, dst="B"))
        sim.run()
        assert len(hosts[3][1]) == 1
