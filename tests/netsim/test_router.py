"""Tests for the Linux-router forwarding model (bare metal)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import TopologyError
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic
from repro.netsim.packet import Packet, line_rate_pps
from repro.netsim.router import BARE_METAL_PROFILE, LinuxRouter


def router_rig(sim, **router_kwargs):
    """LoadGen-tx -> DuT p0 -> router -> DuT p1 -> LoadGen-rx."""
    tx = HardwareNic(sim, "lg.tx")
    rx = HardwareNic(sim, "lg.rx")
    p0 = HardwareNic(sim, "dut.p0")
    p1 = HardwareNic(sim, "dut.p1")
    router = LinuxRouter(sim, **router_kwargs)
    router.add_port(p0)
    router.add_port(p1)
    DirectWire(sim, tx, p0)
    DirectWire(sim, p1, rx)
    received = []
    rx.set_rx_handler(received.append)
    return tx, rx, router, received


def offer(sim, tx, rate_pps, frame_size, duration):
    count = int(rate_pps * duration)
    for seq in range(count):
        sim.schedule(
            seq / rate_pps, tx.transmit, Packet(seq=seq, frame_size=frame_size)
        )
    return count


class TestForwarding:
    def test_packets_traverse_both_ports(self):
        sim = Simulator()
        tx, rx, router, received = router_rig(sim)
        tx.transmit(Packet(seq=0, frame_size=64))
        sim.run()
        assert len(received) == 1
        assert received[0].hops == 1

    def test_bidirectional_forwarding(self):
        sim = Simulator()
        tx, rx, router, received = router_rig(sim)
        # Inject a frame at port 1; it must exit at port 0.
        back = []
        tx.set_rx_handler(back.append)
        rx_side = router.ports[1]
        sim.schedule(0.0, rx_side.deliver, Packet(seq=0, frame_size=64))
        sim.run()
        assert len(back) == 1

    def test_throughput_below_ceiling_is_lossless(self):
        sim = Simulator()
        tx, rx, router, received = router_rig(sim)
        sent = offer(sim, tx, rate_pps=1_000_000, frame_size=64, duration=0.02)
        sim.run()
        assert len(received) == sent

    def test_64b_ceiling_is_cpu_bound_at_1_75_mpps(self):
        """Fig. 3a: 64 B forwarding saturates around 1.75 Mpps."""
        sim = Simulator()
        tx, rx, router, received = router_rig(sim)
        offer(sim, tx, rate_pps=3_000_000, frame_size=64, duration=0.05)
        sim.run()
        achieved = len(received) / 0.05
        assert achieved == pytest.approx(1.75e6, rel=0.03)

    def test_1500b_ceiling_is_line_rate_bound(self):
        """Fig. 3a: 1500 B forwarding is limited by the 10 G NIC."""
        sim = Simulator()
        tx, rx, router, received = router_rig(sim)
        offer(sim, tx, rate_pps=1_200_000, frame_size=1500, duration=0.05)
        sim.run()
        achieved = len(received) / 0.05
        assert achieved == pytest.approx(line_rate_pps(10e9, 1500), rel=0.03)

    def test_cpu_capacity_exceeds_line_rate_for_1500b(self):
        """The model's CPU service rate for 1500 B frames must be above
        the 10 G line rate, otherwise the bottleneck would be wrong."""
        router = LinuxRouter(Simulator())
        service = router.service_time(Packet(seq=0, frame_size=1500))
        assert 1.0 / service > line_rate_pps(10e9, 1500)

    def test_overload_drops_are_counted(self):
        sim = Simulator()
        tx, rx, router, received = router_rig(sim)
        sent = offer(sim, tx, rate_pps=3_000_000, frame_size=64, duration=0.02)
        sim.run()
        assert router.stats.backlog_dropped > 0
        assert router.stats.forwarded + router.stats.backlog_dropped == (
            router.stats.received
        )

    def test_gate_blocks_forwarding(self):
        """The admission gate models an unconfigured DuT: without
        ip_forward the router silently drops (and the experiment shows
        zero throughput, which is how a missing setup script manifests)."""
        sim = Simulator()
        tx, rx, router, received = router_rig(sim)
        enabled = {"on": False}
        router.gate = lambda: enabled["on"]
        tx.transmit(Packet(seq=0, frame_size=64))
        sim.run()
        assert received == []
        enabled["on"] = True
        tx.transmit(Packet(seq=1, frame_size=64))
        sim.run()
        assert len(received) == 1

    def test_clear_drops_backlog(self):
        sim = Simulator()
        tx, rx, router, received = router_rig(sim)
        offer(sim, tx, rate_pps=3_000_000, frame_size=64, duration=0.001)
        sim.run(until=0.0005)
        router.clear()
        backlog_at_clear = router.backlog_depth
        sim.run()
        assert backlog_at_clear == 0
        # Packets already forwarded plus drops may not cover everything:
        # cleared frames disappear like a rebooted kernel's queues.

    def test_default_two_port_requirement(self):
        sim = Simulator()
        router = LinuxRouter(sim)
        router.add_port(HardwareNic(sim, "p0"))
        with pytest.raises(TopologyError, match="2 ports"):
            router.output_port(router.ports[0], Packet(seq=0, frame_size=64))

    def test_pause_resume(self):
        sim = Simulator()
        tx, rx, router, received = router_rig(sim)
        router.pause()
        tx.transmit(Packet(seq=0, frame_size=64))
        sim.run(until=0.01)
        assert received == []
        assert router.backlog_depth == 1
        router.resume()
        sim.run()
        assert len(received) == 1

    def test_describe_includes_cost_model(self):
        router = LinuxRouter(Simulator())
        described = router.describe()
        assert described["base_cost_s"] == BARE_METAL_PROFILE["base_cost_s"]
        assert described["model"] == "LinuxRouter"


@given(
    rate_mpps=st.floats(min_value=0.1, max_value=3.0),
    frame_size=st.sampled_from([64, 512, 1500]),
)
@settings(max_examples=25, deadline=None)
def test_goodput_never_exceeds_offered_or_capacity_property(rate_mpps, frame_size):
    """Received rate is bounded by offered rate, CPU capacity and line
    rate — the three ceilings of the case study."""
    sim = Simulator()
    tx, rx, router, received = router_rig(sim)
    duration = 0.01
    rate = rate_mpps * 1e6
    sent = offer(sim, tx, rate_pps=rate, frame_size=frame_size, duration=duration)
    times = []
    rx.set_rx_handler(lambda p: (received.append(p), times.append(sim.now)))
    sim.run()
    # Only count packets received within the offered-load window; the
    # backlog drains for a short tail afterwards, just like a real run.
    achieved = sum(1 for moment in times if moment <= duration) / duration
    cpu_capacity = 1.0 / router.service_time(Packet(seq=0, frame_size=frame_size))
    tolerance = 1.05
    assert achieved <= rate * tolerance + 1
    assert achieved <= cpu_capacity * tolerance
    assert achieved <= line_rate_pps(10e9, frame_size) * tolerance
    assert len(received) <= sent
