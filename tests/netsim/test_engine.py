"""Tests for the discrete-event simulation core."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.netsim.engine import PeriodicTimer, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError, match="past"):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="before"):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()

        def reenter():
            sim.run()

        sim.schedule(0.0, reenter)
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()

    def test_events_processed_counter(self):
        sim = Simulator()
        for __ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending == 1


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_fire_times_are_monotone_property(delays):
    """Whatever delays are scheduled, callbacks observe a non-decreasing
    clock and every event fires exactly once."""
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert len(observed) == len(delays)
    assert observed == sorted(observed)


class TestProcess:
    def test_generator_process_advances_clock(self):
        sim = Simulator()
        trace = []

        def body():
            trace.append(sim.now)
            yield 1.0
            trace.append(sim.now)
            yield 2.5
            trace.append(sim.now)

        process = sim.process(body())
        sim.run()
        assert trace == [0.0, 1.0, 3.5]
        assert not process.alive

    def test_stop_terminates_process(self):
        sim = Simulator()
        trace = []

        def body():
            while True:
                trace.append(sim.now)
                yield 1.0

        process = sim.process(body())
        sim.run(until=3.5)
        process.stop()
        sim.run()
        assert not process.alive
        assert len(trace) == 4  # t=0,1,2,3

    def test_invalid_yield_rejected(self):
        sim = Simulator()

        def body():
            yield -1.0

        with pytest.raises(SimulationError, match="invalid delay"):
            sim.process(body())


class TestPeriodicTimer:
    def test_fires_every_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.5)
        timer.stop()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_custom_start_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now), start_delay=0.5)
        sim.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError, match="positive"):
            PeriodicTimer(Simulator(), 0.0, lambda: None)
