"""Tests for the simulated live-booted Linux host and its shell."""

from __future__ import annotations

import pytest

from repro.core.errors import NodeError
from repro.netsim.host import SimHost


@pytest.fixture
def host():
    h = SimHost("tartu")
    h.boot("debian-buster", "20201012T000000Z", kernel_version="4.19.0-11")
    return h


class TestLifecycle:
    def test_boot_sets_clean_state(self, host):
        assert host.booted
        assert host.sysctl == {"net.ipv4.ip_forward": "0"}
        assert host.filesystem == {}
        assert all(not iface.up for iface in host.interfaces.values())

    def test_reboot_discards_all_mutations(self, host):
        """The live-boot property (R3): nothing survives a reboot."""
        host.run_command("sysctl -w net.ipv4.ip_forward=1")
        host.run_command("ip link set eno1 up")
        host.write_file("/etc/conf", "data")
        host.boot("debian-buster", "20201012T000000Z")
        assert host.sysctl["net.ipv4.ip_forward"] == "0"
        assert not host.interfaces["eno1"].up
        assert "/etc/conf" not in host.filesystem

    def test_boot_count_increments(self, host):
        assert host.boot_count == 1
        host.boot("debian-buster", "v2")
        assert host.boot_count == 2

    def test_shutdown_makes_unreachable(self, host):
        host.shutdown()
        assert not host.reachable
        with pytest.raises(NodeError, match="not reachable"):
            host.run_command("echo hi")

    def test_wedged_host_unreachable_until_reboot(self, host):
        host.wedge()
        assert not host.reachable
        with pytest.raises(NodeError):
            host.run_command("echo hi")
        host.boot("debian-buster", "v1")
        assert host.reachable

    def test_boot_parameters_recorded(self, host):
        host.boot("img", "v1", boot_parameters={"isolcpus": "1-11"})
        assert host.boot_parameters == {"isolcpus": "1-11"}
        assert host.describe()["boot_parameters"] == {"isolcpus": "1-11"}


class TestForwardingPredicate:
    def test_requires_sysctl_and_links(self, host):
        assert not host.forwarding_enabled
        host.run_command("sysctl -w net.ipv4.ip_forward=1")
        assert not host.forwarding_enabled  # links still down
        host.run_command("ip link set eno1 up")
        host.run_command("ip link set eno2 up")
        assert host.forwarding_enabled

    def test_wedged_host_does_not_forward(self, host):
        host.run_command("sysctl -w net.ipv4.ip_forward=1")
        host.run_command("ip link set eno1 up")
        host.run_command("ip link set eno2 up")
        host.wedge()
        assert not host.forwarding_enabled


class TestShell:
    def test_echo(self, host):
        result = host.run_command("echo hello world")
        assert result.ok and result.stdout == "hello world"

    def test_quoted_arguments(self, host):
        result = host.run_command("echo 'a  b'")
        assert result.stdout == "a  b"

    def test_unknown_command_127(self, host):
        result = host.run_command("nonexistent-tool --flag")
        assert result.exit_code == 127
        assert "command not found" in result.stdout

    def test_parse_error_reported(self, host):
        result = host.run_command("echo 'unterminated")
        assert result.exit_code == 2

    def test_empty_command_ok(self, host):
        assert host.run_command("").ok

    def test_hostname_uname(self, host):
        assert host.run_command("hostname").stdout == "tartu"
        assert "4.19.0-11" in host.run_command("uname -a").stdout
        assert host.run_command("uname -r").stdout == "4.19.0-11"

    def test_sysctl_read_write(self, host):
        write = host.run_command("sysctl -w net.core.rmem_max=4096")
        assert write.ok
        read = host.run_command("sysctl net.core.rmem_max")
        assert read.stdout == "net.core.rmem_max = 4096"

    def test_sysctl_unknown_key(self, host):
        assert host.run_command("sysctl no.such.key").exit_code == 255

    def test_ip_link_set_and_show(self, host):
        assert host.run_command("ip link set eno1 up").ok
        show = host.run_command("ip link show")
        assert "eno1" in show.stdout and "state UP" in show.stdout

    def test_ip_link_unknown_device(self, host):
        result = host.run_command("ip link set eth9 up")
        assert not result.ok
        assert "Cannot find device" in result.stdout

    def test_ip_addr_add_and_duplicate(self, host):
        assert host.run_command("ip addr add 10.0.0.1/24 dev eno1").ok
        duplicate = host.run_command("ip addr add 10.0.0.1/24 dev eno1")
        assert duplicate.exit_code == 2  # RTNETLINK File exists

    def test_file_commands(self, host):
        host.run_command("write-file /tmp/x hello")
        assert host.run_command("cat /tmp/x").stdout == "hello"
        assert host.run_command("rm /tmp/x").ok
        assert not host.run_command("cat /tmp/x").ok

    def test_rm_force(self, host):
        assert host.run_command("rm -f /does/not/exist").ok
        assert not host.run_command("rm /does/not/exist").ok

    def test_sleep_validates_argument(self, host):
        assert host.run_command("sleep 0.5").ok
        assert not host.run_command("sleep soon").ok

    def test_lscpu_reports_model(self, host):
        assert "Xeon" in host.run_command("lscpu").stdout

    def test_ethtool_reports_speed_with_nic(self, host):
        from repro.netsim.engine import Simulator
        from repro.netsim.nic import HardwareNic

        host.interfaces["eno1"].nic = HardwareNic(Simulator(), "tartu.eno1")
        output = host.run_command("ethtool eno1").stdout
        assert "10000Mb/s" in output

    def test_registered_command_extension(self, host):
        host.register_command("moongen", lambda args: (0, f"ran {' '.join(args)}"))
        result = host.run_command("moongen --rate 1000")
        assert result.stdout == "ran --rate 1000"

    def test_command_log_accumulates(self, host):
        host.run_command("echo 1")
        host.run_command("echo 2")
        assert [entry.command for entry in host.command_log] == ["echo 1", "echo 2"]

    def test_describe_inventory(self, host):
        info = host.describe()
        assert info["hostname"] == "tartu"
        assert info["image"] == "debian-buster"
        assert len(info["interfaces"]) == 2
