"""Batched packet-event fast path: exact equivalence with the event loop.

Every test here runs the same measurement twice — once on the legacy
per-packet event path (``POS_NETSIM_BATCH=0``), once on the batched
replay — and demands *exact* equality of every observable: job
counters, per-interval statistics, latency samples (float-for-float),
NIC statistics and router statistics.  The legacy path remains the
semantic reference; the fast path is only allowed to be faster.
"""

from __future__ import annotations

import os

import pytest

from repro.loadgen.moongen import MoonGen
from repro.loadgen.osnt import Osnt
from repro.netsim import fastpath
from repro.netsim.engine import Simulator
from repro.netsim.link import CutThroughSwitchPort, DirectWire
from repro.netsim.nic import HardwareNic, VirtioNic
from repro.netsim.router import LinuxRouter


def build_chain(sim, nic_class=HardwareNic, seed=3, generator=MoonGen,
                link_class=DirectWire, **link_kwargs):
    tx = nic_class(sim, "lg.tx")
    rx = nic_class(sim, "lg.rx")
    p0 = nic_class(sim, "dut.p0")
    p1 = nic_class(sim, "dut.p1")
    router = LinuxRouter(sim)
    router.add_port(p0)
    router.add_port(p1)
    link_class(sim, tx, p0, **link_kwargs)
    link_class(sim, p1, rx, **link_kwargs)
    if generator is Osnt:
        gen = Osnt(sim, tx, rx)
    else:
        gen = generator(sim, tx, rx, seed=seed)
    return gen, router


def run_once(batched, rate_pps, frame_size, duration_s=0.05, pattern="cbr",
             interval_s=0.01, seed=3, generator=MoonGen, gate=None):
    """One full measurement on a fresh world; returns all observables."""
    previous = os.environ.get("POS_NETSIM_BATCH")
    os.environ["POS_NETSIM_BATCH"] = "1" if batched else "0"
    fastpath.enabled.refresh()
    try:
        sim = Simulator()
        gen, router = build_chain(sim, seed=seed, generator=generator)
        if gate is not None:
            router.gate = gate
        job = gen.start(
            rate_pps=rate_pps, frame_size=frame_size,
            duration_s=duration_s, pattern=pattern, interval_s=interval_s,
        )
        sim.run(until=duration_s + 0.05)
        assert job.finished
        return {
            "job": (job.tx_packets, job.rx_packets, job.tx_bytes, job.rx_bytes),
            "intervals": [
                (i.start, i.tx_packets, i.rx_packets, i.tx_bytes, i.rx_bytes)
                for i in job.intervals
            ],
            "latency": list(job.latency_samples_s),
            "router": router.stats.snapshot(),
            "ports": [port.stats.snapshot() for port in router.ports],
            "tx_nic": gen.tx_nic.stats.snapshot(),
            "rx_nic": gen.rx_nic.stats.snapshot(),
            "events": sim.events_processed,
        }
    finally:
        if previous is None:
            os.environ.pop("POS_NETSIM_BATCH", None)
        else:
            os.environ["POS_NETSIM_BATCH"] = previous
        fastpath.enabled.refresh()


def assert_equivalent(**kwargs):
    legacy = run_once(False, **kwargs)
    batched = run_once(True, **kwargs)
    for key in ("job", "intervals", "latency", "router", "ports",
                "tx_nic", "rx_nic"):
        assert batched[key] == legacy[key], f"{key} diverged"
    return legacy, batched


class TestExactEquivalence:
    def test_cbr_underload(self):
        legacy, batched = assert_equivalent(rate_pps=200_000, frame_size=64)
        assert legacy["job"][0] == pytest.approx(10_000, abs=2)  # traffic flowed
        assert batched["job"][1] > 0

    def test_cbr_large_frames(self):
        assert_equivalent(rate_pps=100_000, frame_size=1500)

    def test_cbr_overload_with_drops(self):
        # Far past the router's ~1.75 Mpps service rate: TX-ring and
        # backlog occupancy recurrences must replay the drop pattern
        # exactly, frame for frame.
        legacy, batched = assert_equivalent(rate_pps=4_000_000, frame_size=64)
        assert legacy["router"]["backlog_dropped"] > 0
        assert batched["router"]["backlog_dropped"] > 0

    def test_poisson_pacing_replays_rng(self):
        # The batched loop must draw the pacing RNG once per send, after
        # the send, or every gap after the first diverges.
        assert_equivalent(
            rate_pps=300_000, frame_size=64, pattern="poisson", seed=11
        )

    def test_poisson_overload(self):
        assert_equivalent(
            rate_pps=3_000_000, frame_size=64, pattern="poisson", seed=5
        )

    def test_closed_gate_drops_at_admission(self):
        legacy, batched = assert_equivalent(
            rate_pps=200_000, frame_size=64, gate=lambda: False
        )
        assert legacy["job"][1] == 0
        assert legacy["router"]["backlog_dropped"] == legacy["router"]["received"]

    def test_osnt_timestamps_every_frame(self):
        legacy, batched = assert_equivalent(
            rate_pps=100_000, frame_size=64, generator=Osnt
        )
        # OSNT samples every frame, not MoonGen's 1-in-100 subset.
        assert len(batched["latency"]) == batched["job"][1]
        assert len(batched["latency"]) > 1_000

    @staticmethod
    def _two_runs(batched):
        previous = os.environ.get("POS_NETSIM_BATCH")
        os.environ["POS_NETSIM_BATCH"] = "1" if batched else "0"
        fastpath.enabled.refresh()
        try:
            sim = Simulator()
            gen, __ = build_chain(sim)
            first = gen.start(rate_pps=200_000, frame_size=64,
                              duration_s=0.05, interval_s=0.01)
            sim.run(until=0.1)
            gen.reseed(3)
            second = gen.start(rate_pps=200_000, frame_size=64,
                               duration_s=0.05, interval_s=0.01)
            sim.run(until=0.2)
            assert first.finished and second.finished
            return (
                (first.tx_packets, first.rx_packets, first.latency_samples_s),
                (second.tx_packets, second.rx_packets, second.latency_samples_s),
            )
        finally:
            if previous is None:
                os.environ.pop("POS_NETSIM_BATCH", None)
            else:
                os.environ["POS_NETSIM_BATCH"] = previous
            fastpath.enabled.refresh()

    def test_back_to_back_runs_on_one_generator(self):
        # Residual chain state from run k must not leak into run k+1,
        # and the second run must match the legacy path too.
        assert self._two_runs(True) == self._two_runs(False)


class TestEventReduction:
    def test_batched_path_cuts_events_by_10x(self):
        legacy = run_once(False, rate_pps=500_000, frame_size=64)
        batched = run_once(True, rate_pps=500_000, frame_size=64)
        assert batched["events"] * 10 <= legacy["events"]


def build_custom_chain(sim, router):
    tx = HardwareNic(sim, "lg.tx")
    rx = HardwareNic(sim, "lg.rx")
    p0 = HardwareNic(sim, "dut.p0")
    p1 = HardwareNic(sim, "dut.p1")
    router.add_port(p0)
    router.add_port(p1)
    DirectWire(sim, tx, p0)
    DirectWire(sim, p1, rx)
    return MoonGen(sim, tx, rx, seed=0)


class TestCompileEligibility:
    def test_simple_chain_compiles(self):
        sim = Simulator()
        gen, router = build_chain(sim)
        spec = fastpath.compile_dag(gen)
        assert spec is not None
        assert spec.devices == [router]
        assert spec.tx_nic is gen.tx_nic
        assert spec.rx_nic is gen.rx_nic
        assert [stage.kind for stage in spec.stages] == ["fifo", "serialize"]

    def test_virtio_chain_compiles(self):
        # NIC class does not matter, only the wiring and router type.
        sim = Simulator()
        gen, __ = build_chain(sim, nic_class=VirtioNic)
        assert fastpath.compile_dag(gen) is not None

    def test_contended_switch_port_rejected(self):
        sim = Simulator()
        gen, __ = build_chain(
            sim, link_class=CutThroughSwitchPort, background_load=0.3
        )
        assert fastpath.compile_dag(gen) is None

    def test_uncontended_switch_port_accepted(self):
        sim = Simulator()
        gen, __ = build_chain(sim, link_class=CutThroughSwitchPort)
        assert fastpath.compile_dag(gen) is not None

    def test_three_port_router_rejected(self):
        sim = Simulator()
        gen, router = build_chain(sim)
        router.add_port(HardwareNic(sim, "dut.p2"))
        assert fastpath.compile_dag(gen) is None

    def test_plain_subclass_inherits_capability(self):
        # A subclass that overrides nothing behavioural inherits the
        # parent's declaration: eligibility is declared, not type-gated.
        class RenamedRouter(LinuxRouter):
            def describe(self):  # non-replay method: irrelevant
                return {"model": "renamed"}

        sim = Simulator()
        gen = build_custom_chain(sim, RenamedRouter(sim))
        assert fastpath.compile_dag(gen) is not None

    def test_undeclared_service_override_rejected(self):
        # Overriding service_time below the declaring class silently
        # voids the capability: the subclass never vouched for it.
        class JitteryRouter(LinuxRouter):
            def service_time(self, packet):
                return super().service_time(packet) * 1.01

        sim = Simulator()
        gen = build_custom_chain(sim, JitteryRouter(sim))
        assert fastpath.compile_dag(gen) is None

    def test_redeclaring_subclass_compiles_bit_identically(self):
        # A deterministic cost model that re-declares the capability for
        # its own override is eligible — and must replay exactly.
        class SlowRouter(LinuxRouter):
            deterministic_service = True

            def service_time(self, packet):
                return super().service_time(packet) * 2.0

        def run(batched):
            previous = os.environ.get("POS_NETSIM_BATCH")
            os.environ["POS_NETSIM_BATCH"] = "1" if batched else "0"
            fastpath.enabled.refresh()
            try:
                sim = Simulator()
                gen = build_custom_chain(sim, SlowRouter(sim))
                job = gen.start(rate_pps=300_000, frame_size=64,
                                duration_s=0.05, interval_s=0.01)
                sim.run(until=0.1)
                return (job.tx_packets, job.rx_packets,
                        tuple(job.latency_samples_s), sim.events_processed)
            finally:
                if previous is None:
                    os.environ.pop("POS_NETSIM_BATCH", None)
                else:
                    os.environ["POS_NETSIM_BATCH"] = previous
                fastpath.enabled.refresh()

        sim = Simulator()
        assert fastpath.compile_dag(build_custom_chain(sim, SlowRouter(sim))) \
            is not None
        legacy = run(False)
        batched = run(True)
        assert batched[:3] == legacy[:3]
        assert batched[3] < legacy[3]

    def test_stochastic_vm_router_rejected(self):
        from repro.netsim.vm import VirtualizedLinuxRouter

        sim = Simulator()
        gen = build_custom_chain(sim, VirtualizedLinuxRouter(sim))
        assert fastpath.compile_dag(gen) is None

    def test_busy_stage_rejected(self):
        sim = Simulator()
        gen, router = build_chain(sim)
        router._busy = True
        assert fastpath.compile_dag(gen) is None

    def test_spec_reuse_across_runs(self):
        # Consecutive runs on an unchanged topology reuse the compiled
        # spec object (and therefore its preallocated replay arrays).
        sim = Simulator()
        gen, __ = build_chain(sim)
        first = fastpath.acquire_dag(gen)
        assert first is not None
        again = fastpath.acquire_dag(gen)
        assert again is first

    def test_kill_switch_disables_batching(self, monkeypatch):
        monkeypatch.setenv("POS_NETSIM_BATCH", "0")
        fastpath.enabled.refresh()
        assert not fastpath.enabled()
        monkeypatch.setenv("POS_NETSIM_BATCH", "1")
        fastpath.enabled.refresh()
        assert fastpath.enabled()
        monkeypatch.delenv("POS_NETSIM_BATCH")
        fastpath.enabled.refresh()
        assert fastpath.enabled()
