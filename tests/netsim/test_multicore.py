"""Tests for the multi-core RSS router and the robustness cliff model."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.multicore import MultiCoreRouter
from repro.netsim.nic import HardwareNic
from repro.netsim.packet import Packet
from repro.netsim.router import LinuxRouter


def rig(sim, cores=4, line_rate_bps=100e9, **kwargs):
    """High-line-rate rig so the CPU, not the wire, is the bottleneck."""
    tx = HardwareNic(sim, "tx", line_rate_bps=line_rate_bps)
    rx = HardwareNic(sim, "rx", line_rate_bps=line_rate_bps)
    p0 = HardwareNic(sim, "p0", line_rate_bps=line_rate_bps)
    p1 = HardwareNic(sim, "p1", line_rate_bps=line_rate_bps)
    router = MultiCoreRouter(sim, cores=cores, **kwargs)
    router.add_port(p0)
    router.add_port(p1)
    DirectWire(sim, tx, p0)
    DirectWire(sim, p1, rx)
    received = []
    rx.set_rx_handler(received.append)
    return tx, router, received


def offer(sim, tx, rate_pps, duration, flows, frame_size=64):
    count = int(rate_pps * duration)
    for seq in range(count):
        sim.schedule(
            seq / rate_pps,
            tx.transmit,
            Packet(seq=seq, frame_size=frame_size, flow=seq % flows),
        )
    return count


class TestRssSteering:
    def test_one_flow_uses_one_core(self):
        sim = Simulator()
        tx, router, received = rig(sim)
        offer(sim, tx, rate_pps=1_000_000, duration=0.01, flows=1)
        sim.run()
        active = [count for count in router.per_core_forwarded if count > 0]
        assert len(active) == 1

    def test_flows_spread_across_cores(self):
        sim = Simulator()
        tx, router, received = rig(sim, cores=4)
        offer(sim, tx, rate_pps=1_000_000, duration=0.01, flows=4)
        sim.run()
        active = [count for count in router.per_core_forwarded if count > 0]
        assert len(active) == 4
        # Round-robin flows load the cores evenly.
        assert max(active) - min(active) <= max(active) * 0.05 + 1

    def test_same_flow_always_same_core(self):
        sim = Simulator()
        router = MultiCoreRouter(sim, cores=8)
        packet = Packet(seq=0, frame_size=64, flow=5)
        assert router.core_for(packet) == router.core_for(packet)

    @staticmethod
    def _ceiling(flows, cores, duration=0.01):
        """Saturated throughput, counting only in-window arrivals so the
        post-window backlog drain does not inflate the rate."""
        sim = Simulator()
        tx, router, received = rig(sim, cores=cores)
        times = []
        router.ports[1].link.peer(router.ports[1]).set_rx_handler(
            lambda p: times.append(sim.now)
        )
        offer(sim, tx, rate_pps=9_000_000, duration=duration, flows=flows)
        sim.run()
        return sum(1 for moment in times if moment <= duration) / duration

    def test_throughput_scales_with_flow_count(self):
        """Single-flow ceiling ~1.75 Mpps; four flows on four cores get
        close to 4x."""
        one = self._ceiling(flows=1, cores=4)
        four = self._ceiling(flows=4, cores=4)
        assert one == pytest.approx(1.75e6, rel=0.05)
        assert four == pytest.approx(4 * 1.75e6, rel=0.05)

    def test_more_flows_than_cores_caps_at_cores(self):
        assert self._ceiling(flows=8, cores=2) == pytest.approx(
            2 * 1.75e6, rel=0.05
        )

    def test_pause_resume_all_cores(self):
        sim = Simulator()
        tx, router, received = rig(sim, cores=2)
        router.pause()
        offer(sim, tx, rate_pps=100_000, duration=0.001, flows=2)
        sim.run(until=0.01)
        assert received == []
        assert router.backlog_depth > 0
        router.resume()
        sim.run()
        assert len(received) > 0

    def test_invalid_core_count(self):
        with pytest.raises(SimulationError):
            MultiCoreRouter(Simulator(), cores=0)

    def test_describe_reports_cores(self):
        assert MultiCoreRouter(Simulator(), cores=6).describe()["cores"] == 6


class TestDescriptorCliff:
    def test_default_buffers_have_no_cliff_below_1518(self):
        router = LinuxRouter(Simulator())
        assert router.descriptors_for(64) == 1
        assert router.descriptors_for(1518) == 1

    def test_small_buffers_create_cliff(self):
        router = LinuxRouter(Simulator(), rx_buffer_bytes=1024)
        assert router.descriptors_for(1024) == 1
        assert router.descriptors_for(1025) == 2

    def test_service_time_steps_at_buffer_boundary(self):
        router = LinuxRouter(
            Simulator(), rx_buffer_bytes=1024, extra_descriptor_cost_s=300e-9
        )
        below = router.service_time(Packet(seq=0, frame_size=1024))
        above = router.service_time(Packet(seq=0, frame_size=1025))
        assert above - below == pytest.approx(300e-9, rel=0.01)

    def test_moongen_flows_parameter(self):
        from repro.loadgen.moongen import MoonGen

        sim = Simulator()
        tx = HardwareNic(sim, "lg.tx", line_rate_bps=100e9)
        rx = HardwareNic(sim, "lg.rx", line_rate_bps=100e9)
        p0 = HardwareNic(sim, "p0", line_rate_bps=100e9)
        p1 = HardwareNic(sim, "p1", line_rate_bps=100e9)
        router = MultiCoreRouter(sim, cores=4)
        router.add_port(p0)
        router.add_port(p1)
        DirectWire(sim, tx, p0)
        DirectWire(sim, p1, rx)
        gen = MoonGen(sim, tx, rx)
        job = gen.start(rate_pps=6_000_000, frame_size=64, duration_s=0.01,
                        flows=4)
        sim.run(until=0.05)
        assert job.rx_mpps == pytest.approx(6.0, rel=0.05)  # 4 cores keep up
        active = [count for count in router.per_core_forwarded if count > 0]
        assert len(active) == 4

    def test_moongen_invalid_flows(self):
        from repro.loadgen.moongen import MoonGen

        sim = Simulator()
        tx, rx = HardwareNic(sim, "a"), HardwareNic(sim, "b")
        gen = MoonGen(sim, tx, rx)
        with pytest.raises(SimulationError, match="flow"):
            gen.start(rate_pps=1000, frame_size=64, duration_s=0.1, flows=0)
