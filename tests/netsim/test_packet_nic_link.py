"""Tests for packets, NICs, and interconnect models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError, TopologyError
from repro.netsim.engine import Simulator
from repro.netsim.link import (
    PROPAGATION_DELAY_PER_METER,
    CutThroughSwitchPort,
    DirectWire,
    OpticalL1Switch,
)
from repro.netsim.nic import HardwareNic, Nic, VirtioNic
from repro.netsim.packet import (
    ETHERNET_OVERHEAD_BYTES,
    Packet,
    line_rate_pps,
    wire_bits,
)


class TestPacket:
    def test_wire_bits_include_framing(self):
        assert wire_bits(64) == (64 + ETHERNET_OVERHEAD_BYTES) * 8

    def test_line_rate_64b_at_10g_is_14_88_mpps(self):
        """The canonical 10 GbE small-packet line rate."""
        assert line_rate_pps(10e9, 64) == pytest.approx(14.88e6, rel=1e-3)

    def test_line_rate_1500b_at_10g_is_0_82_mpps(self):
        """The ceiling that caps Fig. 3a's 1500 B curve."""
        assert line_rate_pps(10e9, 1500) == pytest.approx(0.822e6, rel=1e-2)

    def test_frame_size_bounds_enforced(self):
        with pytest.raises(SimulationError):
            Packet(seq=0, frame_size=32)
        with pytest.raises(SimulationError):
            Packet(seq=0, frame_size=9000)

    def test_latency_requires_both_timestamps(self):
        packet = Packet(seq=0, frame_size=64)
        assert packet.latency is None
        packet.tx_time = 1.0
        assert packet.latency is None
        packet.rx_time = 1.5
        assert packet.latency == pytest.approx(0.5)


def wire_pair(sim, link_class=DirectWire, **kwargs):
    a = HardwareNic(sim, "a")
    b = HardwareNic(sim, "b")
    link = link_class(sim, a, b, **kwargs)
    return a, b, link


class TestNic:
    def test_transmit_delivers_to_peer(self):
        sim = Simulator()
        a, b, __ = wire_pair(sim)
        received = []
        b.set_rx_handler(received.append)
        a.transmit(Packet(seq=1, frame_size=64))
        sim.run()
        assert len(received) == 1
        assert received[0].seq == 1

    def test_serialization_delay_matches_line_rate(self):
        sim = Simulator()
        a, b, __ = wire_pair(sim, length_m=0.0)
        times = []
        b.set_rx_handler(lambda p: times.append(sim.now))
        a.transmit(Packet(seq=0, frame_size=64))
        sim.run()
        assert times[0] == pytest.approx(wire_bits(64) / 10e9)

    def test_back_to_back_frames_serialize_sequentially(self):
        sim = Simulator()
        a, b, __ = wire_pair(sim, length_m=0.0)
        times = []
        b.set_rx_handler(lambda p: times.append(sim.now))
        for seq in range(3):
            a.transmit(Packet(seq=seq, frame_size=64))
        sim.run()
        gap = wire_bits(64) / 10e9
        assert times == pytest.approx([gap, 2 * gap, 3 * gap])

    def test_unwired_port_drops(self):
        sim = Simulator()
        nic = Nic(sim, "lonely")
        assert not nic.transmit(Packet(seq=0, frame_size=64))
        assert nic.stats.tx_dropped == 1

    def test_tx_ring_overflow_drops(self):
        sim = Simulator()
        a, b, __ = wire_pair(sim)
        a.tx_ring_size = 4
        sent = sum(
            1 for seq in range(10) if a.transmit(Packet(seq=seq, frame_size=64))
        )
        assert sent < 10
        assert a.stats.tx_dropped == 10 - sent

    def test_rx_without_handler_drops(self):
        sim = Simulator()
        a, b, __ = wire_pair(sim)
        a.transmit(Packet(seq=0, frame_size=64))
        sim.run()
        assert b.stats.rx_dropped == 1

    def test_counters_track_bytes(self):
        sim = Simulator()
        a, b, __ = wire_pair(sim)
        b.set_rx_handler(lambda p: None)
        a.transmit(Packet(seq=0, frame_size=1500))
        sim.run()
        assert a.stats.tx_bytes == 1500
        assert b.stats.rx_bytes == 1500

    def test_double_wiring_rejected(self):
        sim = Simulator()
        a, b, __ = wire_pair(sim)
        c = HardwareNic(sim, "c")
        with pytest.raises(TopologyError, match="already wired"):
            DirectWire(sim, a, c)

    def test_timestamping_capability(self):
        sim = Simulator()
        assert HardwareNic(sim, "hw").supports_timestamping
        assert not VirtioNic(sim, "virt").supports_timestamping

    def test_invalid_line_rate_rejected(self):
        with pytest.raises(SimulationError):
            Nic(Simulator(), "x", line_rate_bps=0)


@given(
    count=st.integers(min_value=1, max_value=60),
    frame_size=st.integers(min_value=64, max_value=1518),
)
@settings(max_examples=40, deadline=None)
def test_nic_conservation_property(count, frame_size):
    """Every transmitted frame is either received by the peer or counted
    as dropped somewhere — no packet vanishes."""
    sim = Simulator()
    a = HardwareNic(sim, "a", tx_ring_size=16)
    b = HardwareNic(sim, "b", rx_ring_size=16)
    DirectWire(sim, a, b)
    received = []
    b.set_rx_handler(received.append)
    for seq in range(count):
        a.transmit(Packet(seq=seq, frame_size=frame_size))
    sim.run()
    assert a.stats.tx_packets + a.stats.tx_dropped == count
    assert len(received) + b.stats.rx_dropped == a.stats.tx_packets


class TestInterconnects:
    def _one_way_delay(self, link_class, **kwargs):
        sim = Simulator()
        a, b, __ = wire_pair(sim, link_class=link_class, length_m=2.0, **kwargs)
        times = []
        b.set_rx_handler(lambda p: times.append(sim.now))
        a.transmit(Packet(seq=0, frame_size=64))
        sim.run()
        return times[0] - wire_bits(64) / 10e9

    def test_direct_wire_is_propagation_only(self):
        delay = self._one_way_delay(DirectWire)
        assert delay == pytest.approx(2.0 * PROPAGATION_DELAY_PER_METER)

    def test_optical_l1_adds_sub_15ns(self):
        """Sec. 7: the optical switch impact is lower than 15 ns."""
        extra = self._one_way_delay(OpticalL1Switch) - self._one_way_delay(DirectWire)
        assert 0 < extra <= 15e-9

    def test_cut_through_adds_about_300ns(self):
        """Sec. 7: an L2 cut-through switch adds ~300 ns."""
        extra = self._one_way_delay(CutThroughSwitchPort) - self._one_way_delay(
            DirectWire
        )
        assert extra == pytest.approx(300e-9, rel=0.05)

    def test_background_load_adds_jitter(self):
        quiet = []
        contended = []
        for target, load in ((quiet, 0.0), (contended, 0.8)):
            sim = Simulator()
            a, b, __ = wire_pair(
                sim, link_class=CutThroughSwitchPort, background_load=load, seed=1
            )
            b.set_rx_handler(lambda p, t=target: t.append(p))
            times = []
            b.set_rx_handler(lambda p, t=times: t.append(sim.now))
            for seq in range(200):
                sim.schedule(seq * 1e-5, a.transmit, Packet(seq=seq, frame_size=64))
            sim.run()
            gaps = [t2 - t1 for t1, t2 in zip(times, times[1:])]
            spread = max(gaps) - min(gaps)
            target.append(spread)
        assert contended[-1] > quiet[-1] * 10

    def test_invalid_background_load_rejected(self):
        sim = Simulator()
        a = HardwareNic(sim, "a")
        b = HardwareNic(sim, "b")
        with pytest.raises(TopologyError):
            CutThroughSwitchPort(sim, a, b, background_load=1.5)

    def test_self_loop_rejected(self):
        sim = Simulator()
        nic = HardwareNic(sim, "a")
        with pytest.raises(TopologyError, match="itself"):
            DirectWire(sim, nic, nic)

    def test_peer_lookup(self):
        sim = Simulator()
        a, b, link = wire_pair(sim)
        assert link.peer(a) is b
        assert link.peer(b) is a
        stranger = HardwareNic(sim, "c")
        with pytest.raises(TopologyError):
            link.peer(stranger)
