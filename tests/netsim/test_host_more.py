"""Additional host-shell coverage: addressing, inventory, modules."""

from __future__ import annotations

import pytest

from repro.netsim.host import SimHost


@pytest.fixture
def host():
    h = SimHost("tartu")
    h.boot("debian-buster", "v1")
    return h


class TestAddressing:
    def test_ip_addr_show_lists_assignments(self, host):
        host.run_command("ip addr add 10.0.0.1/24 dev eno1")
        host.run_command("ip addr add 10.0.1.1/24 dev eno2")
        output = host.run_command("ip addr show").stdout
        assert "10.0.0.1/24" in output and "dev eno1" in output
        assert "10.0.1.1/24" in output

    def test_ip_addr_usage_errors(self, host):
        assert not host.run_command("ip addr add 10.0.0.1/24").ok
        assert not host.run_command("ip addr add 10.0.0.1/24 dev eth7").ok

    def test_ip_unknown_object(self, host):
        result = host.run_command("ip route add default")
        assert not result.ok

    def test_addresses_cleared_on_reboot(self, host):
        host.run_command("ip addr add 10.0.0.1/24 dev eno1")
        host.boot("debian-buster", "v1")
        assert host.run_command("ip addr show").stdout == ""


class TestInventoryCommands:
    def test_free_reports_memory(self, host):
        output = host.run_command("free").stdout
        assert str(64 * 1024 * 1024) in output

    def test_modprobe_records_module(self, host):
        assert host.run_command("modprobe vfio-pci").ok
        assert "vfio-pci" in host.run_command("cat /proc/modules").stdout

    def test_modprobe_requires_argument(self, host):
        assert not host.run_command("modprobe").ok

    def test_ethtool_without_nic_backing(self, host):
        output = host.run_command("ethtool eno1").stdout
        assert "Unknown!" in output

    def test_mac_addresses_are_stable_and_distinct(self):
        host_a = SimHost("tartu")
        host_b = SimHost("tartu")
        assert (
            host_a.interfaces["eno1"].mac == host_b.interfaces["eno1"].mac
        )
        assert (
            host_a.interfaces["eno1"].mac != host_a.interfaces["eno2"].mac
        )


class TestWriteGuards:
    def test_write_and_read_require_reachability(self, host):
        host.wedge()
        with pytest.raises(Exception):
            host.write_file("/x", "y")
        with pytest.raises(Exception):
            host.read_file("/x")

    def test_read_missing_file(self, host):
        with pytest.raises(Exception, match="no such file"):
            host.read_file("/missing")
