"""Generalized DAG fast path: property-based equivalence + event gates.

The compiler in :mod:`repro.netsim.fastpath` claims to replay *any*
feed-forward DAG of deterministic FIFO stages bit-identically.  These
tests put that claim under randomized fire: hypothesis assembles
topologies from router chains, multi-core RSS routers, learning
bridges and match-action ASIC stages, sweeps rates, frame sizes,
pacing patterns, flow counts and seeds, and demands exact equality of
every observable against the ``POS_NETSIM_BATCH=0`` event path — plus
the ISSUE's ≥100x event-reduction floor on the sweep topologies.
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen.moongen import MoonGen
from repro.netsim import fastpath
from repro.netsim.asicswitch import AsicSwitch
from repro.netsim.bridge import LinuxBridge
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.multicore import MultiCoreRouter
from repro.netsim.nic import HardwareNic
from repro.netsim.router import LinuxRouter

KINDS = ("router", "multicore", "bridge", "asic")


def build_dag(sim, kinds, seed=3, cores=4):
    """Wire tx -> [one device per kind] -> rx as a feed-forward chain."""
    tx = HardwareNic(sim, "lg.tx")
    rx = HardwareNic(sim, "lg.rx")
    devices = []
    upstream = tx
    for position, kind in enumerate(kinds):
        if kind == "asic":
            switch = AsicSwitch(sim, f"sw{position}", ports=2)
            switch.add_rule("lg.rx", 1)
            DirectWire(sim, upstream, switch.ports[0])
            upstream = switch.ports[1]
            devices.append(switch)
            continue
        p0 = HardwareNic(sim, f"d{position}.p0")
        p1 = HardwareNic(sim, f"d{position}.p1")
        if kind == "router":
            device = LinuxRouter(sim, f"d{position}")
        elif kind == "multicore":
            device = MultiCoreRouter(sim, f"d{position}", cores=cores)
        else:
            device = LinuxBridge(sim, f"d{position}")
        device.add_port(p0)
        device.add_port(p1)
        DirectWire(sim, upstream, p0)
        upstream = p1
        devices.append(device)
    DirectWire(sim, upstream, rx)
    return MoonGen(sim, tx, rx, seed=seed), devices


def observe(gen, devices, job, sim):
    """Every externally visible observable of one finished run."""
    state = {
        "job": (job.tx_packets, job.rx_packets, job.tx_bytes, job.rx_bytes),
        "intervals": [
            (i.start, i.tx_packets, i.rx_packets, i.tx_bytes, i.rx_bytes)
            for i in job.intervals
        ],
        "latency": list(job.latency_samples_s),
        "tx_nic": gen.tx_nic.stats.snapshot(),
        "rx_nic": gen.rx_nic.stats.snapshot(),
        "events": sim.events_processed,
    }
    for position, device in enumerate(devices):
        if isinstance(device, AsicSwitch):
            state[f"dev{position}"] = (device.matched, device.missed)
        else:
            state[f"dev{position}"] = device.stats.snapshot()
        if isinstance(device, MultiCoreRouter):
            state[f"dev{position}.cores"] = list(device.per_core_forwarded)
        if isinstance(device, LinuxBridge):
            state[f"dev{position}.fdb"] = dict(device.fdb)
        state[f"dev{position}.ports"] = [
            port.stats.snapshot() for port in device.ports
        ]
    return state


def run_topology(batched, kinds, rate_pps, frame_size, pattern="cbr",
                 seed=3, flows=1, cores=4, duration_s=0.01,
                 interval_s=0.005, runs=1):
    previous = os.environ.get("POS_NETSIM_BATCH")
    os.environ["POS_NETSIM_BATCH"] = "1" if batched else "0"
    fastpath.enabled.refresh()
    try:
        sim = Simulator()
        gen, devices = build_dag(sim, kinds, seed=seed, cores=cores)
        job = None
        for number in range(runs):
            gen.reseed(seed)
            job = gen.start(
                rate_pps=rate_pps, frame_size=frame_size,
                duration_s=duration_s, interval_s=interval_s,
                pattern=pattern, flows=flows,
            )
            sim.run(until=sim.now + duration_s + 0.05)
            assert job.finished
        return observe(gen, devices, job, sim), gen
    finally:
        if previous is None:
            os.environ.pop("POS_NETSIM_BATCH", None)
        else:
            os.environ["POS_NETSIM_BATCH"] = previous
        fastpath.enabled.refresh()


def assert_equivalent(**kwargs):
    legacy, __ = run_topology(False, **kwargs)
    batched, gen = run_topology(True, **kwargs)
    events_l = legacy.pop("events")
    events_b = batched.pop("events")
    for key in legacy:
        assert batched[key] == legacy[key], f"{key} diverged"
    return legacy, events_l, events_b, gen


class TestRandomizedTopologies:
    @given(
        kinds=st.lists(st.sampled_from(KINDS), min_size=1, max_size=3),
        rate_pps=st.sampled_from([150_000, 400_000, 800_000]),
        frame_size=st.sampled_from([64, 512, 1500]),
        pattern=st.sampled_from(["cbr", "poisson"]),
        seed=st.integers(min_value=0, max_value=2**16),
        flows=st.sampled_from([1, 3, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_to_event_path(
        self, kinds, rate_pps, frame_size, pattern, seed, flows,
    ):
        legacy, events_l, events_b, __ = assert_equivalent(
            kinds=kinds, rate_pps=rate_pps, frame_size=frame_size,
            pattern=pattern, seed=seed, flows=flows,
        )
        assert legacy["job"][0] > 0  # traffic actually flowed
        assert events_b < events_l

    @given(
        kinds=st.lists(st.sampled_from(KINDS), min_size=1, max_size=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_sweep_reuse_is_bit_identical(self, kinds, seed):
        # Three consecutive runs on one world (the vectorized sweep
        # path: spec + arrays reused) must equal three fresh-state
        # event-path runs, frame for frame.
        legacy, __ = run_topology(
            False, kinds=kinds, rate_pps=400_000, frame_size=64,
            seed=seed, runs=3,
        )
        batched, gen = run_topology(
            True, kinds=kinds, rate_pps=400_000, frame_size=64,
            seed=seed, runs=3,
        )
        for key in legacy:
            if key == "events":
                continue
            assert batched[key] == legacy[key], f"{key} diverged"
        spec = getattr(gen, "_dag_spec", None)
        assert spec is not None
        assert spec.reuse_count >= 2  # runs 2 and 3 re-engaged the spec


class TestOverloadEquivalence:
    def test_router_chain_with_drops(self):
        legacy, *_ = assert_equivalent(
            kinds=["router", "router"], rate_pps=4_000_000, frame_size=64,
        )
        assert legacy["dev0"]["backlog_dropped"] > 0

    def test_multicore_overload_spreads_flows(self):
        legacy, *_ = assert_equivalent(
            kinds=["multicore"], rate_pps=4_000_000, frame_size=64,
            flows=4, cores=4,
        )

    def test_bridge_learns_fdb(self):
        legacy, *_ = assert_equivalent(
            kinds=["bridge"], rate_pps=300_000, frame_size=64,
        )
        assert legacy["dev0.fdb"] == {"lg.tx": "d0.p0"}

    def test_asic_matches_every_frame(self):
        legacy, *_ = assert_equivalent(
            kinds=["asic"], rate_pps=300_000, frame_size=64,
        )
        assert legacy["dev0"][0] > 0 and legacy["dev0"][1] == 0

    def test_mixed_four_stage_chain(self):
        assert_equivalent(
            kinds=["asic", "multicore", "bridge", "router"],
            rate_pps=600_000, frame_size=64, flows=4,
        )


class TestEventReductionGates:
    """The ISSUE's acceptance floor: ≥100x fewer engine events."""

    def _gate(self, kinds, **kwargs):
        legacy, events_l, events_b, __ = assert_equivalent(
            kinds=kinds, rate_pps=2_000_000, frame_size=64,
            duration_s=0.02, **kwargs,
        )
        assert legacy["job"][0] > 10_000
        assert events_b * 100 <= events_l, (
            f"only {events_l / max(events_b, 1):.0f}x reduction"
        )

    def test_router_chain_sweep_cuts_events_100x(self):
        self._gate(["router", "router", "router"])

    def test_multicore_sweep_cuts_events_100x(self):
        self._gate(["multicore"], flows=8, cores=8)


class TestCompileShapes:
    def test_chain_of_three_routers_compiles(self):
        sim = Simulator()
        gen, devices = build_dag(sim, ["router", "router", "router"])
        spec = fastpath.compile_dag(gen)
        assert spec is not None
        assert [stage.kind for stage in spec.stages] == [
            "fifo", "serialize", "fifo", "serialize", "fifo", "serialize",
        ]
        assert spec.devices == devices

    def test_mixed_stage_kinds(self):
        sim = Simulator()
        gen, __ = build_dag(sim, ["asic", "multicore", "bridge"])
        spec = fastpath.compile_dag(gen)
        assert spec is not None
        assert [stage.kind for stage in spec.stages] == [
            "asic", "serialize", "rss", "serialize", "fifo", "serialize",
        ]
        bridge_stage = spec.stages[-2]
        assert bridge_stage.learns_src

    def test_asic_without_rule_rejected(self):
        sim = Simulator()
        gen, devices = build_dag(sim, ["asic"])
        devices[0].remove_rule("lg.rx")
        assert fastpath.compile_dag(gen) is None

    def test_asic_rule_to_ingress_rejected(self):
        sim = Simulator()
        gen, devices = build_dag(sim, ["asic"])
        devices[0].add_rule("lg.rx", 0)  # hairpin: egress == ingress
        assert fastpath.compile_dag(gen) is None

    def test_flooding_three_port_bridge_rejected(self):
        sim = Simulator()
        gen, devices = build_dag(sim, ["bridge"])
        devices[0].add_port(HardwareNic(sim, "d0.p2"))
        assert fastpath.compile_dag(gen) is None

    def test_rewired_topology_recompiles(self):
        # acquire_dag must notice a structural change between runs and
        # drop the stale spec instead of replaying the old wiring.
        sim = Simulator()
        gen, devices = build_dag(sim, ["asic"])
        first = fastpath.acquire_dag(gen)
        assert first is not None
        devices[0].add_rule("lg.rx", 1)  # same rule: unchanged
        assert fastpath.acquire_dag(gen) is first
        devices[0].remove_rule("lg.rx")
        assert fastpath.acquire_dag(gen) is None
        assert gen._dag_spec is None
