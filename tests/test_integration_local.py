"""End-to-end orchestration of *real subprocesses* through the controller.

This is the reproduction's reality check: the same controller that
drives the simulated testbed runs a full experiment against actual
``/bin/sh`` processes in sandboxed directories — allocation, boot
(sandbox wipe), tool deployment, setup, the measurement cross product,
and central result collection all execute for real.
"""

from __future__ import annotations

import os

import pytest

from repro.core import yamlite
from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.errors import ScriptError
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.testbed.local import local_image_registry, make_local_node


@pytest.fixture
def local_rig(tmp_path):
    nodes = {
        "worker-a": make_local_node("worker-a", str(tmp_path / "a")),
        "worker-b": make_local_node("worker-b", str(tmp_path / "b")),
    }
    calendar = Calendar(clock=lambda: 1000.0)
    allocator = Allocator(calendar, nodes)
    results = ResultStore(str(tmp_path / "results"), clock=lambda: 1.0)
    controller = Controller(allocator, local_image_registry(), results)
    return controller, nodes


def local_experiment(loop_vars=None, measure_a=None):
    roles = [
        Role(
            name="producer",
            node="worker-a",
            setup=CommandScript("producer-setup", [
                "echo ready > setup-marker.txt",
                "pos barrier setup-done",
            ]),
            measurement=measure_a or CommandScript("producer-measure", [
                "echo payload-$count > data-$count.txt",
                "pos barrier run-done",
            ]),
            image=("local-sandbox", "v1"),
        ),
        Role(
            name="consumer",
            node="worker-b",
            setup=CommandScript("consumer-setup", ["pos barrier setup-done"]),
            measurement=CommandScript("consumer-measure", [
                "echo consumed run $count",
                "pos barrier run-done",
            ]),
            image=("local-sandbox", "v1"),
        ),
    ]
    return Experiment(
        name="local-subprocess-exp",
        roles=roles,
        variables=Variables(loop_vars=loop_vars or {"count": [1, 2, 3]}),
        duration_s=60.0,
    )


class TestLocalOrchestration:
    def test_full_experiment_with_real_shell(self, local_rig, tmp_path):
        controller, nodes = local_rig
        handle = controller.run(local_experiment())
        assert handle.completed_runs == 3
        # Real files were produced by real subprocesses in the sandbox.
        sandbox = tmp_path / "a"
        assert (sandbox / "data-3.txt").read_text().strip() == "payload-3"

    def test_command_output_lands_in_result_tree(self, local_rig):
        controller, __ = local_rig
        handle = controller.run(local_experiment())
        with open(os.path.join(
            handle.result_path, "run-001", "consumer", "commands.log"
        )) as handle_file:
            assert "consumed run 2" in handle_file.read()

    def test_sandbox_wipe_between_experiments(self, local_rig, tmp_path):
        """The local analogue of live-boot: resetting a node wipes its
        sandbox, so no state leaks into the next experiment."""
        controller, __ = local_rig
        controller.run(local_experiment())
        assert (tmp_path / "a" / "data-1.txt").exists()
        handle = controller.run(local_experiment(loop_vars={"count": [9]}))
        assert handle.completed_runs == 1
        assert not (tmp_path / "a" / "data-1.txt").exists()
        assert (tmp_path / "a" / "data-9.txt").exists()

    def test_real_exit_codes_fail_runs(self, local_rig):
        controller, __ = local_rig
        experiment = local_experiment(
            measure_a=CommandScript("boom", ["exit 7"]),
        )
        with pytest.raises(ScriptError, match="exit code 7"):
            controller.run(experiment)

    def test_python_script_reads_produced_files(self, local_rig):
        controller, __ = local_rig

        def harvest(ctx):
            content = ctx.node.get_file(f"data-{ctx.variables['count']}.txt")
            ctx.tools.upload("harvested.txt", content)

        experiment = local_experiment()
        experiment.roles[1].measurement = PythonScript("harvest", harvest)
        # consumer must read the producer's file — different sandboxes, so
        # communicate through the shared store instead.
        def produce_and_share(ctx):
            count = ctx.variables["count"]
            ctx.tools.run(f"echo payload-{count} > data-{count}.txt")
            ctx.tools.set_variable("data", f"payload-{count}")

        def consume_shared(ctx):
            value = ctx.tools.get_variable("data")
            ctx.tools.upload("harvested.txt", value)

        experiment.roles[0].measurement = PythonScript("produce", produce_and_share)
        experiment.roles[1].measurement = PythonScript("consume", consume_shared)
        handle = controller.run(experiment)
        with open(os.path.join(
            handle.result_path, "run-002", "consumer", "harvested.txt"
        )) as handle_file:
            assert handle_file.read() == "payload-3"

    def test_variables_yaml_documenting_local_run(self, local_rig):
        controller, __ = local_rig
        handle = controller.run(local_experiment())
        variables = yamlite.load_file(
            os.path.join(handle.result_path, "variables.yml")
        )
        assert variables["loop"]["count"] == [1, 2, 3]
