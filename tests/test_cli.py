"""Tests for the ``pos`` command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.casestudy import run_case_study
from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--results", "/tmp/r"])
        assert args.platform == "vpos"
        assert args.sizes == [64, 1500]

    def test_rate_list_parsing(self):
        args = build_parser().parse_args(
            ["run", "--results", "/tmp/r", "--rates", "1000,2000"]
        )
        assert args.rates == [1000, 2000]

    def test_bad_rate_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--results", "/tmp/r", "--rates", "a,b"]
            )

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--results", "/tmp/r",
                                       "--platform", "qemu"])


class TestCommands:
    def test_compare_prints_table(self, capsys):
        assert main(["compare"]) == 0
        output = capsys.readouterr().out
        assert "pos" in output and "Grid'5000" in output

    def test_nodes_lists_platform_hosts(self, capsys):
        assert main(["nodes", "--platform", "pos"]) == 0
        output = capsys.readouterr().out
        assert "riga" in output and "tartu" in output
        assert "ipmi" in output

    def test_images_lists_registry(self, capsys):
        assert main(["images"]) == 0
        assert "debian-buster@" in capsys.readouterr().out

    def test_topology_writes_svg(self, tmp_path, capsys):
        target = str(tmp_path / "fig1.svg")
        assert main(["topology", "--platform", "pos", "--output", target]) == 0
        with open(target) as handle:
            svg = handle.read()
        assert svg.startswith("<svg") and "kaunas" in svg

    def test_run_evaluate_publish_round_trip(self, tmp_path, capsys):
        results_root = str(tmp_path / "results")
        code = main([
            "run", "--platform", "pos", "--results", results_root,
            "--rates", "1000000", "--sizes", "64",
            "--duration", "0.02",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "runs completed: 1" in output
        result_path = [
            line.split(": ", 1)[1]
            for line in output.splitlines()
            if line.startswith("results: ")
        ][0]

        assert main(["evaluate", "--results", result_path,
                     "--formats", "svg"]) == 0
        assert "throughput.svg" in capsys.readouterr().out

        assert main(["publish", "--results", result_path,
                     "--repo", "https://example.org/r"]) == 0
        publish_output = capsys.readouterr().out
        assert "archive:" in publish_output
        assert os.path.isfile(os.path.join(result_path, "README.md"))

    def test_evaluate_missing_results_fails_cleanly(self, capsys):
        assert main(["evaluate", "--results", "/no/such/dir"]) == 1
        assert "error" in capsys.readouterr().err

    def test_max_runs_flag(self, tmp_path, capsys):
        code = main([
            "run", "--platform", "pos", "--results", str(tmp_path),
            "--rates", "1000,2000,3000", "--sizes", "64",
            "--duration", "0.01", "--max-runs", "1",
        ])
        assert code == 0
        assert "runs completed: 1" in capsys.readouterr().out


class TestStatusAndWatch:
    @pytest.fixture(scope="class")
    def result_path(self, tmp_path_factory, request):
        root = str(tmp_path_factory.mktemp("status"))
        handle = run_case_study(
            "pos", root, rates=[1_000_000], sizes=(64,),
            duration_s=0.02, interval_s=0.01,
        )
        return handle.result_path

    def test_status_renders_progress_and_health(self, result_path, capsys):
        assert main(["status", result_path]) == 0
        output = capsys.readouterr().out
        assert "phase:      complete (1/1 runs journalled)" in output
        assert "riga" in output and "healthy" in output

    def test_watch_stops_when_complete(self, result_path, capsys):
        assert main(["watch", result_path, "--max-updates", "5"]) == 0
        output = capsys.readouterr().out
        assert output.count("phase:      complete") == 1

    def test_status_missing_dir_one_line_error(self, capsys):
        assert main(["status", "/no/such/dir"]) == 1
        err = capsys.readouterr().err
        assert err == "pos: error: no such experiment directory: /no/such/dir\n"

    def test_status_missing_journal_one_line_error(self, tmp_path, capsys):
        assert main(["status", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("pos: error: no journal.jsonl")
        assert len(err.splitlines()) == 1

    def test_status_zero_run_journal_one_line_error(self, tmp_path, capsys):
        import json

        (tmp_path / "journal.jsonl").write_text(json.dumps(
            {"event": "experiment", "name": "x", "total_runs": 3}
        ) + "\n")
        assert main(["status", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "no measurement runs" in err
        assert len(err.splitlines()) == 1

    def test_report_missing_dir_one_line_error(self, capsys):
        assert main(["report", "--results", "/no/such/dir"]) == 1
        err = capsys.readouterr().err
        assert "no such experiment directory" in err
        assert len(err.splitlines()) == 1

    def test_report_zero_run_journal_one_line_error(self, tmp_path, capsys):
        import json

        (tmp_path / "journal.jsonl").write_text(json.dumps(
            {"event": "experiment", "name": "x", "total_runs": 3}
        ) + "\n")
        assert main(["report", "--results", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "no measurement runs" in err
        assert len(err.splitlines()) == 1


class TestResilienceFlags:
    def test_on_error_choices(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--results", "/tmp/r",
                                  "--on-error", "continue"])
        assert args.on_error == "continue"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--results", "/tmp/r",
                               "--on-error", "shrug"])

    def test_fault_plan_failures_recorded_under_continue(self, tmp_path, capsys):
        plan = tmp_path / "faults.yml"
        plan.write_text(
            "faults:\n"
            "  - kind: script\n"
            "    node: tartu\n"
            "    runs: [1]\n"
        )
        code = main([
            "run", "--platform", "pos", "--results", str(tmp_path / "r"),
            "--rates", "1000,2000,3000", "--sizes", "64",
            "--duration", "0.01", "--script-style", "shell",
            "--fault-plan", str(plan), "--on-error", "continue",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "runs completed: 2, failed: 1" in output

    def test_bad_fault_plan_fails_cleanly(self, tmp_path, capsys):
        plan = tmp_path / "faults.yml"
        plan.write_text("faults:\n  - kind: gremlin\n")
        code = main([
            "run", "--platform", "pos", "--results", str(tmp_path / "r"),
            "--fault-plan", str(plan),
        ])
        assert code == 1
        assert "unknown fault kind" in capsys.readouterr().err

    def test_resume_flag_continues_from_journal(self, tmp_path, capsys):
        results_root = str(tmp_path / "results")
        common = [
            "run", "--platform", "pos", "--results", results_root,
            "--rates", "1000,2000,3000", "--sizes", "64",
            "--duration", "0.01",
        ]
        # First execution covers only part of the cross product, leaving
        # a journal that declares 3 total runs with 2 completed.
        assert main(common + ["--max-runs", "2"]) == 0
        output = capsys.readouterr().out
        result_path = [
            line.split(": ", 1)[1]
            for line in output.splitlines()
            if line.startswith("results: ")
        ][0]
        # Patch the journal header to the full total (the partial
        # execution recorded total_runs=2 by design of --max-runs).
        journal_path = os.path.join(result_path, "journal.jsonl")
        with open(journal_path) as handle:
            lines = handle.read().splitlines()
        lines[0] = lines[0].replace('"total_runs": 2', '"total_runs": 3')
        with open(journal_path, "w") as handle:
            handle.write("\n".join(lines) + "\n")

        assert main(common + ["--resume", result_path]) == 0
        resumed_output = capsys.readouterr().out
        assert "runs completed: 3" in resumed_output
        # The adopted runs were not re-executed into duplicate folders.
        run_dirs = [name for name in os.listdir(result_path)
                    if name.startswith("run-")]
        assert sorted(run_dirs) == ["run-000", "run-001", "run-002"]


class TestReplicationCommand:
    def _run_once(self, root, seed):
        handle = run_case_study(
            "pos", root, rates=[1_000_000], sizes=(64,),
            duration_s=0.02, interval_s=0.01, seed=seed,
        )
        return handle.result_path

    def test_identical_runs_repeat(self, tmp_path, capsys):
        a = self._run_once(str(tmp_path / "a"), seed=1)
        b = self._run_once(str(tmp_path / "b"), seed=1)
        code = main(["check-replication", "--original", a, "--rerun", b])
        assert code == 0
        assert "REPEATS" in capsys.readouterr().out

    def test_structurally_different_runs_fail(self, tmp_path, capsys):
        a = self._run_once(str(tmp_path / "a"), seed=1)
        handle = run_case_study(
            "pos", str(tmp_path / "b"), rates=[2_000_000], sizes=(64,),
            duration_s=0.02, interval_s=0.01,
        )
        code = main(["check-replication", "--original", a,
                     "--rerun", handle.result_path])
        assert code == 1
        assert "DIFFERS" in capsys.readouterr().out


class TestExportAndRunDir:
    def test_export_writes_artifact_folder(self, tmp_path, capsys):
        code = main([
            "export", "--output", str(tmp_path / "artifact"),
            "--platform", "vpos", "--rates", "20000,40000",
            "--sizes", "64", "--duration", "0.1",
        ])
        assert code == 0
        assert (tmp_path / "artifact" / "experiment.yml").is_file()
        assert (tmp_path / "artifact" / "scripts"
                / "loadgen-measurement.sh").is_file()

    def test_run_from_experiment_dir(self, tmp_path, capsys):
        assert main([
            "export", "--output", str(tmp_path / "artifact"),
            "--platform", "pos", "--rates", "1000000",
            "--sizes", "64", "--duration", "0.02",
        ]) == 0
        capsys.readouterr()
        code = main([
            "run", "--experiment-dir", str(tmp_path / "artifact"),
            "--platform", "pos", "--results", str(tmp_path / "results"),
        ])
        assert code == 0
        assert "runs completed: 1" in capsys.readouterr().out

    def test_shell_style_flag(self, tmp_path, capsys):
        code = main([
            "run", "--platform", "pos", "--results", str(tmp_path),
            "--rates", "1000000", "--sizes", "64", "--duration", "0.02",
            "--script-style", "shell",
        ])
        assert code == 0
        assert "runs completed: 1" in capsys.readouterr().out
