"""Tests for the central result tree."""

from __future__ import annotations

import os

import pytest

from repro.core import yamlite
from repro.core.errors import ResultError
from repro.core.results import ResultStore, format_timestamp
from repro.core.scripts import ScriptResult
from repro.netsim.host import CommandResult


class TestTimestamps:
    def test_format_matches_paper_artifact_style(self):
        # The paper's repository uses 2020-10-12_11-20-32_230471.
        stamp = format_timestamp(1602501632.230471)
        assert stamp == "2020-10-12_11-20-32_230471"

    def test_lexicographic_order_follows_time(self):
        assert format_timestamp(1000.0) < format_timestamp(2000.0)


class TestResultStore:
    def test_layout(self, tmp_path):
        store = ResultStore(str(tmp_path), clock=lambda: 1600000000.0)
        exp_dir = store.create_experiment_dir("user", "router-test")
        assert os.path.isdir(exp_dir.path)
        parts = os.path.relpath(exp_dir.path, tmp_path).split(os.sep)
        assert parts[0] == "user"
        assert parts[1] == "router-test"

    def test_collision_disambiguation(self, tmp_path):
        store = ResultStore(str(tmp_path), clock=lambda: 1600000000.0)
        first = store.create_experiment_dir("user", "exp")
        second = store.create_experiment_dir("user", "exp")
        assert first.path != second.path
        assert os.path.isdir(second.path)

    def test_latest_and_listing(self, tmp_path):
        times = iter([1000.0, 2000.0])
        store = ResultStore(str(tmp_path), clock=lambda: next(times))
        store.create_experiment_dir("user", "exp")
        newest = store.create_experiment_dir("user", "exp")
        assert store.latest("user", "exp") == newest.path
        assert len(store.experiments_for("user", "exp")) == 2

    def test_latest_without_results_raises(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(ResultError, match="no results"):
            store.latest("user", "exp")

    def test_unsafe_names_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(ResultError):
            store.create_experiment_dir("../escape", "exp")

    def test_path_separators_sanitized(self, tmp_path):
        store = ResultStore(str(tmp_path), clock=lambda: 1000.0)
        exp_dir = store.create_experiment_dir("user", "exp/with/slashes")
        assert "/with/" not in os.path.relpath(exp_dir.path, tmp_path)


class TestExperimentDir:
    def test_metadata_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path), clock=lambda: 1000.0)
        exp_dir = store.create_experiment_dir("user", "exp")
        exp_dir.write_metadata({"name": "exp", "runs_completed": 3})
        loaded = yamlite.load_file(os.path.join(exp_dir.path, "experiment.yml"))
        assert loaded["runs_completed"] == 3

    def test_run_dir_metadata(self, tmp_path):
        store = ResultStore(str(tmp_path), clock=lambda: 1000.0)
        exp_dir = store.create_experiment_dir("user", "exp")
        run_dir = exp_dir.create_run_dir(5)
        run_dir.write_metadata({"pkt_sz": 64, "pkt_rate": 10000})
        loaded = yamlite.load_file(os.path.join(run_dir.path, "metadata.yml"))
        assert loaded == {"run": 5, "loop": {"pkt_sz": 64, "pkt_rate": 10000}}
        assert run_dir.path.endswith("run-005")

    def test_record_script_writes_all_captures(self, tmp_path):
        store = ResultStore(str(tmp_path), clock=lambda: 1000.0)
        run_dir = store.create_experiment_dir("user", "exp").create_run_dir(0)
        result = ScriptResult(
            script="measure",
            role="loadgen",
            phase="measurement",
            ok=True,
            commands=[CommandResult("echo hi", 0, "hi")],
            uploads=[("moongen.log", "TX: data")],
            log_lines=["started"],
        )
        run_dir.record_script(result)
        role_dir = os.path.join(run_dir.path, "loadgen")
        assert sorted(os.listdir(role_dir)) == [
            "commands.log", "moongen.log", "pos.log", "status.yml",
        ]
        with open(os.path.join(role_dir, "commands.log")) as handle:
            log = handle.read()
        assert "$ echo hi" in log and "(exit 0)" in log

    def test_record_failed_script_status(self, tmp_path):
        store = ResultStore(str(tmp_path), clock=lambda: 1000.0)
        run_dir = store.create_experiment_dir("user", "exp").create_run_dir(0)
        result = ScriptResult(
            script="measure", role="dut", phase="measurement",
            ok=False, error="boom",
        )
        run_dir.record_script(result)
        status = yamlite.load_file(
            os.path.join(run_dir.path, "dut", "status.yml")
        )
        assert status["ok"] is False
        assert status["error"] == "boom"

    def test_upload_names_are_sanitized(self, tmp_path):
        store = ResultStore(str(tmp_path), clock=lambda: 1000.0)
        run_dir = store.create_experiment_dir("user", "exp").create_run_dir(0)
        result = ScriptResult(
            script="s", role="r", phase="measurement", ok=True,
            uploads=[("../../evil.txt", "x")],
        )
        run_dir.record_script(result)
        files = os.listdir(os.path.join(run_dir.path, "r"))
        assert all(".." not in name for name in files)
        # Nothing escaped the run directory:
        assert not os.path.exists(os.path.join(str(tmp_path), "evil.txt"))
