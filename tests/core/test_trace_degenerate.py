"""Degenerate inputs to ``pos trace`` must diagnose, not traceback.

Each test pins one artifact shape a user can actually hand the CLI —
a telemetry-disabled folder, a crashed-before-first-delivery trace, a
zero-delivered-runs trace, a campaign ledger written by an older
planner without window bounds, a campaign folder whose admission
ledger is gone — and asserts the result is a one-line ``pos: error:``
diagnosis or a clean report, never an unhandled exception.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli.main import main as cli_main
from repro.telemetry.criticalpath import TraceError, analyze


def fleet_trace(tmp_path, records):
    path = tmp_path / "fleet-trace.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return str(tmp_path)


ROOT_ONLY = [{
    "trace": "t0", "span": "root", "name": "fleet.experiment",
    "attrs": {"experiment": "x", "runs": 4},
}]


class TestExperimentShapes:
    def test_telemetry_disabled_folder_is_one_error(self, tmp_path, capsys):
        assert cli_main(["trace", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("pos: error: no fleet-trace.jsonl")
        assert "Traceback" not in err

    def test_empty_trace_is_one_error(self, tmp_path, capsys):
        folder = fleet_trace(tmp_path, [])
        assert cli_main(["trace", folder]) == 1
        err = capsys.readouterr().err
        assert err.startswith("pos: error:")
        assert "no complete trace record" in err

    def test_zero_delivered_runs_render_cleanly(self, tmp_path, capsys):
        # A root span exists but no run was ever delivered (killed
        # before the first result): a zero-valued profile, not a crash.
        folder = fleet_trace(tmp_path, ROOT_ONLY)
        assert cli_main(["trace", folder]) == 0
        out = capsys.readouterr().out
        assert "0/4 runs traced" in out
        analysis = analyze(folder)
        assert analysis["total"] == 0.0
        assert all(value == 0.0 for value in analysis["phases"].values())

    def test_sim_clock_can_be_forced(self, tmp_path):
        folder = fleet_trace(tmp_path, ROOT_ONLY)
        assert analyze(folder, clock="sim")["clock"] == "sim"
        with pytest.raises(TraceError, match="unknown trace clock"):
            analyze(folder, clock="wall")


class TestCampaignShapes:
    def test_windowless_admission_rows_render_cleanly(self, tmp_path, capsys):
        # Older planners appended admit rows without window bounds;
        # rendering them crashed with a TypeError before this was pinned.
        with open(tmp_path / "admission.jsonl", "w", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "event": "admit", "experiment": "e1", "user": "u",
            }) + "\n")
        assert cli_main(["trace", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "(no window)" in out
        assert "e1" in out

    def test_campaign_without_admission_is_one_error(self, tmp_path, capsys):
        # Campaign-shaped (has experiments/) but the ledger is gone:
        # descending into the first experiment's trace would mis-scope
        # the profile, so the CLI must refuse with a diagnosis.
        os.makedirs(tmp_path / "experiments" / "u" / "e1")
        assert cli_main(["trace", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("pos: error:")
        assert "looks like a campaign folder" in err
        assert "admission.jsonl" in err
