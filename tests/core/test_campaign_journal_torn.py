"""Torn-record fuzz for the campaign journal.

A campaign runner can die mid-``write()``: the fsynced prefix of
``journal.jsonl`` is intact, the final record is an arbitrary byte
prefix of itself.  These tests truncate a finished campaign's journal
at *every byte offset* spanning the last experiment record and the
completion record, then ``--resume``.  Required behaviour at every cut
point:

* resume succeeds and reports the campaign ok,
* no run directory is ever duplicated (no second timestamp folder, no
  stray ``run-*`` sibling), and
* the final campaign directory — journal included — is byte-identical
  to the uninterrupted baseline.

The same torn-tail machinery backs the per-experiment run journal, so
the truncate-then-append recovery is exercised there too.
"""

from __future__ import annotations

import json
import os
import shutil

from repro.campaign import campaign_status, run_campaign
from repro.campaign.admission import ADMISSION_NAME
from repro.core.journal import JOURNAL_NAME, RunJournal

CAMPAIGN = """\
name: torn
pool: [alpha, beta]
experiments:
  - name: first
    user: alice
    nodes: 1
    duration: 30
    rates: [100]
  - name: second
    user: bob
    nodes: 2
    duration: 20
    rates: [200]
"""


def tree_snapshot(root):
    snapshot = {}
    for dirpath, __, filenames in os.walk(root):
        for filename in filenames:
            path = os.path.join(dirpath, filename)
            with open(path, "rb") as handle:
                snapshot[os.path.relpath(path, root)] = handle.read()
    return snapshot


def run_directories(campaign_dir):
    """Every per-run artifact directory, plus the timestamp level."""
    found = []
    experiments = os.path.join(campaign_dir, "experiments")
    for dirpath, dirnames, __ in os.walk(experiments):
        for name in dirnames:
            if name.startswith("run-"):
                found.append(os.path.relpath(os.path.join(dirpath, name),
                                             campaign_dir))
    return sorted(found)


def test_campaign_resumes_cleanly_from_every_torn_byte(tmp_path):
    spec_path = str(tmp_path / "c.yml")
    with open(spec_path, "w") as handle:
        handle.write(CAMPAIGN)
    baseline = str(tmp_path / "baseline")
    assert run_campaign(spec_path, baseline, jobs=1).ok
    expected_tree = tree_snapshot(baseline)
    expected_runs = run_directories(baseline)

    journal_path = os.path.join(baseline, JOURNAL_NAME)
    with open(journal_path, "rb") as handle:
        journal_bytes = handle.read()
    lines = journal_bytes.splitlines(keepends=True)
    assert len(lines) >= 3  # header, experiments, complete
    # Cut everywhere inside the last two records (the final experiment
    # entry and the completion marker), including clean line boundaries.
    tail_start = len(journal_bytes) - len(lines[-1]) - len(lines[-2])
    scratch = str(tmp_path / "scratch")

    for cut in range(tail_start, len(journal_bytes)):
        shutil.rmtree(scratch, ignore_errors=True)
        shutil.copytree(baseline, scratch)
        with open(os.path.join(scratch, JOURNAL_NAME), "r+b") as handle:
            handle.truncate(cut)
        result = run_campaign(spec_path, scratch, jobs=1, resume=True)
        assert result.ok, f"resume failed at cut offset {cut}"
        assert run_directories(scratch) == expected_runs, (
            f"run directories duplicated or lost at cut offset {cut}"
        )
        resumed_tree = tree_snapshot(scratch)
        different = [
            path for path in sorted(set(expected_tree) | set(resumed_tree))
            if expected_tree.get(path) != resumed_tree.get(path)
        ]
        assert different == [], (
            f"tree diverged at cut offset {cut}: {different}"
        )


def test_admission_log_heals_from_every_torn_byte(tmp_path):
    """``admission.jsonl`` is written atomically, so a torn tail can only
    come from outside interference — but the plan is a pure function of
    the spec, so resume recomputes it and the atomic rewrite restores
    the exact baseline bytes at every cut point.  ``campaign status``
    must tolerate the torn file in the meantime."""
    spec_path = str(tmp_path / "c.yml")
    with open(spec_path, "w") as handle:
        handle.write(CAMPAIGN)
    baseline = str(tmp_path / "baseline")
    assert run_campaign(spec_path, baseline, jobs=1).ok
    expected_tree = tree_snapshot(baseline)
    expected_runs = run_directories(baseline)
    admission_path = os.path.join(baseline, ADMISSION_NAME)
    with open(admission_path, "rb") as handle:
        admission_bytes = handle.read()
    assert not os.path.exists(admission_path + ".tmp")  # atomic rename
    lines = admission_bytes.splitlines(keepends=True)
    assert len(lines) >= 2
    tail_start = len(admission_bytes) - len(lines[-1])
    scratch = str(tmp_path / "scratch")

    for cut in range(tail_start, len(admission_bytes)):
        shutil.rmtree(scratch, ignore_errors=True)
        shutil.copytree(baseline, scratch)
        with open(os.path.join(scratch, ADMISSION_NAME), "r+b") as handle:
            handle.truncate(cut)
        # Observers never crash on the torn log ...
        status = campaign_status(scratch)
        assert "campaign:" in status, cut
        # ... and resume heals it: recompute, atomic rewrite, no re-runs.
        result = run_campaign(spec_path, scratch, jobs=1, resume=True)
        assert result.ok, f"resume failed at cut offset {cut}"
        with open(os.path.join(scratch, ADMISSION_NAME), "rb") as handle:
            assert handle.read() == admission_bytes, cut
        assert run_directories(scratch) == expected_runs, cut
        assert tree_snapshot(scratch) == expected_tree, cut


def test_run_journal_append_after_torn_tail_leaves_clean_records(tmp_path):
    """Reopening a torn run journal truncates the fragment; the next
    append starts on a clean line, never concatenating records."""
    journal = RunJournal.create(str(tmp_path), "exp", 3)
    journal.record_run(0, {"r": 1}, ok=True, run_dir="run-000")
    journal.record_run(1, {"r": 2}, ok=True, run_dir="run-001")
    journal.close()
    path = os.path.join(str(tmp_path), JOURNAL_NAME)
    with open(path, "rb") as handle:
        clean = handle.read()
    # Tear at every byte of the last record and append over it.
    lines = clean.splitlines(keepends=True)
    tail_start = len(clean) - len(lines[-1])
    for cut in range(tail_start, len(clean)):
        with open(path, "wb") as handle:
            handle.write(clean[:cut])
        reopened = RunJournal.open(str(tmp_path))
        # The torn record is always dropped (its newline is gone), the
        # fsynced prefix always survives.
        assert sorted(reopened.completed()) == [0], cut
        reopened.record_run(2, {"r": 3}, ok=True, run_dir="run-002")
        reopened.close()
        # Every line in the file now parses — no corrupted boundary.
        with open(path, "rb") as handle:
            raw_lines = handle.read().splitlines()
        parsed = [json.loads(line) for line in raw_lines if line.strip()]
        assert parsed[-1]["index"] == 2
