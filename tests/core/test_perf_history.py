"""Acceptance tests for the perf-history regression plane.

The contract under test:

* ``record_bench`` flattens a BENCH snapshot into seq-numbered,
  timestamp-free records with direction tags inferred from the metric
  name;
* the detector flags a synthetic 2x slowdown injected into a series
  while passing on the real committed trajectory (and on flat ones);
* improvements are never "regressions", the threshold is direction-
  aware, and the change-point scan localizes where a level shift
  entered;
* the ledger validates against its checked-in schema.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.telemetry.perfhistory import (
    DEFAULT_THRESHOLD,
    HISTORY_NAME,
    PerfHistoryError,
    flatten_bench,
    load_history,
    record_bench,
    render_trend,
    trend,
)
from repro.telemetry.schema import SchemaError, validate_history

REPO_HISTORY = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "history",
)


def write_bench(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestRecording:
    def test_flatten_keeps_numeric_leaves_only(self):
        flat = flatten_bench({
            "wallclock": {"jobs1_s": 21.5, "speedup": 1.62, "note": "text"},
            "events": {"run": {"duration_s": 0.05}},
            "ok": True,
        })
        assert flat == {
            "wallclock.jobs1_s": 21.5,
            "wallclock.speedup": 1.62,
            "events.run.duration_s": 0.05,
        }

    def test_records_are_seq_numbered_and_directed(self, tmp_path):
        bench = write_bench(tmp_path, "BENCH_x.json", {
            "section": {"warm_s": 0.5, "speedup": 2.0, "overhead": 1.01,
                        "reps": 3, "count": 7},
        })
        history = str(tmp_path / "history")
        records = record_bench(history, bench)
        by_metric = {r["metric"]: r for r in records}
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]
        assert by_metric["section.warm_s"]["direction"] == "lower"
        assert by_metric["section.overhead"]["direction"] == "lower"
        assert by_metric["section.speedup"]["direction"] == "higher"
        # reps is configuration, count has no knowable direction.
        assert by_metric["section.reps"]["direction"] is None
        assert by_metric["section.count"]["direction"] is None
        assert all(r["bench"] == "x" for r in records)
        assert all("time" not in r and "date" not in r for r in records)

    def test_appends_continue_the_seq(self, tmp_path):
        bench = write_bench(tmp_path, "BENCH_x.json", {"a": {"warm_s": 1.0}})
        history = str(tmp_path / "history")
        record_bench(history, bench)
        second = record_bench(history, bench)
        assert second[0]["seq"] == 2
        assert [r["seq"] for r in load_history(history)] == [1, 2]

    def test_missing_ledger_is_one_error(self, tmp_path):
        with pytest.raises(PerfHistoryError, match="record a benchmark"):
            load_history(str(tmp_path))


class TestDetection:
    def series(self, tmp_path, metric, values):
        history = str(tmp_path / "history")
        bench = tmp_path / "BENCH_x.json"
        for value in values:
            bench.write_text(
                json.dumps({"s": {metric: value}}), encoding="utf-8"
            )
            record_bench(history, str(bench))
        return trend(load_history(history))

    def test_two_x_slowdown_is_flagged(self, tmp_path):
        report = self.series(tmp_path, "sweep_s", [1.0, 1.05, 0.98, 2.0])
        assert len(report["regressions"]) == 1
        row = report["regressions"][0]
        assert row["series"] == "x.s.sweep_s"
        assert row["rel"] == pytest.approx(1.0, abs=0.1)
        assert "REGRESSION" in render_trend(report)

    def test_flat_trajectory_passes(self, tmp_path):
        report = self.series(tmp_path, "sweep_s", [1.0, 1.02, 0.99, 1.01])
        assert report["regressions"] == []
        assert "no regressions" in render_trend(report)

    def test_speedup_collapse_is_flagged(self, tmp_path):
        # For higher-is-better metrics the threshold points the other way.
        report = self.series(tmp_path, "speedup", [2.0, 2.1, 1.9, 0.5])
        assert len(report["regressions"]) == 1

    def test_improvement_is_not_a_regression(self, tmp_path):
        report = self.series(tmp_path, "sweep_s", [2.0, 2.1, 1.9, 0.5])
        assert report["regressions"] == []

    def test_undirected_metrics_are_never_flagged(self, tmp_path):
        report = self.series(tmp_path, "events", [100.0, 100.0, 5000.0])
        assert report["regressions"] == []

    def test_change_point_is_localized(self, tmp_path):
        report = self.series(
            tmp_path, "sweep_s", [1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0],
        )
        row = [r for r in report["series"] if r["metric"] == "s.sweep_s"][0]
        assert row["change_point"] == 3

    def test_report_is_deterministic(self, tmp_path):
        first = self.series(tmp_path, "sweep_s", [1.0, 1.1, 2.5])
        second = trend(load_history(str(tmp_path / "history")))
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)


class TestCommittedTrajectory:
    """The repo's own history must stay green — this is the CI gate."""

    def test_committed_history_validates(self):
        assert validate_history(REPO_HISTORY)

    def test_committed_history_has_no_regressions(self):
        report = trend(load_history(REPO_HISTORY))
        assert report["regressions"] == []

    def test_injected_slowdown_in_committed_history_flags(self, tmp_path):
        records = load_history(REPO_HISTORY)
        jobs1 = [
            r for r in records
            if r["bench"] == "parallel" and r["metric"] == "wallclock.jobs1_s"
        ]
        assert jobs1, "the parallel bench trajectory must be seeded"
        doctored = dict(jobs1[-1])
        doctored["seq"] = records[-1]["seq"] + 1
        doctored["value"] = jobs1[-1]["value"] * 2.0
        report = trend(records + [doctored])
        flagged = [r["series"] for r in report["regressions"]]
        assert "parallel.wallclock.jobs1_s" in flagged


class TestSchema:
    def test_malformed_record_is_rejected(self, tmp_path):
        history = tmp_path / "history"
        history.mkdir()
        (history / HISTORY_NAME).write_text(
            json.dumps({"seq": 1, "bench": "x", "metric": "m",
                        "value": "fast", "direction": None,
                        "source": "BENCH_x.json"}) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(SchemaError, match="value"):
            validate_history(str(history))

    def test_threshold_default_is_sane(self):
        # Pinned: half-again is the documented CI gate.
        assert DEFAULT_THRESHOLD == 0.5
