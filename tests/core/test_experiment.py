"""Tests for the experiment definition and its validation."""

from __future__ import annotations

import pytest

from repro.core.errors import ExperimentError
from repro.core.experiment import Experiment, Role
from repro.core.scripts import CommandScript
from repro.core.variables import Variables


def make_role(name="dut", node="tartu"):
    return Role(
        name=name,
        node=node,
        setup=CommandScript(f"{name}-setup", ["true"]),
        measurement=CommandScript(f"{name}-measure", ["true"]),
    )


class TestValidation:
    def test_valid_experiment_passes(self):
        experiment = Experiment(
            name="exp",
            roles=[make_role("dut", "tartu"), make_role("loadgen", "riga")],
        )
        experiment.validate()

    def test_missing_name(self):
        with pytest.raises(ExperimentError, match="name"):
            Experiment(name="", roles=[make_role()]).validate()

    def test_no_roles(self):
        with pytest.raises(ExperimentError, match="no roles"):
            Experiment(name="exp", roles=[]).validate()

    def test_duplicate_role_names(self):
        with pytest.raises(ExperimentError, match="duplicate role"):
            Experiment(
                name="exp",
                roles=[make_role("dut", "tartu"), make_role("dut", "riga")],
            ).validate()

    def test_node_shared_between_roles_prohibited(self):
        with pytest.raises(ExperimentError, match="prohibited"):
            Experiment(
                name="exp",
                roles=[make_role("dut", "tartu"), make_role("loadgen", "tartu")],
            ).validate()

    def test_non_positive_duration(self):
        with pytest.raises(ExperimentError, match="duration"):
            Experiment(name="exp", roles=[make_role()], duration_s=0).validate()


class TestAccessors:
    def test_role_lookup(self):
        role = make_role("dut")
        experiment = Experiment(name="exp", roles=[role])
        assert experiment.role("dut") is role

    def test_role_lookup_missing(self):
        experiment = Experiment(name="exp", roles=[make_role("dut")])
        with pytest.raises(ExperimentError, match="no role"):
            experiment.role("loadgen")

    def test_node_and_role_names(self):
        experiment = Experiment(
            name="exp",
            roles=[make_role("dut", "tartu"), make_role("loadgen", "riga")],
        )
        assert experiment.node_names == ["tartu", "riga"]
        assert experiment.role_names == ["dut", "loadgen"]

    def test_describe_contains_scripts_and_images(self):
        experiment = Experiment(
            name="exp",
            roles=[make_role("dut")],
            variables=Variables(loop_vars={"r": [1, 2]}),
            description="demo",
        )
        described = experiment.describe()
        assert described["name"] == "exp"
        assert described["roles"][0]["setup"]["commands"] == ["true"]
        assert described["roles"][0]["image"] == ["debian-buster", "latest"]
