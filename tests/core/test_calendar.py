"""Tests for the booking calendar."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import Booking, Calendar
from repro.core.errors import CalendarError


def make_calendar(start: float = 1000.0):
    times = {"now": start}
    return Calendar(clock=lambda: times["now"]), times


class TestBooking:
    def test_half_open_overlap(self):
        booking = Booking(1, "n", "u", 10.0, 20.0)
        assert booking.overlaps(15.0, 25.0)
        assert booking.overlaps(5.0, 15.0)
        assert booking.overlaps(12.0, 13.0)
        assert not booking.overlaps(20.0, 30.0)  # back-to-back is fine
        assert not booking.overlaps(0.0, 10.0)


class TestCalendar:
    def test_book_and_query(self):
        calendar, __ = make_calendar()
        booking = calendar.book("tartu", "alice", duration=100.0)
        assert booking.node == "tartu"
        assert calendar.bookings_for_node("tartu") == [booking]
        assert calendar.bookings_for_user("alice") == [booking]

    def test_conflict_same_user_rejected(self):
        """Using a node in more than one experiment at once is
        prohibited, even for one user (Sec. 4.4)."""
        calendar, __ = make_calendar()
        calendar.book("tartu", "alice", duration=100.0)
        with pytest.raises(CalendarError, match="booked"):
            calendar.book("tartu", "alice", duration=50.0)

    def test_conflict_other_user_rejected(self):
        calendar, __ = make_calendar()
        calendar.book("tartu", "alice", duration=100.0)
        with pytest.raises(CalendarError, match="alice"):
            calendar.book("tartu", "bob", duration=10.0)

    def test_different_nodes_no_conflict(self):
        calendar, __ = make_calendar()
        calendar.book("tartu", "alice", duration=100.0)
        calendar.book("riga", "bob", duration=100.0)
        assert len(calendar.active_bookings()) == 2

    def test_back_to_back_bookings_allowed(self):
        calendar, __ = make_calendar()
        first = calendar.book("tartu", "alice", duration=100.0)
        second = calendar.book("tartu", "bob", duration=50.0, start=first.end)
        assert second.start == first.end

    def test_future_booking_then_conflicting_now(self):
        calendar, __ = make_calendar()
        calendar.book("tartu", "alice", duration=100.0, start=1050.0)
        with pytest.raises(CalendarError):
            calendar.book("tartu", "bob", duration=100.0)  # 1000-1100 overlaps

    def test_cancel_frees_slot(self):
        calendar, __ = make_calendar()
        booking = calendar.book("tartu", "alice", duration=100.0)
        calendar.cancel(booking)
        calendar.book("tartu", "bob", duration=100.0)

    def test_cancel_unknown_raises(self):
        calendar, __ = make_calendar()
        stray = Booking(99, "tartu", "mallory", 0.0, 1.0)
        with pytest.raises(CalendarError, match="not found"):
            calendar.cancel(stray)

    def test_is_free(self):
        calendar, __ = make_calendar()
        assert calendar.is_free("tartu", duration=10.0)
        calendar.book("tartu", "alice", duration=100.0)
        assert not calendar.is_free("tartu", duration=10.0)
        assert calendar.is_free("tartu", duration=10.0, start=1100.0)

    def test_non_positive_duration_rejected(self):
        calendar, __ = make_calendar()
        with pytest.raises(CalendarError, match="positive"):
            calendar.book("tartu", "alice", duration=0.0)

    def test_next_free_slot_skips_bookings(self):
        calendar, __ = make_calendar()
        calendar.book("tartu", "alice", duration=100.0)  # 1000-1100
        calendar.book("tartu", "bob", duration=50.0, start=1100.0)  # 1100-1150
        assert calendar.next_free_slot("tartu", duration=10.0) == 1150.0

    def test_next_free_slot_fits_gap(self):
        calendar, __ = make_calendar()
        calendar.book("tartu", "alice", duration=10.0)  # 1000-1010
        calendar.book("tartu", "bob", duration=10.0, start=1050.0)
        assert calendar.next_free_slot("tartu", duration=20.0) == 1010.0

    def test_active_bookings_respects_time(self):
        calendar, times = make_calendar()
        calendar.book("tartu", "alice", duration=100.0)
        assert len(calendar.active_bookings()) == 1
        times["now"] = 2000.0
        assert calendar.active_bookings() == []

    def test_describe_groups_by_node(self):
        calendar, __ = make_calendar()
        calendar.book("tartu", "alice", duration=10.0)
        calendar.book("riga", "bob", duration=10.0)
        described = calendar.describe()
        assert set(described) == {"riga", "tartu"}
        assert described["tartu"][0]["user"] == "alice"


@given(
    requests=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1000.0),
            st.floats(min_value=1.0, max_value=200.0),
        ),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=80, deadline=None)
def test_no_accepted_bookings_ever_overlap_property(requests):
    """Whatever sequence of booking attempts is made, the set of accepted
    bookings for a node is pairwise non-overlapping."""
    calendar = Calendar(clock=lambda: 0.0)
    accepted = []
    for start, duration in requests:
        try:
            accepted.append(calendar.book("node", "user", duration, start=start))
        except CalendarError:
            pass
    assert accepted  # the first request always succeeds
    for i, a in enumerate(accepted):
        for b in accepted[i + 1 :]:
            assert not a.overlaps(b.start, b.end)
