"""Tests for calendar-backed node allocation."""

from __future__ import annotations

import pytest

from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.errors import AllocationError
from repro.testbed.node import Node, NodeState


def make_allocator(node_names=("riga", "tartu", "vilnius")):
    nodes = {name: Node(name) for name in node_names}
    calendar = Calendar(clock=lambda: 1000.0)
    return Allocator(calendar, nodes), nodes, calendar


class TestAllocate:
    def test_allocates_and_marks_nodes(self):
        allocator, nodes, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga", "tartu"], duration=60.0)
        assert set(allocation.nodes) == {"riga", "tartu"}
        assert nodes["riga"].state is NodeState.ALLOCATED
        assert nodes["riga"].owner == "alice"
        assert nodes["vilnius"].state is NodeState.FREE

    def test_unknown_node_rejected(self):
        allocator, __, __ = make_allocator()
        with pytest.raises(AllocationError, match="unknown"):
            allocator.allocate("alice", ["riga", "nonexistent"], duration=60.0)

    def test_empty_request_rejected(self):
        allocator, __, __ = make_allocator()
        with pytest.raises(AllocationError, match="at least one"):
            allocator.allocate("alice", [], duration=60.0)

    def test_duplicate_nodes_rejected(self):
        allocator, __, __ = make_allocator()
        with pytest.raises(AllocationError, match="duplicate"):
            allocator.allocate("alice", ["riga", "riga"], duration=60.0)

    def test_busy_node_rejected(self):
        allocator, __, __ = make_allocator()
        allocator.allocate("alice", ["riga"], duration=60.0)
        with pytest.raises(AllocationError, match="in use"):
            allocator.allocate("bob", ["riga", "tartu"], duration=60.0)

    def test_calendar_conflict_rolls_back_atomically(self):
        """If one node's booking conflicts, no booking survives and no
        node changes state — all-or-nothing allocation."""
        allocator, nodes, calendar = make_allocator()
        calendar.book("tartu", "carol", duration=600.0)  # future conflict
        with pytest.raises(AllocationError):
            allocator.allocate("alice", ["riga", "tartu"], duration=60.0)
        assert nodes["riga"].state is NodeState.FREE
        assert calendar.bookings_for_node("riga") == []
        # The slot is genuinely still free for someone else:
        allocator.allocate("bob", ["riga"], duration=60.0)

    def test_free_nodes_listing(self):
        allocator, __, __ = make_allocator()
        allocator.allocate("alice", ["riga"], duration=60.0)
        assert allocator.free_nodes() == ["tartu", "vilnius"]


class TestRelease:
    def test_release_frees_nodes_and_bookings(self):
        allocator, nodes, calendar = make_allocator()
        allocation = allocator.allocate("alice", ["riga", "tartu"], duration=60.0)
        allocator.release(allocation)
        assert nodes["riga"].state is NodeState.FREE
        assert nodes["riga"].owner is None
        assert calendar.bookings_for_node("riga") == []
        assert allocation.released

    def test_release_is_idempotent(self):
        allocator, __, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        allocator.release(allocation)
        allocator.release(allocation)  # no error

    def test_reallocation_after_release(self):
        allocator, __, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        allocator.release(allocation)
        again = allocator.allocate("bob", ["riga"], duration=60.0)
        assert again.user == "bob"


class TestAllocationObject:
    def test_node_accessor(self):
        allocator, nodes, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        assert allocation.node("riga") is nodes["riga"]

    def test_node_accessor_outside_allocation(self):
        allocator, __, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        with pytest.raises(AllocationError, match="not part"):
            allocation.node("tartu")

    def test_describe(self):
        allocator, __, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga", "tartu"], duration=60.0)
        described = allocation.describe()
        assert described["user"] == "alice"
        assert described["nodes"] == ["riga", "tartu"]
        assert len(described["bookings"]) == 2
