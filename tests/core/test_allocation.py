"""Tests for calendar-backed node allocation."""

from __future__ import annotations

import pytest

from repro.core.allocation import Allocation, Allocator
from repro.core.calendar import Calendar
from repro.core.errors import AllocationError
from repro.netsim.host import SimHost
from repro.testbed.node import Node, NodeState
from repro.testbed.power import IpmiController


def make_allocator(node_names=("riga", "tartu", "vilnius")):
    nodes = {name: Node(name) for name in node_names}
    calendar = Calendar(clock=lambda: 1000.0)
    return Allocator(calendar, nodes), nodes, calendar


class TestAllocate:
    def test_allocates_and_marks_nodes(self):
        allocator, nodes, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga", "tartu"], duration=60.0)
        assert set(allocation.nodes) == {"riga", "tartu"}
        assert nodes["riga"].state is NodeState.ALLOCATED
        assert nodes["riga"].owner == "alice"
        assert nodes["vilnius"].state is NodeState.FREE

    def test_unknown_node_rejected(self):
        allocator, __, __ = make_allocator()
        with pytest.raises(AllocationError, match="unknown"):
            allocator.allocate("alice", ["riga", "nonexistent"], duration=60.0)

    def test_empty_request_rejected(self):
        allocator, __, __ = make_allocator()
        with pytest.raises(AllocationError, match="at least one"):
            allocator.allocate("alice", [], duration=60.0)

    def test_duplicate_nodes_rejected(self):
        allocator, __, __ = make_allocator()
        with pytest.raises(AllocationError, match="duplicate"):
            allocator.allocate("alice", ["riga", "riga"], duration=60.0)

    def test_busy_node_rejected(self):
        allocator, __, __ = make_allocator()
        allocator.allocate("alice", ["riga"], duration=60.0)
        with pytest.raises(AllocationError, match="in use"):
            allocator.allocate("bob", ["riga", "tartu"], duration=60.0)

    def test_calendar_conflict_rolls_back_atomically(self):
        """If one node's booking conflicts, no booking survives and no
        node changes state — all-or-nothing allocation."""
        allocator, nodes, calendar = make_allocator()
        calendar.book("tartu", "carol", duration=600.0)  # future conflict
        with pytest.raises(AllocationError):
            allocator.allocate("alice", ["riga", "tartu"], duration=60.0)
        assert nodes["riga"].state is NodeState.FREE
        assert calendar.bookings_for_node("riga") == []
        # The slot is genuinely still free for someone else:
        allocator.allocate("bob", ["riga"], duration=60.0)

    def test_free_nodes_listing(self):
        allocator, __, __ = make_allocator()
        allocator.allocate("alice", ["riga"], duration=60.0)
        assert allocator.free_nodes() == ["tartu", "vilnius"]


class TestRelease:
    def test_release_frees_nodes_and_bookings(self):
        allocator, nodes, calendar = make_allocator()
        allocation = allocator.allocate("alice", ["riga", "tartu"], duration=60.0)
        allocator.release(allocation)
        assert nodes["riga"].state is NodeState.FREE
        assert nodes["riga"].owner is None
        assert calendar.bookings_for_node("riga") == []
        assert allocation.released

    def test_release_is_idempotent(self):
        allocator, __, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        allocator.release(allocation)
        allocator.release(allocation)  # no error

    def test_reallocation_after_release(self):
        allocator, __, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        allocator.release(allocation)
        again = allocator.allocate("bob", ["riga"], duration=60.0)
        assert again.user == "bob"


class TestBoundRelease:
    """Allocation.release() — the handle releases itself, exactly once."""

    def test_allocation_releases_itself(self):
        allocator, nodes, calendar = make_allocator()
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        allocation.release()
        assert allocation.released
        assert nodes["riga"].state is NodeState.FREE
        assert calendar.bookings_for_node("riga") == []

    def test_double_release_through_either_path_is_idempotent(self):
        allocator, __, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        allocation.release()
        allocation.release()                # handle, again
        allocator.release(allocation)       # allocator path, again

    def test_unbound_allocation_refuses_to_release(self):
        allocation = Allocation(user="alice", nodes={}, bookings=[])
        with pytest.raises(AllocationError, match="not bound"):
            allocation.release()

    def test_double_release_records_a_single_sel_event(self):
        """Regression: double release must not log two BMC release
        events — one allocation, one 'release' SEL record."""
        host = SimHost("riga")
        power = IpmiController(host)
        nodes = {"riga": Node("riga", host=host, power=power)}
        allocator = Allocator(Calendar(clock=lambda: 1000.0), nodes)
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        allocation.release()
        allocation.release()
        allocator.release(allocation)
        releases = [entry for entry in power.sel
                    if entry["sensor"] == "release"]
        assert len(releases) == 1
        assert "alice" in releases[0]["event"]

    def test_release_of_an_already_free_node_is_a_no_op(self):
        host = SimHost("riga")
        power = IpmiController(host)
        node = Node("riga", host=host, power=power)
        node.release()  # never allocated
        assert [e for e in power.sel if e["sensor"] == "release"] == []


class TestReserveAndClaim:
    """The two-step path campaigns use: book the future, claim later."""

    def test_reserve_books_without_touching_node_state(self):
        allocator, nodes, calendar = make_allocator()
        reservation = allocator.reserve(
            "alice", ["riga", "tartu"], duration=60.0, start=5000.0
        )
        assert nodes["riga"].state is NodeState.FREE
        assert reservation.start == 5000.0 and reservation.end == 5060.0
        assert len(calendar.bookings_for_node("riga")) == 1

    def test_reserve_is_all_or_nothing(self):
        allocator, __, calendar = make_allocator()
        calendar.book("tartu", "carol", duration=600.0, start=5000.0)
        with pytest.raises(AllocationError):
            allocator.reserve("alice", ["riga", "tartu"], duration=60.0,
                              start=5000.0)
        assert calendar.bookings_for_node("riga") == []

    def test_reserve_future_window_while_node_is_busy(self):
        """A future reservation must not require the node to be FREE
        now — it is still serving the previous experiment."""
        allocator, __, __ = make_allocator()
        allocator.allocate("alice", ["riga"], duration=60.0)
        reservation = allocator.reserve("bob", ["riga"], duration=30.0,
                                        start=2000.0)
        assert not reservation.claimed

    def test_claim_marks_nodes_and_binds_the_allocation(self):
        allocator, nodes, __ = make_allocator()
        reservation = allocator.reserve("alice", ["riga"], duration=60.0)
        allocation = allocator.claim(reservation)
        assert reservation.claimed
        assert nodes["riga"].state is NodeState.ALLOCATED
        allocation.release()  # bound: releases through the allocator
        assert nodes["riga"].state is NodeState.FREE

    def test_claim_twice_raises(self):
        allocator, __, __ = make_allocator()
        reservation = allocator.reserve("alice", ["riga"], duration=60.0)
        allocator.claim(reservation)
        with pytest.raises(AllocationError, match="already claimed"):
            allocator.claim(reservation)

    def test_claim_of_a_busy_node_raises_and_changes_nothing(self):
        allocator, nodes, __ = make_allocator()
        allocator.allocate("alice", ["riga"], duration=60.0)
        reservation = allocator.reserve("bob", ["riga"], duration=30.0,
                                        start=2000.0)
        with pytest.raises(AllocationError, match="in use"):
            allocator.claim(reservation)
        assert not reservation.claimed
        assert nodes["riga"].owner == "alice"

    def test_cancel_reservation_is_idempotent(self):
        allocator, __, calendar = make_allocator()
        reservation = allocator.reserve("alice", ["riga"], duration=60.0)
        allocator.cancel_reservation(reservation)
        allocator.cancel_reservation(reservation)
        assert reservation.cancelled
        assert calendar.bookings_for_node("riga") == []

    def test_claim_after_cancel_raises(self):
        allocator, __, __ = make_allocator()
        reservation = allocator.reserve("alice", ["riga"], duration=60.0)
        allocator.cancel_reservation(reservation)
        with pytest.raises(AllocationError, match="cancelled"):
            allocator.claim(reservation)

    def test_cancel_of_a_claimed_reservation_raises(self):
        allocator, __, __ = make_allocator()
        reservation = allocator.reserve("alice", ["riga"], duration=60.0)
        allocator.claim(reservation)
        with pytest.raises(AllocationError, match="claimed"):
            allocator.cancel_reservation(reservation)

    def test_describe_reports_the_reservation(self):
        allocator, __, __ = make_allocator()
        reservation = allocator.reserve("alice", ["tartu", "riga"],
                                        duration=60.0)
        described = reservation.describe()
        assert described["user"] == "alice"
        assert described["nodes"] == ["riga", "tartu"]
        assert described["claimed"] is False


class TestAllocationObject:
    def test_node_accessor(self):
        allocator, nodes, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        assert allocation.node("riga") is nodes["riga"]

    def test_node_accessor_outside_allocation(self):
        allocator, __, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga"], duration=60.0)
        with pytest.raises(AllocationError, match="not part"):
            allocation.node("tartu")

    def test_describe(self):
        allocator, __, __ = make_allocator()
        allocation = allocator.allocate("alice", ["riga", "tartu"], duration=60.0)
        described = allocation.describe()
        assert described["user"] == "alice"
        assert described["nodes"] == ["riga", "tartu"]
        assert len(described["bookings"]) == 2
