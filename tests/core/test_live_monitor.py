"""Live monitor: ``pos status``/``pos watch`` from artifacts alone.

The monitor is a read-only tailer of the files the controller flushes
as it executes — the journal, the per-run telemetry/health snapshots,
and the trace.  It must work concurrently with a parallel execution:
reading mid-experiment never observes a torn record, only a shorter
(but internally consistent) prefix of the final artifacts.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.casestudy import run_case_study
from repro.telemetry.live import (
    StatusError,
    load_health_timeline,
    load_status,
    render_status,
    watch,
)

CLOCK = lambda: 1_600_000_000.0  # noqa: E731 - fixed clock => fixed tree paths

SWEEP = dict(
    rates=[200_000, 400_000],
    sizes=(64, 1500),
    duration_s=0.05,
    interval_s=0.02,
    clock=CLOCK,
)


@pytest.fixture(scope="module")
def result_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("live")
    handle = run_case_study("pos", str(root), jobs=1, **SWEEP)
    assert handle.completed_runs == 4
    return handle.result_path


class TestStatus:
    def test_complete_experiment(self, result_dir):
        status = load_status(result_dir)
        assert status["experiment"] == "linux-router-forwarding-pos"
        assert status["phase"] == "complete"
        assert status["done"] == status["total_runs"] == 4
        assert status["ok"] == 4 and status["failed"] == 0
        assert status["faults"] == 0
        assert status["eta_s"] is None  # nothing left to extrapolate
        nodes = status["health"]["nodes"]
        assert set(nodes) == {"riga", "tartu"}
        assert all(node["state"] == "healthy" for node in nodes.values())

    def test_render_is_one_screenful(self, result_dir):
        text = render_status(result_dir)
        assert "experiment: linux-router-forwarding-pos" in text
        assert "phase:      complete (4/4 runs journalled)" in text
        assert "riga" in text and "tartu" in text
        assert "eta:" not in text

    def test_missing_directory(self, tmp_path):
        with pytest.raises(StatusError, match="no such experiment"):
            load_status(str(tmp_path / "nope"))

    def test_missing_journal(self, tmp_path):
        with pytest.raises(StatusError, match="journal.jsonl"):
            load_status(str(tmp_path))

    def test_header_only_journal_requires_runs(self, tmp_path):
        with open(os.path.join(tmp_path, "journal.jsonl"), "w") as handle:
            handle.write(json.dumps(
                {"event": "experiment", "name": "x", "total_runs": 3}
            ) + "\n")
        with pytest.raises(StatusError, match="no measurement runs"):
            load_status(str(tmp_path))
        # watch mode tolerates the same folder: it is still in setup.
        status = load_status(str(tmp_path), require_runs=False)
        assert status["phase"] == "setup" and status["done"] == 0

    def test_torn_journal_tail_is_dropped(self, result_dir, tmp_path):
        clone = tmp_path / "torn"
        clone.mkdir()
        with open(os.path.join(result_dir, "journal.jsonl")) as handle:
            journal = handle.read()
        (clone / "journal.jsonl").write_text(
            journal + '{"event": "run", "index": 9, "l'  # mid-write record
        )
        status = load_status(str(clone))
        assert status["done"] == 4  # the torn record never surfaces


class TestWatch:
    def test_stops_on_completion(self, result_dir):
        stream = io.StringIO()
        assert watch(result_dir, stream=stream, max_updates=10) == 0
        assert stream.getvalue().count("phase:      complete") == 1

    def test_max_updates_bounds_an_unfinished_watch(self, tmp_path):
        with open(os.path.join(tmp_path, "journal.jsonl"), "w") as handle:
            handle.write(json.dumps(
                {"event": "experiment", "name": "x", "total_runs": 3}
            ) + "\n")
        stream = io.StringIO()
        naps = []
        code = watch(
            str(tmp_path), stream=stream, max_updates=3,
            interval_s=0.5, sleep=naps.append,
        )
        assert code == 0
        assert stream.getvalue().count("phase:      setup") == 3
        assert naps == [0.5, 0.5]

    def test_waits_for_journal_to_appear(self, tmp_path):
        stream = io.StringIO()
        assert watch(str(tmp_path), stream=stream, max_updates=1) == 0
        assert "waiting:" in stream.getvalue()

    def test_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(StatusError):
            watch(str(tmp_path / "nope"), stream=io.StringIO())


class TestHealthTimeline:
    def test_timeline_covers_every_run(self, result_dir):
        timeline = load_health_timeline(result_dir)
        assert timeline["nodes"] == ["riga", "tartu"]
        assert [entry["run"] for entry in timeline["timeline"]] == [0, 1, 2, 3]
        assert all(
            entry["observations"]["riga"] == "healthy"
            for entry in timeline["timeline"]
        )
        assert timeline["final"] == {"riga": "healthy", "tartu": "healthy"}


class TestConcurrentReads:
    def test_mid_experiment_reader_never_sees_a_torn_record(self, tmp_path):
        """Tail every flushed artifact after each run of a jobs=2 run.

        The progress callback fires in the parent while workers are
        still executing — exactly the moment an operator's ``pos
        status`` would race the scheduler.  Every line of the journal
        and the trace must parse, and ``load_status`` must return a
        consistent prefix.
        """
        observed = []

        def tail_everything(done, total):
            roots = [
                dirpath for dirpath, _, names in os.walk(str(tmp_path))
                if "journal.jsonl" in names
            ]
            if not roots:
                return
            root = roots[0]
            for name in ("journal.jsonl", "trace.jsonl"):
                path = os.path.join(root, name)
                if not os.path.isfile(path):
                    continue
                with open(path) as handle:
                    for line in handle:
                        json.loads(line)  # no torn records, ever
            status = load_status(root, require_runs=False)
            assert 0 <= status["done"] <= status["total_runs"]
            assert status["ok"] + status["failed"] + status["skipped"] \
                == status["done"]
            observed.append((done, status["done"]))

        handle = run_case_study(
            "pos", str(tmp_path), jobs=2, progress=tail_everything, **SWEEP
        )
        assert handle.completed_runs == 4
        assert observed, "the mid-experiment reader must have run"
        # The journal view never runs ahead of the scheduler's count.
        assert all(seen <= done for done, seen in observed)
