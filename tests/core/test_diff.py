"""Acceptance tests for ``pos diff`` — comparative analysis plane.

The contract under test:

* the report is a pure function of the on-disk artifacts —
  byte-identical no matter which schedule (``--jobs``, ``--agents``,
  crash + resume) produced either tree;
* two executions differing only in an input recorded in the
  reproducibility fingerprint (here: the seed) have **every** metric
  delta attributed to that field;
* two executions with identical fingerprints report zero deltas — and
  a doctored result file surfaces as an UNEXPLAINED delta, not as
  silence.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.casestudy import run_case_study
from repro.telemetry.diff import (
    DiffError,
    diff_experiments,
    load_side,
    render_diff,
)
from repro.telemetry.schema import validate
from tests.core.test_parallel_scheduler import (
    CrashRequested,
    crashing_progress,
    find_result_dir,
)

CLOCK = lambda: 1_600_000_000.0  # noqa: E731 - fixed clock => fixed paths

# A saturating rate so outcomes are seed-sensitive (stochastic drops);
# four sizes so a crash after two runs leaves genuine work to resume.
KWARGS = dict(
    rates=[100_000], sizes=(64, 128, 256, 512), duration_s=0.2, clock=CLOCK,
)


def run_tree(root, **overrides):
    params = dict(KWARGS)
    params.update(overrides)
    run_case_study("vpos", str(root), **params)
    return find_result_dir(str(root))


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    return run_tree(tmp_path_factory.mktemp("baseline"))


@pytest.fixture(scope="module")
def replica(tmp_path_factory):
    return run_tree(tmp_path_factory.mktemp("replica"))


class TestReplication:
    def test_identical_inputs_zero_deltas(self, baseline, replica):
        diff = diff_experiments(baseline, replica)
        assert diff["causes"] == []
        assert diff["deltas"] == []
        assert diff["attribution"] == {
            "total": 0, "explained": 0, "unexplained": 0, "causes": [],
        }
        assert "the trees replicate" in render_diff(diff)

    def test_saved_report_matches_schema(self, baseline, replica):
        diff = diff_experiments(baseline, replica)
        schema_path = os.path.join(
            os.path.dirname(__file__), "..", "..", "docs", "schemas",
            "diff.schema.json",
        )
        with open(schema_path, "r", encoding="utf-8") as handle:
            validate(json.loads(json.dumps(diff)), json.load(handle))


class TestAttribution:
    def test_seed_change_explains_every_delta(self, baseline, tmp_path):
        reseeded = run_tree(tmp_path / "seed7", seed=7)
        diff = diff_experiments(baseline, reseeded)
        assert [c["field"] for c in diff["causes"]] == ["seed"]
        assert diff["deltas"], "a saturating sweep must be seed-sensitive"
        assert all(d["cause"] == "seed" for d in diff["deltas"])
        assert diff["attribution"]["unexplained"] == 0
        assert diff["attribution"]["explained"] == len(diff["deltas"])
        assert "all explained by: seed" in render_diff(diff)

    def test_doctored_result_is_unexplained(self, baseline, replica, tmp_path):
        # Same fingerprint, silently different results: the exact shape
        # of a reproducibility violation.  Copy the replica and corrupt
        # one measurement file.
        doctored = str(tmp_path / "doctored")
        shutil.copytree(replica, doctored)
        pos_log = os.path.join(doctored, "run-000", "loadgen", "pos.log")
        with open(pos_log, "r", encoding="utf-8") as handle:
            text = handle.read()
        rx = int(text.rsplit("rx=", 1)[1].split()[0])
        with open(pos_log, "w", encoding="utf-8") as handle:
            handle.write(text.replace(f"rx={rx}", f"rx={rx + 999}"))
        diff = diff_experiments(baseline, doctored)
        assert diff["causes"] == []
        assert diff["attribution"]["unexplained"] >= 1
        assert all(d["cause"] is None for d in diff["deltas"])
        assert "UNEXPLAINED" in render_diff(diff)

    def test_paired_effects_are_reported(self, baseline, tmp_path):
        reseeded = run_tree(tmp_path / "seed9", seed=9)
        diff = diff_experiments(baseline, reseeded)
        assert "rx_packets" in diff["effects"]
        effect = diff["effects"]["rx_packets"]
        assert effect["ci_low"] <= effect["hl_estimate"] <= effect["ci_high"]
        assert effect["n"] == diff["runs"]["matched"]


class TestScheduleInvariance:
    """The report must not remember how either tree was executed."""

    def diff_from(self, tree, workdir):
        # Byte-identity must hold including the rendered paths, so each
        # schedule variant is compared from an identically-named copy,
        # addressed relative to the working directory.
        shutil.copytree(tree, str(workdir / "tree"))
        cwd = os.getcwd()
        os.chdir(str(workdir))
        try:
            diff = diff_experiments("tree", "tree")
        finally:
            os.chdir(cwd)
        return render_diff(diff), json.dumps(diff, sort_keys=True)

    @pytest.fixture(scope="class")
    def reference(self, baseline, tmp_path_factory):
        return self.diff_from(baseline, tmp_path_factory.mktemp("ref"))

    @pytest.mark.parametrize("schedule", ["jobs2", "agents2", "crash"])
    def test_any_schedule_diffs_identically(
        self, baseline, tmp_path, reference, schedule,
    ):
        root = tmp_path / schedule
        if schedule == "jobs2":
            run_tree(root, jobs=2)
        elif schedule == "agents2":
            run_tree(root, agents=2)
        else:
            with pytest.raises(CrashRequested):
                run_tree(root, progress=crashing_progress(2))
            resumed = find_result_dir(str(root))
            run_case_study(
                "vpos", str(root), resume_path=resumed, **KWARGS
            )
        variant = find_result_dir(str(root))
        assert self.diff_from(variant, tmp_path) == reference


class TestLoading:
    def test_missing_directory_is_one_error(self, tmp_path):
        with pytest.raises(DiffError, match="no such experiment"):
            load_side(str(tmp_path / "absent"))

    def test_directory_without_journal_is_one_error(self, tmp_path):
        with pytest.raises(DiffError, match="journal"):
            load_side(str(tmp_path))

    def test_provenance_rides_the_side(self, baseline):
        side = load_side(baseline)
        assert side["provenance"]["seed"] == 0
        assert side["provenance"]["platform"] == "vpos"
        assert side["provenance"]["code_epoch"] >= 1
