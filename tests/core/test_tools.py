"""Tests for the shared store and deployed utility tools."""

from __future__ import annotations

import pytest

from repro.core.errors import BarrierError
from repro.core.tools import PosTools, SharedStore
from repro.netsim.host import SimHost
from repro.testbed.node import Node
from repro.testbed.transport import SshTransport


def make_tools(role: str, store: SharedStore):
    host = SimHost(role)
    host.boot("img", "v1")
    node = Node(role, host=host, transport=SshTransport(host))
    node.transport.connect()
    return PosTools(store, node, role)


class TestSharedStore:
    def test_variable_round_trip(self):
        store = SharedStore()
        store.set_variable("k", [1, 2])
        assert store.get_variable("k") == [1, 2]

    def test_missing_variable_raises(self):
        store = SharedStore()
        with pytest.raises(KeyError):
            store.get_variable("never")

    def test_missing_variable_with_default(self):
        store = SharedStore()
        assert store.get_variable("never", default=None) is None

    def test_barriers_complete(self):
        store = SharedStore()
        store.barrier_arrive("sync", "dut")
        store.barrier_arrive("sync", "loadgen")
        store.check_barriers({"dut", "loadgen"})  # no raise

    def test_barrier_missing_party_detected(self):
        store = SharedStore()
        store.barrier_arrive("sync", "dut")
        with pytest.raises(BarrierError, match="loadgen"):
            store.check_barriers({"dut", "loadgen"})

    def test_barrier_foreign_party_detected(self):
        store = SharedStore()
        store.barrier_arrive("sync", "intruder")
        store.barrier_arrive("sync", "dut")
        with pytest.raises(BarrierError, match="intruder"):
            store.check_barriers({"dut"})

    def test_unused_barriers_pass(self):
        SharedStore().check_barriers({"dut", "loadgen"})

    def test_reset_clears_ledger(self):
        store = SharedStore()
        store.barrier_arrive("sync", "dut")
        store.reset_barriers()
        store.check_barriers({"dut", "loadgen"})  # nothing pending


class TestPosTools:
    def test_cross_host_variable_communication(self):
        store = SharedStore()
        dut = make_tools("dut", store)
        loadgen = make_tools("loadgen", store)
        dut.set_variable("dut_mac", "aa:bb")
        assert loadgen.get_variable("dut_mac") == "aa:bb"

    def test_get_variable_default(self):
        store = SharedStore()
        tools = make_tools("dut", store)
        assert tools.get_variable("nope", default=3) == 3

    def test_run_captures_output(self):
        tools = make_tools("dut", SharedStore())
        result = tools.run("echo captured")
        assert result.stdout == "captured"
        assert tools.command_log == [result]

    def test_multiple_hosts_reach_barrier(self):
        store = SharedStore()
        for role in ("dut", "loadgen"):
            make_tools(role, store).barrier("go")
        store.check_barriers({"dut", "loadgen"})

    def test_upload_accumulates(self):
        tools = make_tools("dut", SharedStore())
        tools.upload("a.txt", "1")
        tools.upload("b.txt", "2")
        assert tools.uploads == [("a.txt", "1"), ("b.txt", "2")]

    def test_pos_unknown_tool_fails(self):
        tools = make_tools("dut", SharedStore())
        result = tools.run("pos frobnicate")
        assert result.exit_code == 2
        assert "unknown tool" in result.stdout
