"""Tests for the file-defined experiment layout (pos-artifacts style)."""

from __future__ import annotations

import os

import pytest

from repro.core import yamlite
from repro.core.errors import ExperimentError
from repro.core.expdir import (
    load_experiment_dir,
    load_script_file,
    write_experiment_dir,
)
from repro.core.experiment import Experiment, Role
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables


def sample_experiment() -> Experiment:
    return Experiment(
        name="router-study",
        roles=[
            Role(
                name="loadgen",
                node="riga",
                setup=CommandScript("loadgen-setup", [
                    "ip link set $LG_PORT0 up",
                    "pos barrier setup-done",
                ]),
                measurement=CommandScript("loadgen-measurement", [
                    "echo rate $pkt_rate",
                    "pos barrier run-done",
                ]),
                image=("debian-buster", "20201012T000000Z"),
            ),
            Role(
                name="dut",
                node="tartu",
                setup=CommandScript("dut-setup", [
                    "sysctl -w net.ipv4.ip_forward=1",
                    "-ethtool eno1",
                    "pos barrier setup-done",
                ]),
                measurement=CommandScript("dut-measurement", [
                    "ip link show",
                    "pos barrier run-done",
                ]),
                boot_parameters={"isolcpus": "1-11"},
            ),
        ],
        variables=Variables(
            global_vars={"duration": 0.5},
            local_vars={"loadgen": {"LG_PORT0": "eno1"}},
            loop_vars={"pkt_rate": [10000, 20000], "pkt_sz": [64, 1500]},
        ),
        duration_s=1800.0,
        description="case study",
    )


class TestScriptFiles:
    def test_load_skips_comments_blanks_and_shebang(self, tmp_path):
        path = tmp_path / "setup.sh"
        path.write_text(
            "#!/bin/sh\n"
            "# configure forwarding\n"
            "\n"
            "sysctl -w net.ipv4.ip_forward=1\n"
            "  ip link set eno1 up  \n"
        )
        script = load_script_file(str(path))
        assert script.name == "setup"
        assert script.commands == [
            "sysctl -w net.ipv4.ip_forward=1",
            "ip link set eno1 up",
        ]

    def test_tolerance_prefix_preserved(self, tmp_path):
        path = tmp_path / "s.sh"
        path.write_text("-ethtool eno1\n")
        assert load_script_file(str(path)).commands == ["-ethtool eno1"]

    def test_missing_file_rejected(self):
        with pytest.raises(ExperimentError, match="not found"):
            load_script_file("/nope/absent.sh")


class TestRoundTrip:
    def test_write_then_load_is_identical(self, tmp_path):
        original = sample_experiment()
        write_experiment_dir(original, str(tmp_path / "exp"))
        loaded = load_experiment_dir(str(tmp_path / "exp"))
        assert loaded.name == original.name
        assert loaded.description == original.description
        assert loaded.duration_s == original.duration_s
        assert loaded.variables.describe() == original.variables.describe()
        for role_a, role_b in zip(original.roles, loaded.roles):
            assert role_a.name == role_b.name
            assert role_a.node == role_b.node
            assert role_a.image == role_b.image
            assert role_a.boot_parameters == role_b.boot_parameters
            assert role_a.setup.commands == role_b.setup.commands
            assert role_a.measurement.commands == role_b.measurement.commands

    def test_written_layout_matches_artifact_convention(self, tmp_path):
        write_experiment_dir(sample_experiment(), str(tmp_path / "exp"))
        entries = sorted(os.listdir(tmp_path / "exp"))
        assert entries == [
            "experiment.yml",
            "global-variables.yml",
            "loadgen-variables.yml",
            "loop-variables.yml",
            "scripts",
        ]
        scripts = sorted(os.listdir(tmp_path / "exp" / "scripts"))
        assert scripts == [
            "dut-measurement.sh",
            "dut-setup.sh",
            "loadgen-measurement.sh",
            "loadgen-setup.sh",
        ]

    def test_python_scripts_cannot_be_exported(self, tmp_path):
        experiment = sample_experiment()
        experiment.roles[0].measurement = PythonScript("m", lambda ctx: None)
        with pytest.raises(ExperimentError, match="CommandScript"):
            write_experiment_dir(experiment, str(tmp_path / "exp"))


class TestLoadValidation:
    def write_minimal(self, tmp_path, meta=None):
        exp = tmp_path / "exp"
        (exp / "scripts").mkdir(parents=True)
        (exp / "scripts" / "dut-setup.sh").write_text("true\n")
        (exp / "scripts" / "dut-measurement.sh").write_text("true\n")
        yamlite.dump_file(
            meta
            or {
                "name": "minimal",
                "roles": [{"role": "dut", "node": "tartu"}],
            },
            exp / "experiment.yml",
        )
        return str(exp)

    def test_minimal_experiment_loads_with_defaults(self, tmp_path):
        experiment = load_experiment_dir(self.write_minimal(tmp_path))
        assert experiment.name == "minimal"
        assert experiment.roles[0].image == ("debian-buster", "latest")
        assert experiment.duration_s == 3600.0
        assert experiment.variables.run_count() == 1

    def test_missing_folder(self):
        with pytest.raises(ExperimentError, match="no such"):
            load_experiment_dir("/absent")

    def test_missing_experiment_yml(self, tmp_path):
        (tmp_path / "exp").mkdir()
        with pytest.raises(ExperimentError, match="missing required"):
            load_experiment_dir(str(tmp_path / "exp"))

    def test_missing_name(self, tmp_path):
        path = self.write_minimal(
            tmp_path, {"roles": [{"role": "dut", "node": "t"}]}
        )
        with pytest.raises(ExperimentError, match="missing 'name'"):
            load_experiment_dir(path)

    def test_roles_must_be_list(self, tmp_path):
        path = self.write_minimal(tmp_path, {"name": "x", "roles": "dut"})
        with pytest.raises(ExperimentError, match="'roles' must be a list"):
            load_experiment_dir(path)

    def test_bad_image_shape(self, tmp_path):
        path = self.write_minimal(
            tmp_path,
            {"name": "x", "roles": [
                {"role": "dut", "node": "t", "image": "debian"},
            ]},
        )
        with pytest.raises(ExperimentError, match="image must be"):
            load_experiment_dir(path)

    def test_missing_script_file(self, tmp_path):
        exp = tmp_path / "exp"
        (exp / "scripts").mkdir(parents=True)
        yamlite.dump_file(
            {"name": "x", "roles": [{"role": "dut", "node": "t"}]},
            exp / "experiment.yml",
        )
        with pytest.raises(ExperimentError, match="script file not found"):
            load_experiment_dir(str(exp))


class TestEndToEnd:
    def test_loaded_experiment_runs_on_the_testbed(self, tmp_path):
        """The artifact folder is executable: write it out, load it
        back, hand it to the controller."""
        from repro.core.allocation import Allocator
        from repro.core.calendar import Calendar
        from repro.core.controller import Controller
        from repro.core.results import ResultStore
        from repro.netsim.host import SimHost
        from repro.testbed.images import default_registry
        from repro.testbed.node import Node
        from repro.testbed.power import IpmiController
        from repro.testbed.transport import SshTransport

        write_experiment_dir(sample_experiment(), str(tmp_path / "exp"))
        experiment = load_experiment_dir(str(tmp_path / "exp"))

        nodes = {}
        for name in ("riga", "tartu"):
            host = SimHost(name)
            nodes[name] = Node(name, host=host, power=IpmiController(host),
                               transport=SshTransport(host))
        controller = Controller(
            Allocator(Calendar(clock=lambda: 0.0), nodes),
            default_registry(),
            ResultStore(str(tmp_path / "results"), clock=lambda: 1.0),
        )
        handle = controller.run(experiment)
        assert handle.completed_runs == 4  # 2 rates x 2 sizes
