"""Acceptance tests for ``pos doctor`` — automated diagnosis.

The contract under test:

* a clean execution diagnoses as *healthy* with **no findings**, and
  the report is byte-identical no matter which schedule produced the
  tree (serial, ``--jobs``, ``--agents``, crash + resume) — evidence
  sidecars differ across schedules, but findings only fire on notable
  events, so quiet evidence folds to the same zeros everywhere;
* a chaos execution (seeded agent kill) produces a finding that names
  the killed agent and the dispatch evidence it was folded from;
* an anomalous run (duration far outside the fleet's robust spread)
  and a failed run each produce ranked findings with evidence
  pointers.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.casestudy import run_case_study
from repro.faults.plan import FaultPlan, FaultSpec
from repro.telemetry.doctor import (
    DoctorError,
    diagnose,
    render_diagnosis,
)
from repro.telemetry.schema import validate
from tests.core.test_parallel_scheduler import (
    CrashRequested,
    crashing_progress,
    find_result_dir,
)

CLOCK = lambda: 1_600_000_000.0  # noqa: E731 - fixed clock => fixed paths

KWARGS = dict(duration_s=0.2, max_runs=4, clock=CLOCK)

CHAOS = FaultPlan([
    FaultSpec(kind="agent", operation="kill", node="agent-00", times=1),
])


def run_tree(root, **overrides):
    params = dict(KWARGS)
    params.update(overrides)
    run_case_study("vpos", str(root), **params)
    return find_result_dir(str(root))


def synthetic_tree(tmp_path, durations, failures=()):
    """A minimal artifact tree built by hand: journal + run telemetry."""
    root = tmp_path / "synthetic"
    root.mkdir()
    with open(root / "journal.jsonl", "w", encoding="utf-8") as handle:
        handle.write(json.dumps({
            "event": "experiment", "name": "synthetic",
            "total_runs": len(durations),
        }) + "\n")
        for index, duration in enumerate(durations):
            handle.write(json.dumps({
                "event": "run", "index": index, "dir": f"run-{index:03d}",
                "loop": {"i": index}, "ok": index not in failures,
                "error": "boom" if index in failures else None,
            }) + "\n")
        handle.write(json.dumps({"event": "complete"}) + "\n")
    for index, duration in enumerate(durations):
        run_dir = root / f"run-{index:03d}"
        run_dir.mkdir()
        with open(run_dir / "telemetry.json", "w", encoding="utf-8") as handle:
            json.dump({
                "spans": [{"name": "run", "start": 0.0, "end": duration}],
            }, handle)
    return str(root)


class TestHealthyExecution:
    @pytest.fixture(scope="class")
    def clean(self, tmp_path_factory):
        return run_tree(tmp_path_factory.mktemp("clean"))

    def test_clean_run_has_no_findings(self, clean):
        diagnosis = diagnose(clean)
        assert diagnosis["findings"] == []
        assert diagnosis["verdict"] == "healthy"
        assert diagnosis["summary"]["complete"] is True
        assert diagnosis["summary"]["deaths"] == 0

    def test_report_matches_schema(self, clean):
        schema_path = os.path.join(
            os.path.dirname(__file__), "..", "..", "docs", "schemas",
            "doctor.schema.json",
        )
        with open(schema_path, "r", encoding="utf-8") as handle:
            validate(
                json.loads(json.dumps(diagnose(clean))), json.load(handle)
            )


class TestScheduleInvariance:
    """Evidence differs across schedules; the diagnosis must not."""

    def diagnose_from(self, tree, workdir):
        shutil.copytree(tree, str(workdir / "tree"))
        cwd = os.getcwd()
        os.chdir(str(workdir))
        try:
            diagnosis = diagnose("tree")
        finally:
            os.chdir(cwd)
        return (
            render_diagnosis(diagnosis),
            json.dumps(diagnosis, sort_keys=True),
        )

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        serial = run_tree(tmp_path_factory.mktemp("serial"))
        return self.diagnose_from(serial, tmp_path_factory.mktemp("ref"))

    @pytest.mark.parametrize("schedule", ["jobs2", "agents2", "agents3",
                                          "crash"])
    def test_any_schedule_diagnoses_identically(
        self, tmp_path, reference, schedule,
    ):
        root = tmp_path / schedule
        if schedule == "jobs2":
            run_tree(root, jobs=2)
        elif schedule == "agents2":
            run_tree(root, agents=2)
        elif schedule == "agents3":
            run_tree(root, agents=3)
        else:
            with pytest.raises(CrashRequested):
                run_tree(root, progress=crashing_progress(2))
            resumed = find_result_dir(str(root))
            run_case_study(
                "vpos", str(root), resume_path=resumed, **KWARGS
            )
        variant = find_result_dir(str(root))
        assert self.diagnose_from(variant, tmp_path) == reference


class TestChaosDiagnosis:
    def test_agent_death_is_named(self, tmp_path):
        tree = run_tree(tmp_path, agents=2, dist_fault_plan=CHAOS)
        diagnosis = diagnose(tree)
        deaths = [
            f for f in diagnosis["findings"] if f["code"] == "agent-death"
        ]
        assert len(deaths) == 1
        assert "agent-00" in deaths[0]["message"]
        assert deaths[0]["evidence"]["file"] == "dispatch.jsonl"
        assert deaths[0]["evidence"]["agents"] == ["agent-00"]
        assert diagnosis["summary"]["deaths"] == 1
        assert diagnosis["verdict"] == "degraded"
        rendered = render_diagnosis(diagnosis)
        assert "agent-00" in rendered
        assert "dispatch.jsonl" in rendered


class TestSyntheticFindings:
    def test_anomalous_run_is_flagged(self, tmp_path):
        tree = synthetic_tree(tmp_path, [1.0, 1.0, 1.0, 1.0, 1.0, 5.0])
        diagnosis = diagnose(tree)
        anomalies = [
            f for f in diagnosis["findings"] if f["code"] == "anomalous-run"
        ]
        assert len(anomalies) == 1
        assert anomalies[0]["evidence"]["runs"] == [5]
        assert "slower" in anomalies[0]["message"]

    def test_uniform_fleet_is_not_flagged(self, tmp_path):
        tree = synthetic_tree(tmp_path, [1.0] * 6)
        assert diagnose(tree)["findings"] == []

    def test_failed_runs_rank_above_warnings(self, tmp_path):
        tree = synthetic_tree(
            tmp_path, [1.0, 1.0, 1.0, 1.0, 1.0, 5.0], failures={1},
        )
        diagnosis = diagnose(tree)
        assert diagnosis["verdict"] == "unhealthy"
        codes = [f["code"] for f in diagnosis["findings"]]
        assert codes[0] == "run-failures"
        assert "boom" in diagnosis["findings"][0]["message"]
        assert codes.index("run-failures") < codes.index("anomalous-run")

    def test_folder_without_journal_is_one_error(self, tmp_path):
        with pytest.raises(DoctorError, match="journal"):
            diagnose(str(tmp_path))
