"""Content-addressed run cache: hits replay byte-identically, for free.

The contract under test (the ISSUE's acceptance criteria): a repeated
(scenario, variable assignment, seed) point is served from the cache
with *zero* simulator runs executed and a byte-identical artifact tree
— sequentially, under ``--jobs`` and under ``--agents`` alike — while
``POS_RUN_CACHE=0`` kills the cache, fault plans disable it, corrupt
entries degrade to misses, and the only trace a warm execution leaves
is the ``cache.jsonl`` evidence sidecar (the deterministic artifacts
must not know the cache exists).
"""

from __future__ import annotations

import json
import os

import pytest

import repro.core.scheduler as _scheduler
from repro.cache import CODE_EPOCH, RunCache
from repro.casestudy import run_case_study
from repro.cli.main import main as cli_main
from repro.core.scheduler import AttemptResult, RunOutcome

CLOCK = lambda: 1_600_000_000.0  # noqa: E731 - fixed clock => fixed tree paths

SWEEP = dict(
    rates=[100_000, 200_000],
    sizes=(64, 1500),
    duration_s=0.05,
    interval_s=0.02,
    clock=CLOCK,
)


def tree(root, exclude=("cache.jsonl", "dispatch.jsonl")):
    """Relative path -> file bytes for every file under ``root``."""
    contents = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name in exclude:
                continue
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                contents[os.path.relpath(path, root)] = handle.read()
    return contents


def find_result_dir(root):
    for dirpath, __, filenames in os.walk(root):
        if "journal.jsonl" in filenames:
            return dirpath
    raise AssertionError(f"no journal found under {root}")


def cache_events(root):
    path = os.path.join(find_result_dir(root), "cache.jsonl")
    if not os.path.isfile(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


@pytest.fixture()
def counted_runs(monkeypatch):
    """Count (and still perform) every in-process run execution."""
    calls = []
    original = _scheduler.execute_run

    def counting(*args, **kwargs):
        calls.append(args[4])  # the run index
        return original(*args, **kwargs)

    monkeypatch.setattr(_scheduler, "execute_run", counting)
    # The controller module imported the scheduler module, not the
    # function, so patching the module attribute covers both callers.
    return calls


class CrashRequested(RuntimeError):
    """Simulated controller death: NOT a PosError, nothing handles it."""


def crashing_progress(after):
    def callback(done, total):
        if done >= after:
            raise CrashRequested(f"killed after {after} runs")

    return callback


# --------------------------------------------------------------------------
# the core contract: warm runs execute nothing, byte-identically
# --------------------------------------------------------------------------

class TestWarmReplay:
    def test_warm_run_executes_nothing_and_matches(
        self, tmp_path, monkeypatch, counted_runs,
    ):
        cache = tmp_path / "cache"
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(cache))
        run_case_study("pos", str(tmp_path / "cold"), **SWEEP)
        assert sorted(counted_runs) == [0, 1, 2, 3]
        counted_runs.clear()
        handle = run_case_study("pos", str(tmp_path / "warm"), **SWEEP)
        assert counted_runs == []  # zero simulator runs executed
        assert handle.completed_runs == 4
        assert tree(tmp_path / "warm") == tree(tmp_path / "cold")

    def test_cache_evidence_sidecar(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(cache))
        run_case_study("pos", str(tmp_path / "cold"), **SWEEP)
        cold = cache_events(tmp_path / "cold")
        assert [e["event"] for e in cold if e["event"] == "cache.miss"]
        assert [e["event"] for e in cold if e["event"] == "cache.store"]
        run_case_study("pos", str(tmp_path / "warm"), **SWEEP)
        warm = cache_events(tmp_path / "warm")
        assert [e["event"] for e in warm] == ["cache.hit"] * 4

    def test_deterministic_artifacts_never_mention_the_cache(
        self, tmp_path, monkeypatch,
    ):
        # The byte-identity contract hinges on this: controller.log,
        # trace.jsonl and telemetry.json must be identical whether the
        # run executed or replayed, so no cache marker may leak there.
        cache = tmp_path / "cache"
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(cache))
        run_case_study("pos", str(tmp_path / "cold"), **SWEEP)
        monkeypatch.delenv("POS_RUN_CACHE_DIR")
        run_case_study("pos", str(tmp_path / "off"), **SWEEP)
        assert tree(tmp_path / "cold") == tree(tmp_path / "off")
        assert cache_events(tmp_path / "off") == []

    def test_warm_parallel_jobs_matches_cold_serial(
        self, tmp_path, monkeypatch, counted_runs,
    ):
        cache = tmp_path / "cache"
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(cache))
        run_case_study("pos", str(tmp_path / "cold"), jobs=1, **SWEEP)
        counted_runs.clear()
        handle = run_case_study("pos", str(tmp_path / "warm"), jobs=2, **SWEEP)
        assert counted_runs == []  # hits never reach a worker process
        assert handle.completed_runs == 4
        assert tree(tmp_path / "warm") == tree(tmp_path / "cold")

    def test_warm_distributed_agents_matches_cold_serial(
        self, tmp_path, monkeypatch, counted_runs,
    ):
        cache = tmp_path / "cache"
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(cache))
        run_case_study("vpos", str(tmp_path / "cold"), **SWEEP)
        counted_runs.clear()
        handle = run_case_study(
            "vpos", str(tmp_path / "warm"), agents=2, **SWEEP
        )
        assert counted_runs == []  # hits never reach an agent
        assert handle.completed_runs == 4
        assert tree(tmp_path / "warm") == tree(tmp_path / "cold")

    def test_cold_parallel_fills_cache_for_warm_serial(
        self, tmp_path, monkeypatch, counted_runs,
    ):
        cache = tmp_path / "cache"
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(cache))
        run_case_study("pos", str(tmp_path / "cold"), jobs=2, **SWEEP)
        counted_runs.clear()
        run_case_study("pos", str(tmp_path / "warm"), **SWEEP)
        assert counted_runs == []
        assert tree(tmp_path / "warm") == tree(tmp_path / "cold")


# --------------------------------------------------------------------------
# invalidation: anything that changes the run's inputs must miss
# --------------------------------------------------------------------------

class TestInvalidation:
    def test_kill_switch_disables_cache(
        self, tmp_path, monkeypatch, counted_runs,
    ):
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(tmp_path / "cache"))
        run_case_study("pos", str(tmp_path / "cold"), **SWEEP)
        counted_runs.clear()
        monkeypatch.setenv("POS_RUN_CACHE", "0")
        run_case_study("pos", str(tmp_path / "again"), **SWEEP)
        assert sorted(counted_runs) == [0, 1, 2, 3]  # everything re-ran
        assert cache_events(tmp_path / "again") == []

    def test_different_seed_misses(self, tmp_path, monkeypatch, counted_runs):
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(tmp_path / "cache"))
        run_case_study("pos", str(tmp_path / "cold"), seed=1, **SWEEP)
        counted_runs.clear()
        run_case_study("pos", str(tmp_path / "other"), seed=2, **SWEEP)
        assert sorted(counted_runs) == [0, 1, 2, 3]

    def test_different_assignment_misses(
        self, tmp_path, monkeypatch, counted_runs,
    ):
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(tmp_path / "cache"))
        kwargs = dict(SWEEP)
        run_case_study("pos", str(tmp_path / "cold"), **kwargs)
        counted_runs.clear()
        kwargs["rates"] = [150_000, 250_000]
        run_case_study("pos", str(tmp_path / "other"), **kwargs)
        assert sorted(counted_runs) == [0, 1, 2, 3]

    def test_fault_plan_disables_cache(
        self, tmp_path, monkeypatch, counted_runs,
    ):
        from repro.faults.plan import FaultPlan, FaultSpec

        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(tmp_path / "cache"))
        run_case_study("pos", str(tmp_path / "cold"), **SWEEP)
        counted_runs.clear()
        plan = FaultPlan([FaultSpec(kind="script", runs=(1,), times=1)], seed=5)
        run_case_study(
            "pos", str(tmp_path / "faulty"), fault_plan=plan,
            on_error="recover", **SWEEP,
        )
        assert sorted(set(counted_runs)) == [0, 1, 2, 3]
        assert cache_events(tmp_path / "faulty") == []

    def test_corrupt_entry_degrades_to_miss(
        self, tmp_path, monkeypatch, counted_runs,
    ):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(cache_dir))
        run_case_study("pos", str(tmp_path / "cold"), **SWEEP)
        for entry in RunCache(str(cache_dir)).entries():
            with open(os.path.join(entry.path, "outcome.pkl"), "wb") as f:
                f.write(b"garbage")
        counted_runs.clear()
        run_case_study("pos", str(tmp_path / "warm"), **SWEEP)
        assert sorted(counted_runs) == [0, 1, 2, 3]
        assert tree(tmp_path / "warm") == tree(tmp_path / "cold")


# --------------------------------------------------------------------------
# resume interplay: journal adoption beats the cache, cache fills the rest
# --------------------------------------------------------------------------

class TestResumeInterplay:
    def test_crash_resume_fills_cache_then_warm_replays(
        self, tmp_path, monkeypatch, counted_runs,
    ):
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(tmp_path / "cache"))
        with pytest.raises(CrashRequested):
            run_case_study(
                "pos", str(tmp_path / "crashed"),
                progress=crashing_progress(2), **SWEEP,
            )
        executed_before_crash = list(counted_runs)
        result_dir = find_result_dir(str(tmp_path / "crashed"))
        counted_runs.clear()
        handle = run_case_study(
            "pos", str(tmp_path / "crashed"), resume_path=result_dir, **SWEEP,
        )
        assert handle.completed_runs == 4
        assert handle.resumed_runs == len(executed_before_crash)
        # Journal adoption beats the cache: resumed runs are not even
        # probed, only the remainder shows up as cache traffic.
        resumed = set(executed_before_crash)
        remainder = {0, 1, 2, 3} - resumed
        assert set(counted_runs) == remainder
        events = cache_events(tmp_path / "crashed")
        assert not any(e["event"] == "cache.hit" for e in events)
        stores = [e["run"] for e in events if e["event"] == "cache.store"]
        assert sorted(stores) == [0, 1, 2, 3]  # each run stored exactly once
        misses = [e["run"] for e in events if e["event"] == "cache.miss"]
        # First execution probed all four; the resume re-probed only the
        # remainder (journal-adopted runs never reach the cache again).
        assert sorted(misses) == sorted([0, 1, 2, 3] + sorted(remainder))
        # A fresh execution is now fully warm: zero runs executed.
        counted_runs.clear()
        run_case_study("pos", str(tmp_path / "warm"), **SWEEP)
        assert counted_runs == []
        warm = cache_events(tmp_path / "warm")
        assert [e["event"] for e in warm] == ["cache.hit"] * 4


# --------------------------------------------------------------------------
# the store itself
# --------------------------------------------------------------------------

def _ok_outcome(index=0, loop=None):
    return RunOutcome(
        index=index, loop_instance=loop or {"pkt_rate": 1},
        attempts=[AttemptResult(ok=True)],
    )


class TestRunCacheUnit:
    def test_key_is_canonical_and_scope_sensitive(self, tmp_path):
        a = RunCache(str(tmp_path), scope={"seed": 1})
        b = RunCache(str(tmp_path), scope={"seed": 1})
        c = RunCache(str(tmp_path), scope={"seed": 2})
        describe = {"roles": ["x"], "name": "exp"}
        assert a.key(describe, 0, {"r": 1}) == b.key(describe, 0, {"r": 1})
        assert a.key(describe, 0, {"r": 1}) != c.key(describe, 0, {"r": 1})
        assert a.key(describe, 0, {"r": 1}) != a.key(describe, 1, {"r": 1})
        assert a.key(describe, 0, {"r": 1}) != a.key(describe, 0, {"r": 2})

    def test_store_lookup_roundtrip(self, tmp_path):
        cache = RunCache(str(tmp_path))
        key = cache.key({"name": "e"}, 3, {"r": 5})
        outcome = _ok_outcome(3, {"r": 5})
        assert cache.store(key, outcome)
        loaded = cache.lookup(key)
        assert loaded is not None
        assert loaded.index == 3
        assert loaded.loop_instance == {"r": 5}
        assert not cache.store(key, outcome)  # idempotent

    def test_only_boring_outcomes_are_storable(self, tmp_path):
        cache = RunCache(str(tmp_path))
        failed = RunOutcome(0, {}, attempts=[AttemptResult(ok=False)])
        retried = RunOutcome(
            0, {}, attempts=[AttemptResult(ok=False), AttemptResult(ok=True)]
        )
        faulted = RunOutcome(
            0, {}, attempts=[AttemptResult(ok=True)], fault_events=["boom"]
        )
        for outcome in (failed, retried, faulted):
            assert not cache.storable(outcome)
            assert not cache.store(cache.key({}, 0, {}), outcome)
        assert cache.storable(_ok_outcome())

    def test_verify_flags_corruption(self, tmp_path):
        cache = RunCache(str(tmp_path))
        good = cache.key({}, 0, {"r": 1})
        bad = cache.key({}, 1, {"r": 2})
        cache.store(good, _ok_outcome(0))
        cache.store(bad, _ok_outcome(1))
        with open(os.path.join(cache._entry_dir(bad), "outcome.pkl"), "ab") as f:
            f.write(b"tail")
        report = cache.verify()
        assert report["ok"] == [good] or report["ok"] == sorted([good])
        assert report["corrupt"] == [bad]
        assert cache.lookup(bad) is None  # corrupt = miss, never garbage

    def test_gc_removes_corrupt_and_stale_epochs(self, tmp_path):
        cache = RunCache(str(tmp_path))
        keep = cache.key({}, 0, {"r": 1})
        cache.store(keep, _ok_outcome(0))
        stale = RunCache(str(tmp_path), scope={"code_epoch": CODE_EPOCH - 1})
        old = stale.key({}, 1, {"r": 2})
        stale.store(old, _ok_outcome(1))
        result = cache.gc()
        assert keep in result["kept"]
        assert old in result["removed"]
        assert cache.lookup(old) is None

    def test_unpicklable_blob_is_a_miss(self, tmp_path):
        cache = RunCache(str(tmp_path))
        key = cache.key({}, 0, {})
        cache.store(key, _ok_outcome())
        # Replace the payload with a hash-consistent but unpicklable
        # blob: rewrite both the outcome and its manifest hash.
        import hashlib

        blob = b"\x80\x05not-a-pickle"
        entry_dir = cache._entry_dir(key)
        with open(os.path.join(entry_dir, "outcome.pkl"), "wb") as f:
            f.write(blob)
        manifest_path = os.path.join(entry_dir, "manifest.json")
        with open(manifest_path) as f:
            manifest = json.load(f)
        manifest["outcome_sha256"] = hashlib.sha256(blob).hexdigest()
        with open(manifest_path, "w") as f:
            json.dump(manifest, f)
        assert cache.lookup(key) is None


# --------------------------------------------------------------------------
# CLI and report surfaces
# --------------------------------------------------------------------------

class TestSurfaces:
    def test_cli_cache_ls_verify_gc(self, tmp_path, capsys, monkeypatch):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(cache_dir))
        run_case_study("pos", str(tmp_path / "cold"), **SWEEP)
        assert cli_main(["cache", "ls", "--cache", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 cached run(s)" in out
        assert "pkt_rate=" in out
        assert cli_main(["cache", "verify", "--cache", str(cache_dir)]) == 0
        assert "4 ok, 0 corrupt" in capsys.readouterr().out
        # Corrupt one entry: verify fails, gc sweeps it.
        entry = next(iter(RunCache(str(cache_dir)).entries()))
        with open(os.path.join(entry.path, "outcome.pkl"), "wb") as f:
            f.write(b"junk")
        assert cli_main(["cache", "verify", "--cache", str(cache_dir)]) == 1
        assert cli_main(["cache", "gc", "--cache", str(cache_dir)]) == 0
        assert "1 removed, 3 kept" in capsys.readouterr().out

    def test_report_shows_cache_provenance(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(tmp_path / "cache"))
        run_case_study("pos", str(tmp_path / "cold"), **SWEEP)
        run_case_study("pos", str(tmp_path / "warm"), **SWEEP)
        warm_dir = find_result_dir(str(tmp_path / "warm"))
        assert cli_main(["report", "--results", warm_dir]) == 0
        out = capsys.readouterr().out
        assert "run cache: 4 hit(s), 0 miss(es)" in out
        assert "cache.hit" in out
        cold_dir = find_result_dir(str(tmp_path / "cold"))
        assert cli_main(["report", "--results", cold_dir]) == 0
        out = capsys.readouterr().out
        assert "4 miss(es)" in out and "4 store(s)" in out

    def test_cache_sidecar_identical_under_jobs_and_agents(
        self, tmp_path, capsys, monkeypatch,
    ):
        # The evidence sidecar must tell the same hit/miss story no
        # matter which execution plane served the sweep: warm serial,
        # warm --jobs N and warm --agents N probe the same keys in the
        # same run order, and `pos report` renders the section for all.
        monkeypatch.setenv("POS_RUN_CACHE_DIR", str(tmp_path / "cache"))

        def hit_miss(root):
            events = cache_events(root)
            return (
                sorted(e["run"] for e in events if e["event"] == "cache.hit"),
                sorted(e["run"] for e in events if e["event"] == "cache.miss"),
            )

        run_case_study("pos", str(tmp_path / "cold"), **SWEEP)
        run_case_study("pos", str(tmp_path / "warm-serial"), **SWEEP)
        run_case_study("pos", str(tmp_path / "warm-jobs"), jobs=2, **SWEEP)
        assert hit_miss(tmp_path / "warm-jobs") \
            == hit_miss(tmp_path / "warm-serial") == ([0, 1, 2, 3], [])

        run_case_study("vpos", str(tmp_path / "vcold"), **SWEEP)
        run_case_study("vpos", str(tmp_path / "vwarm-serial"), **SWEEP)
        run_case_study(
            "vpos", str(tmp_path / "vwarm-agents"), agents=2, **SWEEP,
        )
        assert hit_miss(tmp_path / "vwarm-agents") \
            == hit_miss(tmp_path / "vwarm-serial") == ([0, 1, 2, 3], [])

        for warm in ("warm-jobs", "vwarm-agents"):
            warm_dir = find_result_dir(str(tmp_path / warm))
            assert cli_main(["report", "--results", warm_dir]) == 0
            out = capsys.readouterr().out
            assert "run cache: 4 hit(s), 0 miss(es)" in out

    def test_run_cli_cache_flag(self, tmp_path, capsys, counted_runs):
        cache_dir = str(tmp_path / "cache")
        args = [
            "run", "--platform", "pos", "--rates", "100000",
            "--sizes", "64", "--duration", "0.05", "--max-runs", "1",
            "--epoch", "1600000000", "--cache", cache_dir,
        ]
        assert cli_main(args + ["--results", str(tmp_path / "cold")]) == 0
        assert counted_runs == [0]
        counted_runs.clear()
        assert cli_main(args + ["--results", str(tmp_path / "warm")]) == 0
        assert counted_runs == []
        capsys.readouterr()
        assert tree(tmp_path / "warm") == tree(tmp_path / "cold")
