"""Tests for variable scopes, loop expansion, and substitution."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import yamlite
from repro.core.errors import VariableError
from repro.core.variables import (
    Variables,
    expand_loop_variables,
    merge,
    substitute,
)


class TestExpandLoopVariables:
    def test_empty_loop_gives_single_empty_run(self):
        assert expand_loop_variables({}) == [{}]

    def test_scalar_counts_as_single_value(self):
        assert expand_loop_variables({"a": 5}) == [{"a": 5}]

    def test_single_list(self):
        assert expand_loop_variables({"a": [1, 2]}) == [{"a": 1}, {"a": 2}]

    def test_cross_product_order_last_varies_fastest(self):
        runs = expand_loop_variables({"size": [64, 1500], "rate": [1, 2]})
        assert runs == [
            {"size": 64, "rate": 1},
            {"size": 64, "rate": 2},
            {"size": 1500, "rate": 1},
            {"size": 1500, "rate": 2},
        ]

    def test_paper_case_study_is_60_runs(self):
        """Appendix A: 2 packet sizes x 30 rates = 60 measurements."""
        rates = [10_000 * step for step in range(1, 31)]
        runs = expand_loop_variables({"pkt_sz": [64, 1500], "pkt_rate": rates})
        assert len(runs) == 60

    def test_mixed_scalars_and_lists(self):
        runs = expand_loop_variables({"a": [1, 2], "b": "x", "c": [True, False]})
        assert len(runs) == 4
        assert all(run["b"] == "x" for run in runs)

    def test_empty_list_rejected(self):
        with pytest.raises(VariableError, match="empty list"):
            expand_loop_variables({"a": []})


@given(
    lengths=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4)
)
@settings(max_examples=60, deadline=None)
def test_cross_product_count_and_coverage_property(lengths):
    """The expansion has exactly prod(len) runs, all distinct, covering
    every combination."""
    loop = {f"v{i}": list(range(length)) for i, length in enumerate(lengths)}
    runs = expand_loop_variables(loop)
    expected = math.prod(lengths)
    assert len(runs) == expected
    as_tuples = {tuple(run[key] for key in loop) for run in runs}
    assert len(as_tuples) == expected  # all distinct
    for key, values in loop.items():
        assert {run[key] for run in runs} == set(values)  # full coverage


class TestSubstitute:
    def test_simple_name(self):
        assert substitute("ip link set $PORT up", {"PORT": "eno1"}) == (
            "ip link set eno1 up"
        )

    def test_braced_name(self):
        assert substitute("${A}B", {"A": "x"}) == "xB"

    def test_numeric_value_stringified(self):
        assert substitute("rate=$R", {"R": 10000}) == "rate=10000"

    def test_dollar_escape(self):
        assert substitute("cost: $$5", {}) == "cost: $5"

    def test_adjacent_text(self):
        assert substitute("$A$B", {"A": "1", "B": "2"}) == "12"

    def test_undefined_variable_raises(self):
        with pytest.raises(VariableError, match=r"\$MISSING"):
            substitute("use $MISSING", {})

    def test_lone_dollar_passes_through(self):
        assert substitute("a $ b", {}) == "a $ b"


class TestVariables:
    def test_for_host_precedence_global_local_loop(self):
        variables = Variables(
            global_vars={"a": 1, "b": 1, "c": 1},
            local_vars={"dut": {"b": 2, "c": 2}},
            loop_vars={},
        )
        merged = variables.for_host("dut", {"c": 3})
        assert merged == {"a": 1, "b": 2, "c": 3}

    def test_unknown_host_gets_globals_only(self):
        variables = Variables(global_vars={"a": 1}, local_vars={"dut": {"b": 2}})
        assert variables.for_host("loadgen") == {"a": 1}

    def test_run_count_matches_runs(self):
        variables = Variables(loop_vars={"x": [1, 2, 3], "y": [4, 5]})
        assert variables.run_count() == 6
        assert len(variables.runs()) == 6

    def test_non_mapping_rejected(self):
        with pytest.raises(VariableError, match="mapping"):
            Variables(global_vars=[1, 2])  # type: ignore[arg-type]

    def test_non_string_keys_rejected(self):
        with pytest.raises(VariableError, match="strings"):
            Variables(global_vars={1: "x"})  # type: ignore[dict-item]

    def test_from_files(self, tmp_path):
        yamlite.dump_file({"duration": 0.5}, tmp_path / "global.yml")
        yamlite.dump_file({"PORT": "eno1"}, tmp_path / "dut.yml")
        yamlite.dump_file(
            {"pkt_sz": [64, 1500], "pkt_rate": [10000, 20000]},
            tmp_path / "loop.yml",
        )
        variables = Variables.from_files(
            global_path=tmp_path / "global.yml",
            local_paths={"dut": tmp_path / "dut.yml"},
            loop_path=tmp_path / "loop.yml",
        )
        assert variables.for_host("dut")["PORT"] == "eno1"
        assert variables.run_count() == 4

    def test_from_files_rejects_list_document(self, tmp_path):
        (tmp_path / "bad.yml").write_text("- 1\n- 2\n")
        with pytest.raises(VariableError, match="mapping"):
            Variables.from_files(global_path=tmp_path / "bad.yml")

    def test_describe_round_trips_through_yaml(self):
        variables = Variables(
            global_vars={"duration": 0.5},
            local_vars={"dut": {"PORT": "eno1"}},
            loop_vars={"pkt_sz": [64, 1500]},
        )
        described = variables.describe()
        assert yamlite.loads(yamlite.dumps(described)) == described


def test_merge_later_wins():
    assert merge({"a": 1}, {"a": 2, "b": 3}, {"b": 4}) == {"a": 2, "b": 4}
