"""Unit and property tests for the YAML-subset parser/emitter."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import yamlite
from repro.core.errors import YamlError


class TestScalars:
    def test_integer(self):
        assert yamlite.loads("value: 42") == {"value": 42}

    def test_negative_integer(self):
        assert yamlite.loads("value: -7") == {"value": -7}

    def test_float(self):
        assert yamlite.loads("value: 3.25") == {"value": 3.25}

    def test_scientific_float(self):
        assert yamlite.loads("value: 1.5e3") == {"value": 1500.0}

    def test_booleans(self):
        assert yamlite.loads("a: true\nb: false") == {"a": True, "b": False}

    def test_yes_no_booleans(self):
        assert yamlite.loads("a: yes\nb: no") == {"a": True, "b": False}

    def test_null_spellings(self):
        assert yamlite.loads("a: null\nb: ~\nc:") == {"a": None, "b": None, "c": None}

    def test_plain_string(self):
        assert yamlite.loads("name: eno1") == {"name": "eno1"}

    def test_double_quoted_string_with_escapes(self):
        assert yamlite.loads(r'text: "line\nbreak"') == {"text": "line\nbreak"}

    def test_single_quoted_string(self):
        assert yamlite.loads("text: 'it''s'") == {"text": "it's"}

    def test_quoted_number_stays_string(self):
        assert yamlite.loads('version: "4.19"') == {"version": "4.19"}

    def test_bare_scalar_document(self):
        assert yamlite.loads("42") == 42

    def test_empty_document_is_none(self):
        assert yamlite.loads("") is None

    def test_comment_only_document_is_none(self):
        assert yamlite.loads("# nothing here\n") is None


class TestCollections:
    def test_block_sequence(self):
        assert yamlite.loads("- 1\n- 2\n- 3") == [1, 2, 3]

    def test_flow_sequence(self):
        assert yamlite.loads("sizes: [64, 1500]") == {"sizes": [64, 1500]}

    def test_flow_mapping(self):
        assert yamlite.loads("point: {x: 1, y: 2}") == {"point": {"x": 1, "y": 2}}

    def test_nested_mapping(self):
        text = "outer:\n  inner:\n    leaf: 1"
        assert yamlite.loads(text) == {"outer": {"inner": {"leaf": 1}}}

    def test_sequence_of_mappings(self):
        text = "- name: a\n  value: 1\n- name: b\n  value: 2"
        assert yamlite.loads(text) == [
            {"name": "a", "value": 1},
            {"name": "b", "value": 2},
        ]

    def test_mapping_with_sequence_value(self):
        text = "rates:\n  - 10\n  - 20"
        assert yamlite.loads(text) == {"rates": [10, 20]}

    def test_empty_flow_collections(self):
        assert yamlite.loads("a: []\nb: {}") == {"a": [], "b": {}}

    def test_nested_flow(self):
        assert yamlite.loads("m: [[1, 2], [3]]") == {"m": [[1, 2], [3]]}

    def test_comments_are_stripped(self):
        text = "# header\nkey: value  # trailing\n"
        assert yamlite.loads(text) == {"key": "value"}

    def test_hash_inside_quotes_kept(self):
        assert yamlite.loads('key: "a # b"') == {"key": "a # b"}

    def test_dash_item_with_nested_block(self):
        text = "-\n  a: 1\n- 2"
        assert yamlite.loads(text) == [{"a": 1}, 2]


class TestErrors:
    def test_tab_indentation_rejected(self):
        with pytest.raises(YamlError, match="tabs"):
            yamlite.loads("key:\n\tvalue: 1")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(YamlError, match="duplicate"):
            yamlite.loads("a: 1\na: 2")

    def test_duplicate_flow_keys_rejected(self):
        with pytest.raises(YamlError, match="duplicate"):
            yamlite.loads("m: {a: 1, a: 2}")

    def test_unterminated_string(self):
        with pytest.raises(YamlError, match="unterminated"):
            yamlite.loads('a: "oops')

    def test_unbalanced_brackets(self):
        with pytest.raises(YamlError, match="unbalanced|malformed"):
            yamlite.loads("a: [1, 2")

    def test_bad_indentation(self):
        with pytest.raises(YamlError, match="indentation"):
            yamlite.loads("a: 1\n   b: 2")

    def test_missing_colon(self):
        with pytest.raises(YamlError, match="key: value"):
            yamlite.loads("a: 1\njust-a-word-after-mapping: ok\nbroken line here")

    def test_unknown_escape(self):
        with pytest.raises(YamlError, match="escape"):
            yamlite.loads(r'a: "\q"')

    def test_non_string_input(self):
        with pytest.raises(YamlError):
            yamlite.loads(42)  # type: ignore[arg-type]


class TestDump:
    def test_dump_simple_mapping(self):
        assert yamlite.dumps({"a": 1}) == "a: 1\n"

    def test_dump_nested(self):
        text = yamlite.dumps({"outer": {"inner": [1, 2]}})
        assert yamlite.loads(text) == {"outer": {"inner": [1, 2]}}

    def test_dump_quotes_ambiguous_strings(self):
        text = yamlite.dumps({"v": "true"})
        assert yamlite.loads(text) == {"v": "true"}

    def test_dump_empty_string(self):
        assert yamlite.loads(yamlite.dumps({"v": ""})) == {"v": ""}

    def test_dump_rejects_unsupported_types(self):
        with pytest.raises(YamlError):
            yamlite.dumps({"v": object()})

    def test_file_round_trip(self, tmp_path):
        data = {"loop": {"pkt_sz": [64, 1500], "pkt_rate": [10000, 20000]}}
        path = tmp_path / "loop-variables.yml"
        yamlite.dump_file(data, path)
        assert yamlite.load_file(path) == data


_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 12), max_value=10 ** 12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(
            blacklist_categories=("Cs", "Cc"), max_codepoint=0x2FF
        ),
        max_size=24,
    ),
)

_data = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=8,
            ),
            children,
            max_size=4,
        ),
    ),
    max_leaves=12,
)


@given(value=_data)
@settings(max_examples=150, deadline=None)
def test_round_trip_property(value):
    """loads(dumps(x)) == x for all supported data."""
    assert yamlite.loads(yamlite.dumps(value)) == value
