"""Parallel cross-product scheduler: determinism, resume, fault plans.

The contract under test is strong: for any ``--jobs N`` the result tree
is *byte-identical* to the sequential execution — same run directories,
same file contents, same journal lines in the same order — because the
workers replay the exact per-run workflow primitives the sequential
controller uses and the parent merges outcomes in cross-product order.
"""

from __future__ import annotations

import os

import pytest

from repro.casestudy import build_case_study_experiment, build_environment, run_case_study
from repro.core.errors import ExperimentError
from repro.core.journal import JOURNAL_NAME
from repro.core.scheduler import (
    resolve_jobs,
    shard_runs,
    validate_parallel_fault_plan,
)
from repro.faults.plan import FaultPlan, FaultSpec

CLOCK = lambda: 1_600_000_000.0  # noqa: E731 - fixed wall clock => fixed tree paths


class CrashRequested(RuntimeError):
    """Simulated controller death: NOT a PosError, so nothing handles it."""


def crashing_progress(after):
    """A progress callback that kills the controller after ``after`` runs."""

    def callback(done, total):
        if done >= after:
            raise CrashRequested(f"killed after {after} runs")

    return callback


def tree(root):
    """Relative path -> file bytes for every file under ``root``."""
    contents = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                contents[os.path.relpath(path, root)] = handle.read()
    return contents


def run_dir_files(contents):
    """Only the per-run artifacts (run-NNN*/...) of a tree mapping."""
    return {
        rel: data
        for rel, data in contents.items()
        if any(part.startswith("run-") for part in rel.split(os.sep)[:-1])
    }


def journal_entries(contents):
    import json

    for rel, data in contents.items():
        if os.path.basename(rel) == JOURNAL_NAME:
            return [
                json.loads(line)
                for line in data.decode().splitlines()
                if line.strip()
            ]
    raise AssertionError("no journal in result tree")


def find_result_dir(root):
    for dirpath, _, filenames in os.walk(root):
        if JOURNAL_NAME in filenames:
            return dirpath
    raise AssertionError(f"no journal found under {root}")


# --------------------------------------------------------------------------
# pure helpers
# --------------------------------------------------------------------------


class TestShardRuns:
    def test_round_robin(self):
        assert shard_runs([0, 1, 2, 3, 4], 2) == [[0, 2, 4], [1, 3]]

    def test_more_jobs_than_runs_drops_empty_shards(self):
        assert shard_runs([0, 1], 4) == [[0], [1]]

    def test_single_job_is_one_shard(self):
        assert shard_runs([3, 5, 7], 1) == [[3, 5, 7]]


class TestResolveJobs:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("POS_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("POS_JOBS", "8")
        assert resolve_jobs(2) == 2

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("POS_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ExperimentError):
            resolve_jobs(0)
        monkeypatch.setenv("POS_JOBS", "banana")
        with pytest.raises(ExperimentError):
            resolve_jobs(None)


class TestFaultPlanValidation:
    def test_run_scoped_deterministic_plan_accepted(self):
        plan = FaultPlan([
            FaultSpec(kind="script", runs=(0, 1), times=2),
            FaultSpec(kind="power", node="tartu", runs=(2,), times=None),
        ])
        validate_parallel_fault_plan(plan)  # must not raise

    def test_wildcard_runs_rejected(self):
        plan = FaultPlan([FaultSpec(kind="script")])
        with pytest.raises(ExperimentError):
            validate_parallel_fault_plan(plan)

    def test_probabilistic_spec_rejected(self):
        plan = FaultPlan([
            FaultSpec(kind="timeout", runs=(0,), probability=0.5, times=None)
        ])
        with pytest.raises(ExperimentError):
            validate_parallel_fault_plan(plan)

    def test_truncating_budget_rejected(self):
        # times=1 over two pinned runs: which run the fault strikes would
        # depend on execution order, which the shards do not share.
        plan = FaultPlan([FaultSpec(kind="script", runs=(0, 1), times=1)])
        with pytest.raises(ExperimentError):
            validate_parallel_fault_plan(plan)


# --------------------------------------------------------------------------
# controller-level guard rails
# --------------------------------------------------------------------------


class TestParallelGuards:
    def test_jobs_require_worker_environment(self, tmp_path):
        env = build_environment("pos", str(tmp_path), clock=CLOCK)
        experiment = build_case_study_experiment(
            "pos", rates=[200_000], sizes=(64,), duration_s=0.05
        )
        with pytest.raises(ExperimentError, match="worker"):
            env.controller.run(
                experiment, setup_context_extra={"setup": env.setup}, jobs=2
            )

    def test_on_error_continue_incompatible_with_jobs(self, tmp_path):
        with pytest.raises(ExperimentError, match="continue"):
            run_case_study(
                "pos", str(tmp_path), rates=[200_000], sizes=(64,),
                duration_s=0.05, clock=CLOCK, on_error="continue", jobs=2,
            )

    def test_unpinned_fault_plan_incompatible_with_jobs(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind="transport", node="riga", times=None)])
        with pytest.raises(ExperimentError, match="fault"):
            run_case_study(
                "pos", str(tmp_path), rates=[200_000], sizes=(64,),
                duration_s=0.05, clock=CLOCK, fault_plan=plan, jobs=2,
            )


# --------------------------------------------------------------------------
# byte-identical result trees
# --------------------------------------------------------------------------


class TestByteIdentity:
    def run_tree(self, root, platform, jobs, **kwargs):
        handle = run_case_study(
            platform,
            str(root),
            rates=kwargs.pop("rates", [200_000, 400_000]),
            sizes=kwargs.pop("sizes", (64, 1500)),
            duration_s=kwargs.pop("duration_s", 0.05),
            interval_s=0.02,
            clock=CLOCK,
            jobs=jobs,
            **kwargs,
        )
        return handle, tree(str(root))

    def test_pos_tree_identical_jobs_1_vs_4(self, tmp_path):
        handle_seq, tree_seq = self.run_tree(tmp_path / "seq", "pos", jobs=1)
        handle_par, tree_par = self.run_tree(tmp_path / "par", "pos", jobs=4)
        assert handle_seq.completed_runs == handle_par.completed_runs == 4
        assert tree_par == tree_seq

    def test_vpos_tree_identical_jobs_1_vs_2(self, tmp_path):
        # The virtualized platform exercises the stochastic components
        # (lognormal service times, preemption timer, poisson pacing):
        # identity holds only if per-run reseeding and epoch alignment
        # actually isolate runs from their schedule.
        __, tree_seq = self.run_tree(
            tmp_path / "seq", "vpos", jobs=1,
            rates=[100_000], sizes=(64, 1500), seed=7,
        )
        __, tree_par = self.run_tree(
            tmp_path / "par", "vpos", jobs=2,
            rates=[100_000], sizes=(64, 1500), seed=7,
        )
        assert tree_par == tree_seq

    def test_journal_is_ordered_by_run_index(self, tmp_path):
        __, contents = self.run_tree(tmp_path, "pos", jobs=4)
        indices = [
            entry["index"]
            for entry in journal_entries(contents)
            if entry.get("event") == "run"
        ]
        assert indices == sorted(indices) == [0, 1, 2, 3]


# --------------------------------------------------------------------------
# fault plans under parallel execution
# --------------------------------------------------------------------------


class TestParallelFaults:
    PLAN_KWARGS = dict(
        rates=[200_000, 400_000],
        sizes=(64,),
        duration_s=0.05,
        interval_s=0.02,
        clock=CLOCK,
        on_error="recover",
        # Shell-style measurement scripts check exit codes, so the
        # injected non-zero exit actually fails the run.
        script_style="shell",
    )

    @staticmethod
    def plan():
        # Fresh plan per execution: FaultPlan carries firing budgets.
        return FaultPlan(
            [FaultSpec(kind="script", runs=(1,), times=1)], seed=11
        )

    def test_fault_run_identical_under_job_counts(self, tmp_path):
        handle_seq = run_case_study(
            "pos", str(tmp_path / "seq"), fault_plan=self.plan(),
            jobs=1, **self.PLAN_KWARGS,
        )
        handle_par = run_case_study(
            "pos", str(tmp_path / "par"), fault_plan=self.plan(),
            jobs=2, **self.PLAN_KWARGS,
        )
        # The injected script fault fails run 1 once; recovery replays it.
        for handle in (handle_seq, handle_par):
            assert handle.completed_runs == 2
            assert handle.failed_runs == 0
            assert [record.retried for record in handle.runs] == [False, True]
        assert tree(str(tmp_path / "par")) == tree(str(tmp_path / "seq"))


# --------------------------------------------------------------------------
# resume of a partially-completed parallel sweep
# --------------------------------------------------------------------------


class TestParallelResume:
    KWARGS = dict(
        rates=[100_000, 200_000],
        sizes=(64, 1500),
        duration_s=0.05,
        interval_s=0.02,
        clock=CLOCK,
    )

    def test_crash_then_resume_matches_clean_run(self, tmp_path):
        # Reference: one uninterrupted sequential execution.
        run_case_study("pos", str(tmp_path / "clean"), jobs=1, **self.KWARGS)
        clean = tree(str(tmp_path / "clean"))

        # Crash a 2-worker execution after two runs were journalled.
        with pytest.raises(CrashRequested):
            run_case_study(
                "pos", str(tmp_path / "crashed"), jobs=2,
                progress=crashing_progress(2), **self.KWARGS,
            )
        result_dir = find_result_dir(str(tmp_path / "crashed"))
        partial = journal_entries(tree(str(tmp_path / "crashed")))
        done = [e["index"] for e in partial if e.get("event") == "run"]
        assert done == [0, 1]

        # Resume in parallel: adopted runs stay untouched, the rest
        # re-execute, and the per-run artifacts match the clean run.
        handle = run_case_study(
            "pos", str(tmp_path / "crashed"), jobs=2,
            resume_path=result_dir, **self.KWARGS,
        )
        assert handle.completed_runs == 4
        assert handle.resumed_runs == 2
        resumed = tree(str(tmp_path / "crashed"))
        assert run_dir_files(resumed) == run_dir_files(clean)
        indices = [
            entry["index"]
            for entry in journal_entries(resumed)
            if entry.get("event") == "run"
        ]
        assert indices == [0, 1, 2, 3]

    def test_resume_sequentially_after_parallel_crash(self, tmp_path):
        run_case_study("pos", str(tmp_path / "clean"), jobs=1, **self.KWARGS)
        clean = tree(str(tmp_path / "clean"))
        with pytest.raises(CrashRequested):
            run_case_study(
                "pos", str(tmp_path / "crashed"), jobs=4,
                progress=crashing_progress(1), **self.KWARGS,
            )
        result_dir = find_result_dir(str(tmp_path / "crashed"))
        handle = run_case_study(
            "pos", str(tmp_path / "crashed"), jobs=1,
            resume_path=result_dir, **self.KWARGS,
        )
        assert handle.completed_runs == 4
        resumed = tree(str(tmp_path / "crashed"))
        assert run_dir_files(resumed) == run_dir_files(clean)


# --------------------------------------------------------------------------
# worker crashes: BrokenProcessPool is a retryable infrastructure fault
# --------------------------------------------------------------------------


def _suicidal_worker_world(platform, seed, fault_plan, sentinel):
    """A worker world factory whose first-ever call SIGKILLs the worker.

    The sentinel file marks the first attempt; the retried pass finds it
    and builds a perfectly normal world.  Module-level so the WorkerEnv
    recipe pickles by reference into the pool workers.
    """
    import signal

    from repro.casestudy.experiment import _build_worker_world

    if sentinel is None:
        os.kill(os.getpid(), signal.SIGKILL)  # persistently dying fleet
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write("first worker died here\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return _build_worker_world(platform, seed, fault_plan)


class TestWorkerCrash:
    """A SIGKILLed pool worker is infrastructure failure, not run
    failure: the pass is retried under the recovery policy and the
    merged tree stays byte-identical to a clean run."""

    KWARGS = dict(
        rates=[200_000, 400_000], sizes=(64, 1500),
        duration_s=0.05, interval_s=0.02,
    )

    def run_with_env(self, root, worker_env, jobs):
        env = build_environment("pos", str(root), clock=CLOCK)
        experiment = build_case_study_experiment(
            platform="pos",
            rates=self.KWARGS["rates"],
            sizes=self.KWARGS["sizes"],
            duration_s=self.KWARGS["duration_s"],
            interval_s=self.KWARGS["interval_s"],
        )
        try:
            return env.controller.run(
                experiment,
                setup_context_extra={"setup": env.setup},
                jobs=jobs,
                worker_env=worker_env,
            )
        finally:
            if env.setup.hypervisor is not None:
                env.setup.hypervisor.stop()

    def test_worker_sigkill_is_retried_and_tree_is_identical(self, tmp_path):
        from repro.core.scheduler import WorkerEnv

        run_case_study("pos", str(tmp_path / "clean"), jobs=1,
                       clock=CLOCK, **self.KWARGS)
        clean = tree(str(tmp_path / "clean"))

        sentinel = str(tmp_path / "first-attempt-died")
        worker_env = WorkerEnv(
            factory=_suicidal_worker_world,
            kwargs={
                "platform": "pos", "seed": 0, "fault_plan": None,
                "sentinel": sentinel,
            },
        )
        handle = self.run_with_env(tmp_path / "crashy", worker_env, jobs=2)
        assert handle.completed_runs == 4
        assert handle.failed_runs == 0
        assert os.path.exists(sentinel)  # the first pass really died
        crashy = tree(str(tmp_path / "crashy"))
        assert run_dir_files(crashy) == run_dir_files(clean)
        indices = [
            entry["index"]
            for entry in journal_entries(crashy)
            if entry.get("event") == "run"
        ]
        assert indices == [0, 1, 2, 3]

    def test_persistently_dying_workers_exhaust_the_recovery_policy(
        self, tmp_path,
    ):
        from repro.core.errors import NodeError
        from repro.core.scheduler import WorkerEnv

        # sentinel=None: every incarnation dies, every retried pass
        # dies again, and the NodeError escapes once the recovery
        # policy is exhausted.
        worker_env = WorkerEnv(
            factory=_suicidal_worker_world,
            kwargs={
                "platform": "pos", "seed": 0, "fault_plan": None,
                "sentinel": None,
            },
        )
        with pytest.raises(NodeError, match="worker process died"):
            self.run_with_env(tmp_path / "doomed", worker_env, jobs=2)
