"""Fuzz tests for the booking calendar.

Random interleaved sequences of book / cancel / query operations,
checked after every step against a naive model of the live booking set.
The two invariants the campaign scheduler's correctness rests on:

* no two live bookings of the same node ever overlap, and
* intervals are half-open — back-to-back ``[start, mid)`` / ``[mid,
  end)`` bookings never conflict.

Plus the campaign-facing primitives: release hooks fire exactly once
per cancellation, window queries agree with the model, and the per-node
wait-lists are strict FIFOs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import Calendar
from repro.core.errors import CalendarError

NODES = ["n0", "n1", "n2"]
USERS = ["alice", "bob"]

# Small integer grids provoke plenty of collisions and boundary hits.
operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("book"),
            st.sampled_from(NODES),
            st.sampled_from(USERS),
            st.integers(min_value=0, max_value=20),   # start
            st.integers(min_value=1, max_value=10),   # duration
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=30)),
        st.tuples(
            st.just("query"),
            st.sampled_from(NODES),
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=1, max_value=10),
        ),
    ),
    max_size=40,
)


def model_overlaps(live, node, start, end):
    return [
        booking for booking in live
        if booking.node == node and booking.start < end and start < booking.end
    ]


@given(ops=operations)
@settings(max_examples=250, deadline=None)
def test_calendar_book_cancel_query_fuzz(ops):
    calendar = Calendar(clock=lambda: 0.0)
    live = []
    cancelled_hook_calls = []
    calendar.add_release_hook(cancelled_hook_calls.append)
    for op in ops:
        if op[0] == "book":
            __, node, user, start, duration = op
            conflicts = model_overlaps(live, node, start, start + duration)
            if conflicts:
                with pytest.raises(CalendarError):
                    calendar.book(node, user, float(duration),
                                  start=float(start))
            else:
                booking = calendar.book(node, user, float(duration),
                                        start=float(start))
                assert booking.start == start and booking.end == start + duration
                live.append(booking)
        elif op[0] == "cancel":
            if not live:
                continue
            booking = live.pop(op[1] % len(live))
            fired_before = len(cancelled_hook_calls)
            calendar.cancel(booking)
            # The hook fired exactly once, with that booking, after
            # removal (the calendar already shows the slot free).
            assert len(cancelled_hook_calls) == fired_before + 1
            assert cancelled_hook_calls[-1] == booking
            assert calendar.free_during(booking.node, booking.start,
                                        booking.end)
            # A second cancel of the same booking must raise.
            with pytest.raises(CalendarError):
                calendar.cancel(booking)
        else:
            __, node, start, duration = op
            expected = model_overlaps(live, node, start, start + duration)
            found = calendar.window_conflicts(node, float(start),
                                              float(start + duration))
            assert sorted(b.booking_id for b in found) == sorted(
                b.booking_id for b in expected
            )
            assert calendar.free_during(
                node, float(start), float(start + duration)
            ) == (not expected)
            assert calendar.is_free(
                node, float(duration), start=float(start)
            ) == (not expected)
        # Global invariant: no two live bookings of a node overlap.
        for node in NODES:
            bookings = calendar.bookings_for_node(node)
            for earlier, later in zip(bookings, bookings[1:]):
                assert earlier.end <= later.start, (
                    f"overlapping bookings survived on {node}: "
                    f"{earlier} / {later}"
                )


@given(
    start=st.integers(min_value=0, max_value=100),
    first=st.integers(min_value=1, max_value=50),
    second=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=200, deadline=None)
def test_back_to_back_bookings_never_conflict(start, first, second):
    """Half-open intervals: [start, mid) and [mid, end) always coexist."""
    calendar = Calendar(clock=lambda: 0.0)
    calendar.book("n0", "alice", float(first), start=float(start))
    booking = calendar.book(
        "n0", "bob", float(second), start=float(start + first)
    )
    assert booking.start == start + first
    # And in front as well: something ending exactly at `start` fits.
    if start > 0:
        lead = min(start, 7)
        calendar.book("n0", "carol", float(lead), start=float(start - lead))


@given(
    windows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=1, max_value=10),
        ),
        min_size=1,
        max_size=6,
    ),
    duration=st.integers(min_value=1, max_value=10),
    nodes=st.sets(st.sampled_from(NODES), min_size=1, max_size=3),
)
@settings(max_examples=200, deadline=None)
def test_next_common_free_slot_is_free_on_every_node(windows, duration, nodes):
    calendar = Calendar(clock=lambda: 0.0)
    for index, (start, width) in enumerate(windows):
        node = NODES[index % len(NODES)]
        if calendar.is_free(node, float(width), start=float(start)):
            calendar.book(node, "alice", float(width), start=float(start))
    slot = calendar.next_common_free_slot(nodes, float(duration), earliest=0.0)
    for node in nodes:
        assert calendar.free_during(node, slot, slot + duration)
    # Minimality: no earlier event point admits the same window.
    boundaries = sorted(
        {0.0}
        | {b.end for node in nodes for b in calendar.bookings_for_node(node)}
    )
    for candidate in boundaries:
        if candidate >= slot:
            break
        assert not all(
            calendar.free_during(node, candidate, candidate + duration)
            for node in nodes
        )


def test_waitlists_are_fifo_and_pop_empty_raises():
    calendar = Calendar(clock=lambda: 0.0)
    for token in (3, 1, 2):
        calendar.enqueue_waiter("n0", token)
    assert calendar.waiting("n0") == [3, 1, 2]
    assert calendar.pop_waiter("n0") == 3
    assert calendar.waiting("n0") == [1, 2]
    # waiting() returns a copy — mutating it cannot corrupt the queue.
    calendar.waiting("n0").append(99)
    assert calendar.waiting("n0") == [1, 2]
    calendar.pop_waiter("n0"), calendar.pop_waiter("n0")
    with pytest.raises(CalendarError, match="no waiters"):
        calendar.pop_waiter("n0")


def test_release_hooks_can_be_removed():
    calendar = Calendar(clock=lambda: 0.0)
    fired = []
    hook = fired.append
    calendar.add_release_hook(hook)
    booking = calendar.book("n0", "alice", 10.0, start=0.0)
    calendar.remove_release_hook(hook)
    calendar.cancel(booking)
    assert fired == []
    with pytest.raises(CalendarError, match="not registered"):
        calendar.remove_release_hook(hook)
