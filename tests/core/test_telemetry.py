"""Telemetry plane: deterministic spans, metrics, and provenance artifacts.

The plane's contract mirrors the scheduler's: `trace.jsonl`,
`telemetry.json`, and every `run-NNN/telemetry.json` are *byte-identical*
for any ``--jobs N``, for the event path and the batched fast path alike,
and across a crash + ``Controller.resume``.  Wall-clock measurements never
enter those files — they live in the opt-in ``trace-wall.jsonl`` sidecar.
``pos report`` reconstructs per-run attempts/faults/paths from the
published artifacts alone, and the checked-in JSON schemas pin the
artifact format.
"""

from __future__ import annotations

import json
import os
import re

import pytest

from repro.casestudy import run_case_study
from repro.core.journal import JOURNAL_NAME
from repro.faults.plan import FaultPlan, FaultSpec
from repro.publication.bundle import build_manifest
from repro.telemetry.metrics import LATENCY_BUCKETS_S, MetricsRegistry
from repro.telemetry.report import load_report, render_report
from repro.telemetry.schema import SchemaError, validate, validate_experiment
from repro.telemetry.spans import RunTelemetry, strip_wall

CLOCK = lambda: 1_600_000_000.0  # noqa: E731 - fixed wall clock => fixed tree paths

SWEEP = dict(
    rates=[200_000, 400_000],
    sizes=(64, 1500),
    duration_s=0.05,
    interval_s=0.02,
    clock=CLOCK,
)

SMALL = dict(
    rates=[200_000], sizes=(64,), duration_s=0.05, interval_s=0.02, clock=CLOCK
)


class CrashRequested(RuntimeError):
    """Simulated controller death: NOT a PosError, so nothing handles it."""


def crashing_progress(after):
    def callback(done, total):
        if done >= after:
            raise CrashRequested(f"killed after {after} runs")

    return callback


def find_result_dir(root):
    for dirpath, _, filenames in os.walk(root):
        if JOURNAL_NAME in filenames:
            return dirpath
    raise AssertionError(f"no journal found under {root}")


def telemetry_files(root):
    """Relative path -> bytes for every deterministic telemetry artifact."""
    picked = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name not in ("trace.jsonl", "telemetry.json"):
                continue
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                picked[os.path.relpath(path, root)] = handle.read()
    return picked


@pytest.fixture(scope="module")
def result_dir(tmp_path_factory):
    """One completed 4-run pos execution, shared by the read-only tests."""
    root = tmp_path_factory.mktemp("telemetry")
    handle = run_case_study("pos", str(root), jobs=1, **SWEEP)
    assert handle.completed_runs == 4 and handle.failed_runs == 0
    return handle.result_path


# --------------------------------------------------------------------------
# metrics registry
# --------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_sum_and_snapshot_sorts(self):
        registry = MetricsRegistry()
        registry.count("b", 2)
        registry.count("a")
        registry.count("b")
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 1, "b": 3}
        assert list(snapshot["counters"]) == ["a", "b"]

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.gauge("runs.total", 4)
        registry.gauge("runs.total", 8)
        assert registry.snapshot()["gauges"] == {"runs.total": 8}

    def test_histogram_buckets_observations(self):
        registry = MetricsRegistry()
        registry.observe("latency_s", 1e-9)   # below first edge
        registry.observe("latency_s", 1.0)    # above last edge -> overflow
        histogram = registry.snapshot()["histograms"]["latency_s"]
        assert histogram["buckets"] == list(LATENCY_BUCKETS_S)
        assert len(histogram["counts"]) == len(LATENCY_BUCKETS_S) + 1
        assert histogram["total"] == 2
        assert histogram["counts"][0] == 1 and histogram["counts"][-1] == 1

    def test_merge_from_registry_and_snapshot(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.count("x", 1)
        left.observe("h", 0.001)
        right.count("x", 2)
        right.gauge("g", 7)
        right.observe("h", 0.001)
        left.merge(right)
        left.merge(right.snapshot())  # dict form, as shipped in RunOutcome
        snapshot = left.snapshot()
        assert snapshot["counters"]["x"] == 5
        assert snapshot["gauges"]["g"] == 7
        assert snapshot["histograms"]["h"]["total"] == 3

    def test_merge_rejects_mismatched_buckets(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.001)
        bad = registry.snapshot()
        bad["histograms"]["h"]["buckets"] = [1.0, 2.0]
        target = MetricsRegistry()
        target.observe("h", 0.002)
        with pytest.raises(ValueError):
            target.merge(bad)


# --------------------------------------------------------------------------
# run-scoped span collector
# --------------------------------------------------------------------------


class TestRunTelemetry:
    def test_nesting_and_postorder(self):
        ticks = iter(range(100))
        collector = RunTelemetry(clock=lambda: float(next(ticks)))
        outer = collector.begin("run", index=3)
        with collector.span("attempt", number=1):
            collector.event("fault", kind="script")
        collector.finish(outer)
        names = [span["name"] for span in collector.spans]
        assert names == ["fault", "attempt", "run"]  # children precede parents
        by_name = {span["name"]: span for span in collector.spans}
        assert by_name["run"]["parent"] is None
        assert by_name["attempt"]["parent"] == by_name["run"]["seq"]
        assert by_name["fault"]["parent"] == by_name["attempt"]["seq"]
        assert by_name["fault"]["start"] == by_name["fault"]["end"]

    def test_finish_pops_dangling_children(self):
        collector = RunTelemetry()
        outer = collector.begin("run")
        collector.begin("attempt")  # never finished explicitly
        collector.finish(outer)
        assert [span["name"] for span in collector.spans] == ["attempt", "run"]

    def test_profile_accumulates_wall_and_strip_removes_it(self):
        collector = RunTelemetry()
        span = collector.begin("fastpath.batch")
        with span.profile():
            pass
        with span.profile():
            pass
        entry = collector.finish(span)
        assert entry["wall_s"] >= 0.0
        assert "wall_s" not in strip_wall(entry)
        assert strip_wall({"name": "x"}) == {"name": "x"}

    def test_payload_is_plain_data(self):
        import pickle

        collector = RunTelemetry()
        with collector.span("run"):
            collector.count("engine.events", 10)
            collector.observe("loadgen.latency_s", 0.0001)
        payload = collector.payload()
        assert pickle.loads(pickle.dumps(payload)) == payload
        assert payload["metrics"]["counters"]["engine.events"] == 10


# --------------------------------------------------------------------------
# emitted artifacts of one execution
# --------------------------------------------------------------------------


class TestArtifacts:
    def test_trace_structure(self, result_dir):
        with open(os.path.join(result_dir, "trace.jsonl")) as handle:
            records = [json.loads(line) for line in handle]
        seqs = [record["seq"] for record in records]
        assert len(set(seqs)) == len(seqs), "sequence numbers must be unique"
        assert all(record["clock"] in ("ticks", "sim") for record in records)
        # Completion order: every parent is written after all its children.
        position = {record["seq"]: index for index, record in enumerate(records)}
        for record in records:
            if record["parent"] is not None:
                assert position[record["parent"]] > position[record["seq"]]
        # The experiment root closes last.
        assert records[-1]["name"] == "experiment"
        assert records[-1]["parent"] is None
        names = {record["name"] for record in records}
        assert {"phase.setup", "phase.measurement", "phase.finalize",
                "run", "attempt", "script"} <= names

    def test_run_spans_on_simulated_clock(self, result_dir):
        with open(os.path.join(result_dir, "trace.jsonl")) as handle:
            records = [json.loads(line) for line in handle]
        runs = sorted(
            (record for record in records if record["name"] == "run"),
            key=lambda record: record["attrs"]["index"],
        )
        assert [record["attrs"]["index"] for record in runs] == [0, 1, 2, 3]
        assert all(record["clock"] == "sim" for record in runs)
        starts = [record["start"] for record in runs]
        assert starts == sorted(starts) and len(set(starts)) == 4

    def test_per_run_snapshots(self, result_dir):
        run_dirs = sorted(
            name for name in os.listdir(result_dir) if name.startswith("run-")
        )
        assert len(run_dirs) == 4
        for index, name in enumerate(run_dirs):
            with open(os.path.join(result_dir, name, "telemetry.json")) as handle:
                snapshot = json.load(handle)
            assert snapshot["run"] == index
            span_names = [span["name"] for span in snapshot["spans"]]
            assert "run" in span_names and "attempt" in span_names
            counters = snapshot["metrics"]["counters"]
            # The pos platform engages the batched fast path by default.
            assert counters["fastpath.batches"] >= 1
            assert counters["loadgen.jobs"] == 1
            assert counters["loadgen.latency_samples"] > 0
            # Drop counters are recorded even when zero: absence of drops
            # is provenance too.
            assert "netsim.tx_ring_drops" in counters
            assert "netsim.backlog_drops" in counters
            # Wall-clock measurements never reach the deterministic file.
            assert all("wall_s" not in span for span in snapshot["spans"])

    def test_experiment_aggregate(self, result_dir):
        with open(os.path.join(result_dir, "telemetry.json")) as handle:
            aggregate = json.load(handle)
        gauges = aggregate["metrics"]["gauges"]
        assert gauges["runs.total"] == 4
        assert gauges["runs.completed"] == 4
        assert gauges["journal.appends"] == 6  # header + 4 runs + complete
        assert aggregate["metrics"]["counters"]["loadgen.jobs"] == 4
        with open(os.path.join(result_dir, "trace.jsonl")) as handle:
            assert aggregate["spans"] == sum(1 for _ in handle)

    def test_legacy_log_format_unchanged(self, result_dir):
        with open(os.path.join(result_dir, "controller.log")) as handle:
            lines = handle.read().splitlines()
        assert lines, "controller.log must still be written"
        sequences = [
            int(match.group(1))
            for match in (re.match(r"^\[(\d{4})\] ", line) for line in lines)
            if match
        ]
        assert sequences == list(range(1, len(lines) + 1))

    def test_publication_manifest_covers_telemetry(self, result_dir):
        paths = {entry["path"] for entry in build_manifest(result_dir)}
        assert "trace.jsonl" in paths
        assert "telemetry.json" in paths
        assert any(
            path.startswith("run-") and path.endswith("/telemetry.json")
            for path in paths
        )


# --------------------------------------------------------------------------
# determinism: jobs, event path, crash + resume
# --------------------------------------------------------------------------


class TestArtifactDeterminism:
    @pytest.mark.parametrize("batch", ["0", "1"], ids=["event-path", "fast-path"])
    def test_identical_jobs_1_vs_4(self, tmp_path, monkeypatch, batch):
        monkeypatch.setenv("POS_NETSIM_BATCH", batch)
        run_case_study("pos", str(tmp_path / "seq"), jobs=1, **SWEEP)
        run_case_study("pos", str(tmp_path / "par"), jobs=4, **SWEEP)
        seq = telemetry_files(str(tmp_path / "seq"))
        par = telemetry_files(str(tmp_path / "par"))
        # trace + experiment aggregate + one snapshot per run
        assert len(seq) == 6
        assert par == seq

    def test_identical_across_crash_and_resume(self, tmp_path):
        run_case_study("pos", str(tmp_path / "clean"), jobs=1, **SWEEP)
        clean = telemetry_files(str(tmp_path / "clean"))

        with pytest.raises(CrashRequested):
            run_case_study(
                "pos", str(tmp_path / "crashed"), jobs=2,
                progress=crashing_progress(2), **SWEEP,
            )
        result_dir = find_result_dir(str(tmp_path / "crashed"))
        handle = run_case_study(
            "pos", str(tmp_path / "crashed"), jobs=2,
            resume_path=result_dir, **SWEEP,
        )
        assert handle.completed_runs == 4 and handle.resumed_runs == 2

        # Adopted runs replay their snapshots into the rewritten trace:
        # the finished artifacts are a pure function of the run set.
        assert telemetry_files(str(tmp_path / "crashed")) == clean

        # The legacy log, by contrast, *appends*: resume evidence is kept
        # and sequence numbers continue instead of restarting at 0001.
        with open(os.path.join(result_dir, "controller.log")) as log:
            sequences = [
                int(match.group(1))
                for match in (
                    re.match(r"^\[(\d{4})\] ", line) for line in log
                )
                if match
            ]
        assert sequences == list(range(1, len(sequences) + 1))
        assert len(sequences) > 0

    def test_kill_switch_suppresses_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("POS_TELEMETRY", "0")
        handle = run_case_study("pos", str(tmp_path), jobs=1, **SMALL)
        root = handle.result_path
        assert not os.path.exists(os.path.join(root, "trace.jsonl"))
        assert not os.path.exists(os.path.join(root, "telemetry.json"))
        assert not os.path.exists(
            os.path.join(root, "run-000", "telemetry.json")
        )
        # The legacy log and journal are unconditional.
        assert os.path.exists(os.path.join(root, "controller.log"))
        assert os.path.exists(os.path.join(root, JOURNAL_NAME))

    def test_wall_sidecar_never_touches_deterministic_files(
        self, tmp_path, monkeypatch
    ):
        run_case_study("pos", str(tmp_path / "plain"), jobs=1, **SMALL)
        monkeypatch.setenv("POS_TELEMETRY_WALLCLOCK", "1")
        run_case_study("pos", str(tmp_path / "wall"), jobs=1, **SMALL)
        assert telemetry_files(str(tmp_path / "wall")) == telemetry_files(
            str(tmp_path / "plain")
        )
        sidecar = os.path.join(
            find_result_dir(str(tmp_path / "wall")), "trace-wall.jsonl"
        )
        assert os.path.isfile(sidecar)
        with open(sidecar) as handle:
            profiles = [json.loads(line) for line in handle]
        assert profiles and all("wall_s" in record for record in profiles)


# --------------------------------------------------------------------------
# pos report: provenance from artifacts alone
# --------------------------------------------------------------------------


class TestReport:
    def test_load_report(self, result_dir):
        report = load_report(result_dir)
        assert report["complete"] is True
        assert report["total_runs"] == 4
        assert [row["run"] for row in report["runs"]] == [0, 1, 2, 3]
        for row in report["runs"]:
            assert row["ok"] and not row["retried"]
            assert row["attempts"] == 1
            assert row["faults"] == 0
            assert row["path"] == "fast"  # pos platform -> batched replay
            assert row["duration_s"] > 0

    def test_render_report(self, result_dir):
        text = render_report(result_dir)
        assert "runs: 4/4 journalled, execution complete" in text
        body = text.splitlines()
        rows = [line for line in body if line.strip().startswith(("0 ", "1 ", "2 ", "3 "))]
        assert len(rows) == 4
        assert all(" ok " in row for row in rows)
        assert "journal.appends" in text

    def test_report_shows_recovery_and_faults(self, tmp_path):
        handle = run_case_study(
            "pos", str(tmp_path),
            rates=[200_000, 400_000], sizes=(64,),
            duration_s=0.05, interval_s=0.02, clock=CLOCK,
            on_error="recover", script_style="shell",
            fault_plan=FaultPlan(
                [FaultSpec(kind="script", runs=(1,), times=1)], seed=11
            ),
        )
        assert handle.completed_runs == 2 and handle.failed_runs == 0
        report = load_report(handle.result_path)
        struck = report["runs"][1]
        assert struck["retried"]
        assert struck["attempts"] == 2
        assert struck["faults"] == 1
        assert "recovered" in render_report(handle.result_path)

    def test_report_requires_journal(self, tmp_path):
        from repro.telemetry.report import ReportError

        with pytest.raises(ReportError):
            load_report(str(tmp_path))


# --------------------------------------------------------------------------
# schema validation
# --------------------------------------------------------------------------


class TestSchemas:
    def test_all_artifacts_validate(self, result_dir):
        validated = validate_experiment(result_dir)
        # traces + aggregate telemetry/health + per-run telemetry/health
        assert len(validated) == 12
        assert any(path.endswith("/trace.jsonl") for path in validated)
        assert any(path.endswith("fleet-trace.jsonl") for path in validated)
        assert any(path.endswith("health.json") for path in validated)

    def test_trace_violation_detected(self, tmp_path):
        with open(os.path.join(tmp_path, "trace.jsonl"), "w") as handle:
            handle.write('{"seq": 0, "name": "run"}\n')  # missing keys
        with pytest.raises(SchemaError, match="trace.jsonl:1"):
            validate_experiment(str(tmp_path))

    def test_aggregate_violation_detected(self, tmp_path):
        with open(os.path.join(tmp_path, "telemetry.json"), "w") as handle:
            json.dump({"experiment": "x"}, handle)
        with pytest.raises(SchemaError, match="required"):
            validate_experiment(str(tmp_path))

    def test_validator_subset(self):
        validate(3, {"type": "integer", "minimum": 0})
        with pytest.raises(SchemaError):
            validate(True, {"type": "integer"})  # bools are not integers
        with pytest.raises(SchemaError):
            validate(-1, {"type": "integer", "minimum": 0})
        with pytest.raises(SchemaError):
            validate({"a": 1}, {"type": "object", "additionalProperties": False})
        with pytest.raises(SchemaError):
            validate("x", {"enum": ["ticks", "sim"]})
