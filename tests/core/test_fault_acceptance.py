"""Acceptance tests: a seeded fault plan against a 20-run cross product.

These are the issue's acceptance criteria, run end to end: the
experiment survives injected power, transport, and script faults under
``on_error="continue"`` (with quarantine armed), and the identical
experiment killed mid-way resumes via the journal to the same final
result set — byte-identical metadata for adopted runs, zero duplicated
run indices.
"""

from __future__ import annotations

import os

import pytest

from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.errors import PosError
from repro.core.experiment import Experiment, Role
from repro.core.journal import JOURNAL_NAME
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript
from repro.core.variables import Variables
from repro.evaluation.loader import load_experiment
from repro.faults.injector import install_fault_plan
from repro.faults.plan import FaultPlan, FaultSpec
from repro.netsim.host import SimHost
from repro.testbed.images import default_registry
from repro.testbed.node import Node
from repro.testbed.power import IpmiController
from repro.testbed.transport import SshTransport

#: 4 sizes x 5 rates = a 20-run cross product.
LOOP_VARS = {
    "pkt_sz": [64, 128, 512, 1500],
    "pkt_rate": [100, 200, 300, 400, 500],
}


def make_plan():
    """Power, transport, and script faults, seeded and run-pinned.

    The power fault strikes during the run-less boot phase and is
    absorbed by the node's retry policy.  The transport fault carries
    enough budget to defeat the retries, failing run 7 outright; the
    script faults fail runs 3 and 12 at the exit-code level; the wedge
    at run 9 exercises the watchdog's out-of-band recovery.
    """
    return FaultPlan(
        [
            FaultSpec(kind="power", node="tartu", times=1),
            FaultSpec(kind="transport", node="tartu", operation="execute",
                      runs=(7,), times=3),
            FaultSpec(kind="script", node="tartu", runs=(3, 12), times=2),
            FaultSpec(kind="wedge", node="tartu", runs=(9,), times=1),
        ],
        seed=42,
    )


def make_testbed(tmp_path, plan):
    nodes = {}
    for name in ("tartu", "riga"):
        host = SimHost(name)
        nodes[name] = Node(
            name, host=host, power=IpmiController(host),
            transport=SshTransport(host),
        )
    injector = install_fault_plan(nodes, plan)
    calendar = Calendar(clock=lambda: 1000.0)
    allocator = Allocator(calendar, nodes)
    results = ResultStore(str(tmp_path / "results"), clock=lambda: 1600000000.0)
    controller = Controller(
        allocator, default_registry(), results, fault_injector=injector
    )
    return controller, nodes


def experiment_under_test():
    roles = [
        Role(
            name="dut",
            node="tartu",
            setup=CommandScript("dut-setup", ["pos barrier setup-done"]),
            measurement=CommandScript("dut-measure", [
                "echo size $pkt_sz rate $pkt_rate",
            ]),
        ),
        Role(
            name="loadgen",
            node="riga",
            setup=CommandScript("lg-setup", ["pos barrier setup-done"]),
            measurement=CommandScript("lg-measure", ["echo load $pkt_rate"]),
        ),
    ]
    return Experiment(
        name="fault-acceptance",
        roles=roles,
        variables=Variables(loop_vars=dict(LOOP_VARS)),
        duration_s=60.0,
    )


class CrashRequested(RuntimeError):
    """Simulated controller death — not a PosError, nothing handles it."""


class TestFaultPlanAcceptance:
    def test_seeded_faults_across_twenty_runs_under_continue(self, tmp_path):
        controller, nodes = make_testbed(tmp_path, make_plan())
        handle = controller.run(experiment_under_test(), on_error="continue")
        assert len(handle.runs) == 20
        # Exactly the planned strikes failed: runs 3, 7, 9, 12.
        failed = sorted(r.index for r in handle.runs if not r.ok)
        assert failed == [3, 7, 9, 12]
        assert handle.completed_runs == 16
        # Nothing was quarantined: the wedge was recovered out of band.
        assert handle.quarantined == {}
        assert handle.skipped_runs == 0
        assert not nodes["tartu"].host.wedged
        # The injector's trail is in the inventory for the artifact record.
        fired = controller.fault_injector.describe()["fired"]
        assert {event["kind"] for event in fired} == {
            "power", "transport", "script", "wedge"
        }

    def test_fault_runs_are_reproducible(self, tmp_path):
        """The same seeded plan produces the identical failure set."""
        first, __ = make_testbed(tmp_path / "a", make_plan())
        second, __ = make_testbed(tmp_path / "b", make_plan())
        handle_a = first.run(experiment_under_test(), on_error="continue")
        handle_b = second.run(experiment_under_test(), on_error="continue")
        outcomes_a = [(r.index, r.ok) for r in handle_a.runs]
        outcomes_b = [(r.index, r.ok) for r in handle_b.runs]
        assert outcomes_a == outcomes_b

    def test_killed_experiment_resumes_to_the_same_result_set(self, tmp_path):
        # Reference execution: the full 20 runs in one go.
        reference, __ = make_testbed(tmp_path / "ref", make_plan())
        ref_handle = reference.run(experiment_under_test(), on_error="continue")

        # Killed execution: die right after run 10 is journalled.
        def crash_after_ten(record, run_path):
            if record.index == 10:
                raise CrashRequested("power loss")

        crashed, __ = make_testbed(tmp_path / "res", make_plan())
        with pytest.raises(CrashRequested):
            crashed.run(
                experiment_under_test(), on_error="continue",
                on_run_complete=crash_after_ten,
            )
        result_path = self._find_result_path(tmp_path / "res")
        adopted_before = self._metadata_bytes(result_path)

        # Resume with a fresh controller and a fresh (identical) plan.
        # Runs 0..10 are already journalled, so only 11..19 execute —
        # and only their pinned faults (run 12's script error) strike.
        resumer, __ = make_testbed(tmp_path / "res", make_plan())
        handle = resumer.resume(
            experiment_under_test(), result_path, on_error="continue"
        )

        assert len(handle.runs) == 20
        assert sorted(r.index for r in handle.runs) == list(range(20))
        assert len({r.index for r in handle.runs}) == 20  # no duplicates

        # Identical final outcome per run index as the reference.
        ref_outcomes = {r.index: r.ok for r in ref_handle.runs}
        res_outcomes = {r.index: r.ok for r in handle.runs}
        assert res_outcomes == ref_outcomes

        # Adopted run folders were not rewritten: byte-identical metadata.
        adopted_after = self._metadata_bytes(result_path, adopted_before)
        assert adopted_after == adopted_before

        # The evaluation loader sees each index exactly once, with the
        # superseded failed attempts kept apart.
        results = load_experiment(result_path)
        assert [run.index for run in results.runs] == list(range(20))
        assert all(run.index in (3, 7, 9) or run.attempt == 0
                   for run in results.runs)

    @staticmethod
    def _find_result_path(root):
        for dirpath, __, filenames in os.walk(str(root)):
            if JOURNAL_NAME in filenames:
                return dirpath
        raise AssertionError("no journal written")

    @staticmethod
    def _metadata_bytes(result_path, reference=None):
        """metadata.yml bytes per completed-before-the-kill run folder."""
        payload = {}
        names = (
            reference.keys() if reference is not None else [
                name for name in sorted(os.listdir(result_path))
                if name.startswith("run-") and "-retry" not in name
                and int(name.split("-")[1]) <= 10
            ]
        )
        for name in names:
            with open(os.path.join(result_path, name, "metadata.yml"), "rb") as f:
                payload[name] = f.read()
        return payload

    def test_abort_policy_still_aborts_on_injected_fault(self, tmp_path):
        controller, __ = make_testbed(tmp_path, make_plan())
        with pytest.raises(PosError):
            controller.run(experiment_under_test(), on_error="abort")
