"""Tests for the crash-safe run journal, resume, and the watchdog.

These cover the resilience plane end to end: journal durability and
torn-tail tolerance, resuming a killed experiment without re-executing
or overwriting completed runs, the retry-folder naming that keeps
failure evidence, the post-failure health watchdog, and quarantine.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import yamlite
from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.errors import JournalError, PowerError, ScriptError
from repro.core.experiment import Experiment, Role
from repro.core.journal import JOURNAL_NAME, RunJournal
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.faults.injector import install_fault_plan
from repro.netsim.host import SimHost
from repro.testbed.images import default_registry
from repro.testbed.node import Node
from repro.testbed.power import IpmiController, PowerControl
from repro.testbed.transport import SshTransport


def make_node(name, power_class=IpmiController, **power_kwargs):
    host = SimHost(name)
    return Node(
        name,
        host=host,
        power=power_class(host, **power_kwargs),
        transport=SshTransport(host),
    )


def make_testbed(tmp_path, fault_plan=None, **controller_kwargs):
    nodes = {name: make_node(name) for name in ("tartu", "riga")}
    injector = None
    if fault_plan is not None:
        injector = install_fault_plan(nodes, fault_plan)
    calendar = Calendar(clock=lambda: 1000.0)
    allocator = Allocator(calendar, nodes)
    results = ResultStore(str(tmp_path / "results"), clock=lambda: 1600000000.0)
    controller = Controller(
        allocator, default_registry(), results,
        fault_injector=injector, **controller_kwargs,
    )
    return controller, nodes


def simple_experiment(loop_vars=None, dut_measure=None):
    roles = [
        Role(
            name="dut",
            node="tartu",
            setup=CommandScript("dut-setup", ["pos barrier setup-done"]),
            measurement=dut_measure or CommandScript(
                "dut-measure", ["echo measuring at $pkt_rate"]
            ),
        ),
        Role(
            name="loadgen",
            node="riga",
            setup=CommandScript("lg-setup", ["pos barrier setup-done"]),
            measurement=CommandScript("lg-measure", ["echo load $pkt_rate"]),
        ),
    ]
    return Experiment(
        name="exp",
        roles=roles,
        variables=Variables(loop_vars=loop_vars or {"pkt_rate": [100, 200]}),
        duration_s=60.0,
    )


class CrashRequested(RuntimeError):
    """Simulated controller death: NOT a PosError, so nothing handles it."""


def crash_after(n):
    """An on_run_complete callback that kills the controller after n runs."""
    seen = {"count": 0}

    def callback(record, run_path):
        seen["count"] += 1
        if seen["count"] >= n:
            raise CrashRequested(f"killed after {n} runs")

    return callback


def read_journal(result_path):
    with open(os.path.join(result_path, JOURNAL_NAME)) as handle:
        return [json.loads(line) for line in handle if line.strip()]


# --------------------------------------------------------------------------
# journal primitives
# --------------------------------------------------------------------------


class TestRunJournal:
    def test_create_writes_header(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), "exp", 4)
        journal.close()
        entries = read_journal(str(tmp_path))
        assert entries == [
            {"event": "experiment", "name": "exp", "total_runs": 4}
        ]

    def test_every_line_is_flushed_to_disk_immediately(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), "exp", 2)
        journal.record_run(0, {"r": 1}, ok=True, run_dir="run-000")
        # Read through a *separate* handle while the journal is open.
        assert len(read_journal(str(tmp_path))) == 2

    def test_open_tolerates_torn_tail(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), "exp", 2)
        journal.record_run(0, {"r": 1}, ok=True, run_dir="run-000")
        journal.close()
        with open(os.path.join(str(tmp_path), JOURNAL_NAME), "a") as handle:
            handle.write('{"event": "run", "index": 1, "ok": tr')  # torn write
        reopened = RunJournal.open(str(tmp_path))
        assert sorted(reopened.completed()) == [0]
        reopened.close()

    def test_open_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="nothing to resume"):
            RunJournal.open(str(tmp_path))

    def test_completed_takes_the_latest_entry_per_index(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), "exp", 2)
        journal.record_run(0, {"r": 1}, ok=False, error="flaked")
        journal.record_run(0, {"r": 1}, ok=True, retried=True,
                           run_dir="run-000-retry")
        completed = journal.completed()
        assert completed[0]["dir"] == "run-000-retry"
        journal.close()

    def test_validate_against_rejects_other_experiments(self, tmp_path):
        RunJournal.create(str(tmp_path), "exp", 4).close()
        journal = RunJournal.open(str(tmp_path))
        with pytest.raises(JournalError, match="belongs to"):
            journal.validate_against("other-exp", 4)
        with pytest.raises(JournalError, match="4 runs"):
            journal.validate_against("exp", 9)
        journal.close()


# --------------------------------------------------------------------------
# journalling during a normal run
# --------------------------------------------------------------------------


class TestJournalDuringRun:
    def test_every_run_is_journalled(self, tmp_path):
        controller, __ = make_testbed(tmp_path)
        handle = controller.run(simple_experiment())
        entries = read_journal(handle.result_path)
        runs = [entry for entry in entries if entry["event"] == "run"]
        assert [run["index"] for run in runs] == [0, 1]
        assert all(run["ok"] for run in runs)
        assert runs[0]["dir"] == "run-000"
        assert entries[-1] == {"event": "complete", "ok": True}

    def test_failed_runs_are_journalled_with_error(self, tmp_path):
        controller, __ = make_testbed(tmp_path)
        experiment = simple_experiment(
            dut_measure=CommandScript("dut-measure", ["false"])
        )
        handle = controller.run(experiment, on_error="continue")
        runs = [e for e in read_journal(handle.result_path)
                if e["event"] == "run"]
        assert all(not run["ok"] and run["error"] for run in runs)


# --------------------------------------------------------------------------
# crash + resume
# --------------------------------------------------------------------------


class TestResume:
    def run_to_crash(self, controller, experiment, after):
        with pytest.raises(CrashRequested):
            controller.run(experiment, on_run_complete=crash_after(after))

    def find_result_path(self, tmp_path):
        root = str(tmp_path / "results")
        paths = []
        for dirpath, __, filenames in os.walk(root):
            if JOURNAL_NAME in filenames:
                paths.append(dirpath)
        assert len(paths) == 1
        return paths[0]

    def test_resume_completes_exactly_the_remainder(self, tmp_path):
        experiment = simple_experiment(loop_vars={"pkt_rate": [1, 2, 3, 4, 5]})
        controller, __ = make_testbed(tmp_path)
        self.run_to_crash(controller, experiment, after=2)
        result_path = self.find_result_path(tmp_path)

        resumed, __ = make_testbed(tmp_path)
        handle = resumed.resume(experiment, result_path)
        assert handle.completed_runs == 5
        assert handle.resumed_runs == 2  # adopted, not re-executed
        assert sorted(record.index for record in handle.runs) == [0, 1, 2, 3, 4]
        # No duplicated indices anywhere.
        assert len({record.index for record in handle.runs}) == 5

    def test_resume_does_not_rewrite_completed_run_metadata(self, tmp_path):
        experiment = simple_experiment(loop_vars={"pkt_rate": [1, 2, 3, 4]})
        controller, __ = make_testbed(tmp_path)
        self.run_to_crash(controller, experiment, after=2)
        result_path = self.find_result_path(tmp_path)

        def metadata_bytes(index):
            name = f"run-{index:03d}"
            with open(os.path.join(result_path, name, "metadata.yml"), "rb") as f:
                return f.read()

        before = {index: metadata_bytes(index) for index in (0, 1)}
        resumed, __ = make_testbed(tmp_path)
        handle = resumed.resume(experiment, result_path)
        assert handle.completed_runs == 4
        after = {index: metadata_bytes(index) for index in (0, 1)}
        assert before == after  # byte-identical: the folders were adopted

    def test_resume_after_first_run(self, tmp_path):
        experiment = simple_experiment(loop_vars={"pkt_rate": [1, 2, 3]})
        controller, __ = make_testbed(tmp_path)
        self.run_to_crash(controller, experiment, after=1)
        result_path = self.find_result_path(tmp_path)
        resumed, __ = make_testbed(tmp_path)
        handle = resumed.resume(experiment, result_path)
        assert handle.resumed_runs == 1
        assert handle.completed_runs == 3

    def test_resume_validates_experiment_identity(self, tmp_path):
        experiment = simple_experiment(loop_vars={"pkt_rate": [1, 2, 3]})
        controller, __ = make_testbed(tmp_path)
        self.run_to_crash(controller, experiment, after=1)
        result_path = self.find_result_path(tmp_path)
        other = simple_experiment(loop_vars={"pkt_rate": [1, 2, 3]})
        other.name = "different-exp"
        resumed, __ = make_testbed(tmp_path)
        with pytest.raises(JournalError, match="belongs to"):
            resumed.resume(other, result_path)

    def test_resume_validates_loop_instances(self, tmp_path):
        experiment = simple_experiment(loop_vars={"pkt_rate": [1, 2, 3]})
        controller, __ = make_testbed(tmp_path)
        self.run_to_crash(controller, experiment, after=1)
        result_path = self.find_result_path(tmp_path)
        # Same name, same run count, different cross product.
        reshaped = simple_experiment(loop_vars={"pkt_rate": [7, 8, 9]})
        resumed, __ = make_testbed(tmp_path)
        with pytest.raises(Exception, match="refusing to resume"):
            resumed.resume(reshaped, result_path)

    def test_resumed_journal_records_the_remainder(self, tmp_path):
        experiment = simple_experiment(loop_vars={"pkt_rate": [1, 2, 3]})
        controller, __ = make_testbed(tmp_path)
        self.run_to_crash(controller, experiment, after=2)
        result_path = self.find_result_path(tmp_path)
        resumed, __ = make_testbed(tmp_path)
        resumed.resume(experiment, result_path)
        runs = [e for e in read_journal(result_path) if e["event"] == "run"]
        # Runs 0 and 1 journalled once (before the kill), run 2 after.
        assert [run["index"] for run in runs] == [0, 1, 2]

    def test_failed_run_is_reexecuted_on_resume_into_retry_folder(self, tmp_path):
        """A run that failed before the crash is re-executed on resume,
        landing next to — not on top of — the failed attempt."""
        fails = {"armed": True}

        def sometimes_fails(ctx):
            if ctx.run_index == 0 and fails["armed"]:
                fails["armed"] = False
                raise ScriptError("transient bug")

        experiment = simple_experiment(
            loop_vars={"pkt_rate": [1, 2, 3]},
            dut_measure=PythonScript("dut-measure", sometimes_fails),
        )
        controller, __ = make_testbed(tmp_path)
        with pytest.raises(CrashRequested):
            controller.run(
                experiment, on_error="continue",
                on_run_complete=crash_after(2),
            )
        result_path = self.find_result_path(tmp_path)
        resumed, __ = make_testbed(tmp_path)
        handle = resumed.resume(experiment, result_path, on_error="continue")
        assert handle.completed_runs == 3
        entries = sorted(os.listdir(result_path))
        assert "run-000" in entries          # the failed attempt's evidence
        assert "run-000-retry" in entries    # the successful re-execution
        retry_meta = yamlite.load_file(
            os.path.join(result_path, "run-000-retry", "metadata.yml")
        )
        assert retry_meta["attempt"] == 1
        assert retry_meta["loop"] == {"pkt_rate": 1}


# --------------------------------------------------------------------------
# retry-folder naming during recovery (the run-dir collision fix)
# --------------------------------------------------------------------------


class TestRecoveryRunDirs:
    def test_recover_retry_lands_in_suffixed_folder(self, tmp_path):
        state = {"wedged_once": False}

        def wedging_measure(ctx):
            if not state["wedged_once"]:
                state["wedged_once"] = True
                ctx.node.host.wedge()
                ctx.tools.run("echo this will fail")

        experiment = simple_experiment(
            dut_measure=PythonScript("dut-measure", wedging_measure)
        )
        controller, __ = make_testbed(tmp_path)
        handle = controller.run(experiment, on_error="recover")
        assert handle.completed_runs == 2
        entries = sorted(os.listdir(handle.result_path))
        assert "run-000" in entries and "run-000-retry" in entries
        failed_status = yamlite.load_file(os.path.join(
            handle.result_path, "run-000", "dut", "status.yml"
        ))
        assert failed_status["ok"] is False
        retried_status = yamlite.load_file(os.path.join(
            handle.result_path, "run-000-retry", "dut", "status.yml"
        ))
        assert retried_status["ok"] is True

    def test_journal_points_at_the_successful_attempt(self, tmp_path):
        state = {"wedged_once": False}

        def wedging_measure(ctx):
            if not state["wedged_once"]:
                state["wedged_once"] = True
                ctx.node.host.wedge()
                ctx.tools.run("echo fail")

        experiment = simple_experiment(
            dut_measure=PythonScript("dut-measure", wedging_measure)
        )
        controller, __ = make_testbed(tmp_path)
        handle = controller.run(experiment, on_error="recover")
        runs = [e for e in read_journal(handle.result_path)
                if e["event"] == "run"]
        assert runs[0]["ok"] and runs[0]["retried"]
        assert runs[0]["dir"] == "run-000-retry"


# --------------------------------------------------------------------------
# watchdog & quarantine
# --------------------------------------------------------------------------


class TestWatchdog:
    def test_wedged_dut_is_power_cycled_before_next_run(self, tmp_path):
        """Regression: under on_error='continue' a wedged DuT must be
        recovered out of band before the next run, or every subsequent
        run fails against the dead host."""
        state = {"wedged": False}

        def wedge_once(ctx):
            if not state["wedged"]:
                state["wedged"] = True
                ctx.node.host.wedge()
                ctx.tools.run("echo poke the wedged host")

        experiment = simple_experiment(
            loop_vars={"pkt_rate": [1, 2, 3]},
            dut_measure=PythonScript("dut-measure", wedge_once),
        )
        controller, nodes = make_testbed(tmp_path)
        boots_before = nodes["tartu"].host.boot_count
        handle = controller.run(experiment, on_error="continue")
        # Run 0 failed, but the watchdog recovered the host: 1 and 2 pass.
        assert handle.failed_runs == 1
        assert handle.completed_runs == 2
        assert not nodes["tartu"].host.wedged
        assert nodes["tartu"].host.boot_count > boots_before + 1

    def test_healthy_nodes_are_not_power_cycled_by_failures(self, tmp_path):
        """A failing script on a live host is the script's problem; the
        watchdog must not reboot healthy nodes."""
        experiment = simple_experiment(
            loop_vars={"pkt_rate": [1, 2]},
            dut_measure=CommandScript("dut-measure", ["false"]),
        )
        controller, nodes = make_testbed(tmp_path)
        handle = controller.run(experiment, on_error="continue")
        assert handle.failed_runs == 2
        # One boot each from the setup phase, none from the watchdog.
        assert nodes["tartu"].host.boot_count == 1
        assert nodes["riga"].host.boot_count == 1

    def test_unrecoverable_node_is_quarantined_and_rest_skipped(self, tmp_path):
        class DyingPower(PowerControl):
            """Works for the initial boot, then the BMC dies for good."""

            protocol = "dying-ipmi"

            def __init__(self, host, good_cycles=1):
                super().__init__(host)
                self._good = good_cycles

            def power_cycle(self):
                if self.power_cycles >= self._good:
                    raise PowerError("bmc dead")
                super().power_cycle()

        nodes = {
            "tartu": make_node("tartu", power_class=DyingPower),
            "riga": make_node("riga"),
        }
        calendar = Calendar(clock=lambda: 1000.0)
        allocator = Allocator(calendar, nodes)
        results = ResultStore(str(tmp_path / "results"), clock=lambda: 1.0)
        controller = Controller(allocator, default_registry(), results)

        def wedge_always(ctx):
            ctx.node.host.wedge()
            ctx.tools.run("echo fails")

        experiment = simple_experiment(
            loop_vars={"pkt_rate": [1, 2, 3, 4]},
            dut_measure=PythonScript("dut-measure", wedge_always),
        )
        handle = controller.run(experiment, on_error="continue")
        assert "tartu" in handle.quarantined
        assert "recovery failed" in handle.quarantined["tartu"]
        # Run 0 failed and triggered the quarantine; 1..3 were skipped.
        assert handle.failed_runs == 4
        assert handle.skipped_runs == 3
        skipped = [record for record in handle.runs if record.skipped]
        assert all("quarantined" in record.error for record in skipped)

    def test_quarantine_threshold_counts_consecutive_probe_failures(self, tmp_path):
        def wedge_always(ctx):
            ctx.node.host.wedge()
            ctx.tools.run("echo fails")

        experiment = simple_experiment(
            loop_vars={"pkt_rate": [1, 2, 3, 4]},
            dut_measure=PythonScript("dut-measure", wedge_always),
        )
        controller, nodes = make_testbed(tmp_path, quarantine_threshold=1)
        handle = controller.run(experiment, on_error="continue")
        # The very first failed probe quarantines the node.
        assert "tartu" in handle.quarantined
        assert "consecutive health probes" in handle.quarantined["tartu"]
        assert handle.skipped_runs == 3

    def test_recovered_node_resets_its_health_counter(self, tmp_path):
        """wedge → recover → healthy again: the counter must go back to
        zero, so an occasional wedge never accumulates to quarantine."""
        def wedge_on_odd(ctx):
            if ctx.run_index % 2 == 1:
                ctx.node.host.wedge()
                ctx.tools.run("echo fails")

        experiment = simple_experiment(
            loop_vars={"pkt_rate": [1, 2, 3, 4, 5, 6]},
            dut_measure=PythonScript("dut-measure", wedge_on_odd),
        )
        controller, __ = make_testbed(tmp_path, quarantine_threshold=2)
        handle = controller.run(experiment, on_error="continue")
        assert handle.quarantined == {}
        assert handle.completed_runs == 3
        assert handle.failed_runs == 3
        assert handle.skipped_runs == 0

    def test_skipped_runs_are_journalled_not_given_folders(self, tmp_path):
        def wedge_always(ctx):
            ctx.node.host.wedge()
            ctx.tools.run("echo fails")

        experiment = simple_experiment(
            loop_vars={"pkt_rate": [1, 2, 3]},
            dut_measure=PythonScript("dut-measure", wedge_always),
        )
        controller, __ = make_testbed(tmp_path, quarantine_threshold=1)
        handle = controller.run(experiment, on_error="continue")
        entries = sorted(os.listdir(handle.result_path))
        assert "run-000" in entries
        assert "run-001" not in entries and "run-002" not in entries
        journalled = [e for e in read_journal(handle.result_path)
                      if e["event"] == "run"]
        assert [e.get("skipped", False) for e in journalled] == [
            False, True, True
        ]

    def test_quarantine_recorded_in_experiment_metadata(self, tmp_path):
        def wedge_always(ctx):
            ctx.node.host.wedge()
            ctx.tools.run("echo fails")

        experiment = simple_experiment(
            loop_vars={"pkt_rate": [1, 2]},
            dut_measure=PythonScript("dut-measure", wedge_always),
        )
        controller, __ = make_testbed(tmp_path, quarantine_threshold=1)
        handle = controller.run(experiment, on_error="continue")
        metadata = yamlite.load_file(
            os.path.join(handle.result_path, "experiment.yml")
        )
        assert "tartu" in metadata["quarantined"]
        assert metadata["runs_skipped"] == 1
