"""Property-based determinism tests for the campaign scheduler.

The central guarantee under test: for *any* campaign spec, the full
campaign directory — admission log, journal, telemetry, and every
experiment's artifact tree — is byte-identical

* for ``--jobs 1`` and ``--jobs 4`` (admission order is a pure function
  of the spec; outcomes merge through the reorder buffer), and
* after a mid-campaign crash followed by ``--resume``.

Admission-plan invariants are cheap pure functions and get a wide
hypothesis sweep; whole-campaign executions are expensive, so those
properties run fewer seeded examples but compare entire trees.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignSpec, ExperimentSpec, plan_admission, run_campaign

POOL = ["alpha", "beta", "gamma"]
USERS = ["alice", "bob"]


@st.composite
def campaign_specs(draw, max_experiments=4, with_deadlines=True):
    count = draw(st.integers(min_value=1, max_value=max_experiments))
    experiments = []
    for index in range(count):
        duration = float(draw(st.sampled_from([30, 60, 90, 120])))
        deadline = None
        if with_deadlines and draw(st.booleans()):
            # Sometimes generous, sometimes tight enough to reject.
            deadline = duration * draw(st.sampled_from([1, 4]))
        experiments.append(
            ExperimentSpec(
                name=f"exp-{index}",
                user=draw(st.sampled_from(USERS)),
                nodes=draw(st.integers(min_value=1, max_value=len(POOL))),
                duration=duration,
                submit_index=index,
                priority=draw(st.integers(min_value=0, max_value=9)),
                deadline=deadline,
                rates=[100 * (1 + draw(st.integers(min_value=0, max_value=2)))],
            )
        )
    return CampaignSpec(
        name="prop",
        pool=list(POOL),
        experiments=experiments,
        max_active_per_user=draw(st.sampled_from([None, 1, 2])),
    )


# --------------------------------------------------------------------------
# admission plan invariants (pure function — wide sweep)
# --------------------------------------------------------------------------


@given(spec=campaign_specs(max_experiments=8))
@settings(max_examples=200, deadline=None)
def test_admission_plan_invariants(spec):
    plan = plan_admission(spec)
    # Every experiment gets exactly one decision.
    assert len(plan.admitted) + len(plan.rejected) == len(spec.experiments)
    per_node = {}
    for placement in plan.admitted:
        assert placement.end == placement.start + placement.spec.duration
        assert len(placement.nodes) == placement.spec.node_count
        assert set(placement.nodes) <= set(spec.pool)
        if placement.spec.deadline is not None:
            assert placement.end <= placement.spec.deadline
        for node in placement.nodes:
            per_node.setdefault(node, []).append(placement)
    # No two placements ever share a node concurrently (half-open).
    for placements in per_node.values():
        placements.sort(key=lambda p: p.start)
        for earlier, later in zip(placements, placements[1:]):
            assert earlier.end <= later.start
    # The fairness cap bounds *instantaneous* concurrency: check it at
    # every window start (concurrency only rises at a start point).
    if spec.max_active_per_user is not None:
        by_user = {}
        for placement in plan.admitted:
            by_user.setdefault(placement.spec.user, []).append(placement)
        for placements in by_user.values():
            for placement in placements:
                moment = placement.start
                active = sum(
                    1 for other in placements
                    if other.start <= moment < other.end
                )
                assert active <= spec.max_active_per_user


@given(spec=campaign_specs(max_experiments=8))
@settings(max_examples=50, deadline=None)
def test_admission_plan_is_reproducible(spec):
    assert plan_admission(spec).entries() == plan_admission(spec).entries()


# --------------------------------------------------------------------------
# whole-tree byte identity (expensive — few seeded examples)
# --------------------------------------------------------------------------


def tree_snapshot(root):
    """Map of relative path -> file bytes for a whole directory tree."""
    snapshot = {}
    for dirpath, __, filenames in os.walk(root):
        for filename in filenames:
            path = os.path.join(dirpath, filename)
            with open(path, "rb") as handle:
                snapshot[os.path.relpath(path, root)] = handle.read()
    return snapshot


def assert_identical_trees(left, right):
    a, b = tree_snapshot(left), tree_snapshot(right)
    assert sorted(a) == sorted(b)
    different = [path for path in a if a[path] != b[path]]
    assert different == [], f"trees differ in: {different}"


@given(spec=campaign_specs(max_experiments=3, with_deadlines=False))
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_jobs1_and_jobs4_trees_are_byte_identical(spec):
    workdir = tempfile.mkdtemp(prefix="campaign-prop-")
    try:
        serial = os.path.join(workdir, "serial")
        parallel = os.path.join(workdir, "parallel")
        assert run_campaign(spec, serial, jobs=1).ok
        assert run_campaign(spec, parallel, jobs=4).ok
        assert_identical_trees(serial, parallel)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


class PlannedCrash(RuntimeError):
    """Simulated campaign-runner death; not a PosError, nothing handles it."""


@given(
    spec=campaign_specs(max_experiments=3, with_deadlines=False),
    crash_after=st.integers(min_value=1, max_value=2),
)
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_crash_and_resume_tree_is_byte_identical(spec, crash_after):
    workdir = tempfile.mkdtemp(prefix="campaign-crash-")
    try:
        baseline = os.path.join(workdir, "baseline")
        crashed = os.path.join(workdir, "crashed")
        assert run_campaign(spec, baseline, jobs=1).ok

        seen = {"count": 0}

        def crash(outcome):
            seen["count"] += 1
            if seen["count"] >= crash_after:
                raise PlannedCrash(f"killed after {crash_after}")

        total = len(plan_admission(spec).admitted)
        if total >= crash_after:
            with pytest.raises(PlannedCrash):
                run_campaign(spec, crashed, jobs=4,
                             on_experiment_complete=crash)
        else:
            # Too few deliveries to ever trigger the crash callback.
            assert run_campaign(spec, crashed, jobs=4,
                                on_experiment_complete=crash).ok
        assert run_campaign(spec, crashed, jobs=4, resume=True).ok
        assert_identical_trees(baseline, crashed)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
