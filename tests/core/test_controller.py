"""Integration tests for the testbed controller workflow."""

from __future__ import annotations

import os

import pytest

from repro.core import yamlite
from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import POS_TOOLS_PATH, Controller
from repro.core.errors import AllocationError, ScriptError
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.netsim.host import SimHost
from repro.testbed.images import default_registry
from repro.testbed.node import Node, NodeState
from repro.testbed.power import FlakyPowerControl, IpmiController
from repro.testbed.transport import SshTransport


def make_node(name, power_class=IpmiController, **power_kwargs):
    host = SimHost(name)
    return Node(
        name,
        host=host,
        power=power_class(host, **power_kwargs),
        transport=SshTransport(host),
    )


def make_testbed(tmp_path, node_names=("tartu", "riga"), progress=None):
    nodes = {name: make_node(name) for name in node_names}
    calendar = Calendar(clock=lambda: 1000.0)
    allocator = Allocator(calendar, nodes)
    results = ResultStore(str(tmp_path / "results"), clock=lambda: 1600000000.0)
    controller = Controller(allocator, default_registry(), results, progress=progress)
    return controller, nodes, allocator


def simple_experiment(loop_vars=None, dut_measure=None, duration=60.0):
    roles = [
        Role(
            name="dut",
            node="tartu",
            setup=CommandScript("dut-setup", [
                "sysctl -w net.ipv4.ip_forward=1",
                "pos barrier setup-done",
            ]),
            measurement=dut_measure or CommandScript("dut-measure", [
                "echo measuring at $pkt_rate",
            ]),
        ),
        Role(
            name="loadgen",
            node="riga",
            setup=CommandScript("lg-setup", ["pos barrier setup-done"]),
            measurement=CommandScript("lg-measure", ["echo load $pkt_rate"]),
        ),
    ]
    return Experiment(
        name="exp",
        roles=roles,
        variables=Variables(loop_vars=loop_vars or {"pkt_rate": [100, 200]}),
        duration_s=duration,
    )


class TestHappyPath:
    def test_full_workflow(self, tmp_path):
        controller, nodes, __ = make_testbed(tmp_path)
        handle = controller.run(simple_experiment())
        assert handle.completed_runs == 2
        assert handle.failed_runs == 0
        assert not handle.aborted
        # Nodes were booted with the pinned image and freed afterwards.
        assert nodes["tartu"].host.image == "debian-buster"
        assert nodes["tartu"].state is NodeState.FREE

    def test_result_tree_layout(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        handle = controller.run(simple_experiment())
        entries = sorted(os.listdir(handle.result_path))
        assert "experiment.yml" in entries
        assert "variables.yml" in entries
        assert "inventory.yml" in entries
        assert "scripts.yml" in entries
        assert "run-000" in entries and "run-001" in entries
        assert "setup" in entries

    def test_run_metadata_has_loop_instance(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        handle = controller.run(simple_experiment())
        metadata = yamlite.load_file(
            os.path.join(handle.result_path, "run-001", "metadata.yml")
        )
        assert metadata["loop"] == {"pkt_rate": 200}

    def test_command_output_captured_per_role(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        handle = controller.run(simple_experiment())
        with open(os.path.join(
            handle.result_path, "run-000", "loadgen", "commands.log"
        )) as handle_file:
            content = handle_file.read()
        assert "load 100" in content

    def test_loop_variables_substituted_per_run(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        handle = controller.run(simple_experiment())
        with open(os.path.join(
            handle.result_path, "run-001", "dut", "commands.log"
        )) as handle_file:
            assert "measuring at 200" in handle_file.read()

    def test_tools_deployed_before_setup(self, tmp_path):
        controller, nodes, __ = make_testbed(tmp_path)
        controller.run(simple_experiment())
        assert POS_TOOLS_PATH in nodes["tartu"].host.filesystem

    def test_progress_callback(self, tmp_path):
        seen = []
        controller, __, __ = make_testbed(
            tmp_path, progress=lambda done, total: seen.append((done, total))
        )
        controller.run(simple_experiment())
        assert seen == [(1, 2), (2, 2)]

    def test_max_runs_limits_cross_product(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        handle = controller.run(
            simple_experiment(loop_vars={"pkt_rate": [1, 2, 3, 4]}), max_runs=2
        )
        assert handle.completed_runs == 2

    def test_inventory_records_image_pin(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        handle = controller.run(simple_experiment())
        inventory = yamlite.load_file(
            os.path.join(handle.result_path, "inventory.yml")
        )
        dut = inventory["nodes"]["tartu"]
        assert dut["image"]["name"] == "debian-buster"
        assert dut["power"]["protocol"] == "ipmi"

    def test_evaluation_hook_runs_after_measurements(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        seen = {}
        experiment = simple_experiment()
        experiment.evaluation = lambda path: seen.setdefault("path", path)
        handle = controller.run(experiment)
        assert seen["path"] == handle.result_path


class TestLiveBootSemantics:
    def test_state_does_not_leak_between_experiments(self, tmp_path):
        """R3: live images enforce a clean slate.  A file written during
        experiment 1 must be gone in experiment 2."""
        controller, nodes, __ = make_testbed(tmp_path)
        polluting = simple_experiment(
            dut_measure=CommandScript("dirty", ["write-file /tmp/state leftover"]),
        )
        controller.run(polluting)
        assert "/tmp/state" in nodes["tartu"].host.filesystem
        checking = simple_experiment(
            dut_measure=CommandScript("check", ["-cat /tmp/state", "echo done"]),
        )
        handle = controller.run(checking)
        assert handle.completed_runs == 2
        assert "/tmp/state" not in nodes["tartu"].host.filesystem

    def test_sysctl_reset_between_experiments(self, tmp_path):
        controller, nodes, __ = make_testbed(tmp_path)
        controller.run(simple_experiment())
        assert nodes["tartu"].host.sysctl["net.ipv4.ip_forward"] == "1"
        # A second experiment whose setup does NOT enable forwarding
        # starts from the default-off state, not the leaked one.
        experiment = simple_experiment()
        experiment.roles[0].setup = CommandScript(
            "dut-setup", ["pos barrier setup-done"]
        )
        controller.run(experiment)
        assert nodes["tartu"].host.sysctl["net.ipv4.ip_forward"] == "0"


class TestBarriers:
    def test_missing_setup_barrier_fails_experiment(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        experiment = simple_experiment()
        # loadgen never reaches the setup barrier.
        experiment.roles[1].setup = CommandScript("lg-setup", ["true"])
        with pytest.raises(Exception, match="barrier"):
            controller.run(experiment)

    def test_measurement_barrier_mismatch_fails_run(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        experiment = simple_experiment()
        experiment.roles[0].measurement = CommandScript(
            "dut-measure", ["pos barrier run-done"]
        )
        # loadgen does not hit run-done.
        handle = controller.run(experiment, on_error="continue")
        assert handle.failed_runs == 2


class TestErrorPolicies:
    def failing_experiment(self, fail_on="200"):
        dut_measure = CommandScript("dut-measure", [
            f"echo rate $pkt_rate",
            # 'false' only when the loop variable matches the failing rate.
            f"-write-file /tmp/rate $pkt_rate",
        ])
        return simple_experiment(dut_measure=dut_measure)

    def test_abort_policy_raises_and_marks_aborted(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        experiment = simple_experiment(
            dut_measure=CommandScript("dut-measure", ["false"]),
        )
        with pytest.raises(ScriptError):
            controller.run(experiment, on_error="abort")

    def test_abort_releases_allocation(self, tmp_path):
        controller, nodes, allocator = make_testbed(tmp_path)
        experiment = simple_experiment(
            dut_measure=CommandScript("dut-measure", ["false"]),
        )
        with pytest.raises(ScriptError):
            controller.run(experiment)
        assert nodes["tartu"].state is NodeState.FREE
        # And a new experiment can allocate immediately — but the earlier
        # booking window is gone from the calendar too.
        controller.run(simple_experiment())

    def test_continue_policy_records_failures(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        experiment = simple_experiment(
            dut_measure=CommandScript("dut-measure", ["false"]),
        )
        handle = controller.run(experiment, on_error="continue")
        assert handle.failed_runs == 2
        assert handle.completed_runs == 0
        assert not handle.aborted

    def test_failed_run_recorded_in_result_tree(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        experiment = simple_experiment(
            dut_measure=CommandScript("dut-measure", ["false"]),
        )
        handle = controller.run(experiment, on_error="continue")
        status = yamlite.load_file(os.path.join(
            handle.result_path, "run-000", "dut", "status.yml"
        ))
        assert status["ok"] is False

    def test_unknown_policy_rejected(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        with pytest.raises(Exception, match="policy"):
            controller.run(simple_experiment(), on_error="shrug")

    def test_setup_failure_aborts_before_any_run(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        experiment = simple_experiment()
        experiment.roles[0].setup = CommandScript("dut-setup", ["false"])
        with pytest.raises(ScriptError, match="setup"):
            controller.run(experiment)
        # No run directory was created.
        results_root = str(tmp_path / "results")
        run_dirs = [
            name
            for __, dirs, __ in os.walk(results_root)
            for name in dirs
            if name.startswith("run-")
        ]
        assert run_dirs == []


class TestRecovery:
    def test_recover_policy_power_cycles_and_retries(self, tmp_path):
        """A run that wedges the DuT is retried once after an out-of-band
        power cycle and setup replay (R3)."""
        controller, nodes, __ = make_testbed(tmp_path)
        state = {"wedged_once": False}

        def wedging_measure(ctx):
            if not state["wedged_once"]:
                state["wedged_once"] = True
                ctx.node.host.wedge()
                ctx.tools.run("echo this will fail")  # transport error

        experiment = simple_experiment(
            dut_measure=PythonScript("dut-measure", wedging_measure),
        )
        boot_count_before = nodes["tartu"].host.boot_count
        handle = controller.run(experiment, on_error="recover")
        assert handle.completed_runs == 2
        assert any(record.retried for record in handle.runs)
        # An extra boot happened for the recovery.
        assert nodes["tartu"].host.boot_count > boot_count_before + 1

    def test_flaky_power_is_retried_transparently(self, tmp_path):
        nodes = {
            "tartu": make_node("tartu", power_class=FlakyPowerControl, failures=2),
            "riga": make_node("riga"),
        }
        calendar = Calendar(clock=lambda: 1000.0)
        allocator = Allocator(calendar, nodes)
        results = ResultStore(str(tmp_path / "results"), clock=lambda: 1.0)
        controller = Controller(allocator, default_registry(), results)
        handle = controller.run(simple_experiment())
        assert handle.completed_runs == 2


class TestAllocationInteraction:
    def test_concurrent_experiments_on_same_node_rejected(self, tmp_path):
        controller, nodes, allocator = make_testbed(tmp_path)
        allocator.allocate("someone-else", ["tartu"], duration=3600.0)
        with pytest.raises(AllocationError):
            controller.run(simple_experiment())


class TestAsyncEvaluation:
    def test_on_run_complete_fires_per_run_with_run_dir(self, tmp_path):
        """The paper's asynchronous evaluation: results can be processed
        'asynchronously during their runtime'."""
        controller, __, __ = make_testbed(tmp_path)
        seen = []

        def live_eval(record, run_path):
            assert os.path.isdir(run_path)
            assert os.path.isfile(os.path.join(run_path, "metadata.yml"))
            seen.append((record.index, record.ok, record.loop_instance))

        handle = controller.run(
            simple_experiment(), on_run_complete=live_eval
        )
        assert seen == [
            (0, True, {"pkt_rate": 100}),
            (1, True, {"pkt_rate": 200}),
        ]

    def test_on_run_complete_sees_failures(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        outcomes = []
        experiment = simple_experiment(
            dut_measure=CommandScript("dut-measure", ["false"]),
        )
        controller.run(
            experiment,
            on_error="continue",
            on_run_complete=lambda record, path: outcomes.append(record.ok),
        )
        assert outcomes == [False, False]

    def test_live_evaluation_can_aggregate_partial_series(self, tmp_path):
        """An asynchronous evaluator builds the throughput series while
        the experiment is still running."""
        controller, __, __ = make_testbed(tmp_path)
        partial_series = []

        def live_eval(record, run_path):
            partial_series.append(
                (record.loop_instance["pkt_rate"], len(partial_series) + 1)
            )

        controller.run(
            simple_experiment(loop_vars={"pkt_rate": [1, 2, 3]}),
            on_run_complete=live_eval,
        )
        assert [rate for rate, __ in partial_series] == [1, 2, 3]


class TestWorkflowLog:
    def test_controller_log_traces_all_phases(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        handle = controller.run(simple_experiment())
        with open(os.path.join(handle.result_path, "controller.log")) as f:
            log = f.read()
        assert "allocated nodes: tartu, riga" in log
        assert "live-booted" in log
        assert "utility tools deployed" in log
        assert "2 runs queued" in log
        assert "run 0: {'pkt_rate': 100} -> ok" in log
        assert "nodes released" in log
        # Sequence numbers are strictly increasing.
        numbers = [int(line[1:5]) for line in log.splitlines()]
        assert numbers == sorted(numbers) and len(set(numbers)) == len(numbers)

    def test_aborted_experiment_logged(self, tmp_path):
        controller, __, __ = make_testbed(tmp_path)
        experiment = simple_experiment(
            dut_measure=CommandScript("dut-measure", ["false"]),
        )
        with pytest.raises(ScriptError):
            controller.run(experiment)
        import glob
        logs = glob.glob(str(tmp_path / "results" / "**" / "controller.log"),
                         recursive=True)
        with open(logs[0]) as f:
            content = f.read()
        assert "ABORTED" in content

    def test_log_is_deterministic(self, tmp_path):
        logs = []
        for sub in ("a", "b"):
            controller, __, __ = make_testbed(tmp_path / sub)
            handle = controller.run(simple_experiment())
            with open(os.path.join(handle.result_path, "controller.log")) as f:
                logs.append(f.read())
        assert logs[0] == logs[1]
