"""Unit and end-to-end tests for the multi-tenant campaign scheduler.

Covers the full stack: spec parsing/validation, the deterministic
admission planner (priority, backfill, fairness, deadlines), the
campaign journal, the dispatch machinery, campaign telemetry and the
published index, the status report, and the ``pos campaign`` CLI.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.campaign import (
    CampaignJournal,
    CampaignSpec,
    ExperimentSpec,
    campaign_status,
    load_campaign,
    plan_admission,
    run_campaign,
)
from repro.campaign.admission import ADMISSION_NAME
from repro.campaign.workload import (
    build_campaign_experiment,
    inspect_result_dir,
)
from repro.cli.main import build_parser, main
from repro.core.errors import CampaignError, JournalError
from repro.core.journal import JOURNAL_NAME


def make_spec(experiments, pool=("alpha", "beta", "gamma"), **kwargs):
    specs = [
        ExperimentSpec(submit_index=index, **raw)
        for index, raw in enumerate(experiments)
    ]
    return CampaignSpec(
        name="camp", pool=list(pool), experiments=specs, **kwargs
    )


def write_campaign_file(path, body):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(body)
    return str(path)


SMALL_CAMPAIGN = """\
name: demo
pool: [alpha, beta]
max_active_per_user: 2
experiments:
  - name: sweep-a
    user: alice
    nodes: 2
    duration: 60
    priority: 5
    rates: [100]
  - name: sweep-b
    user: bob
    nodes: 1
    duration: 30
    rates: [200]
"""


# --------------------------------------------------------------------------
# spec parsing and validation
# --------------------------------------------------------------------------


class TestSpec:
    def test_load_assigns_submit_indices_in_file_order(self, tmp_path):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        from repro.campaign import load_campaign_file

        spec = load_campaign_file(path)
        assert [e.submit_index for e in spec.experiments] == [0, 1]
        assert spec.experiments[0].priority == 5
        assert spec.experiments[1].priority == 0
        assert spec.max_active_per_user == 2

    def test_empty_pool_rejected(self):
        with pytest.raises(CampaignError, match="non-empty node pool"):
            make_spec(
                [dict(name="a", user="u", nodes=1, duration=10.0)], pool=()
            ).validate()

    def test_duplicate_experiment_names_per_user_rejected(self):
        spec = make_spec([
            dict(name="a", user="u", nodes=1, duration=10.0),
            dict(name="a", user="u", nodes=1, duration=10.0),
        ])
        with pytest.raises(CampaignError, match="duplicate experiment"):
            spec.validate()

    def test_same_name_different_users_allowed(self):
        make_spec([
            dict(name="a", user="alice", nodes=1, duration=10.0),
            dict(name="a", user="bob", nodes=1, duration=10.0),
        ]).validate()

    def test_deadline_shorter_than_duration_rejected(self):
        spec = make_spec(
            [dict(name="a", user="u", nodes=1, duration=100.0, deadline=50.0)]
        )
        with pytest.raises(CampaignError, match="deadline"):
            spec.validate()

    def test_node_count_exceeding_pool_rejected(self):
        spec = make_spec([dict(name="a", user="u", nodes=9, duration=10.0)])
        with pytest.raises(CampaignError, match="wants 9 nodes"):
            spec.validate()

    def test_explicit_nodes_outside_pool_rejected(self):
        spec = make_spec(
            [dict(name="a", user="u", nodes=["zeta"], duration=10.0)]
        )
        with pytest.raises(CampaignError, match="outside"):
            spec.validate()

    def test_bool_priority_rejected(self):
        with pytest.raises(CampaignError, match="priority"):
            load_campaign({
                "name": "c", "pool": ["n"],
                "experiments": [
                    {"name": "a", "user": "u", "duration": 10,
                     "priority": True}
                ],
            })

    def test_non_mapping_document_rejected(self):
        with pytest.raises(CampaignError, match="mapping"):
            load_campaign(["not", "a", "mapping"])

    @pytest.mark.parametrize("mutate, message", [
        (lambda s: setattr(s, "name", ""), "needs a name"),
        (lambda s: setattr(s, "pool", ["n", "n"]), "duplicate nodes in pool"),
        (lambda s: setattr(s, "experiments", []), "submits no experiments"),
        (lambda s: setattr(s, "max_active_per_user", 0), "at least 1"),
        (lambda s: setattr(s.experiments[0], "name", ""), "needs a name"),
        (lambda s: setattr(s.experiments[0], "user", ""), "needs a user"),
        (lambda s: setattr(s.experiments[0], "duration", 0.0), "positive"),
        (lambda s: setattr(s.experiments[0], "rates", []), "empty rates"),
        (lambda s: setattr(s.experiments[0], "nodes", 0), ">= 1"),
        (lambda s: setattr(s.experiments[0], "nodes", []), "empty node list"),
        (lambda s: setattr(s.experiments[0], "nodes", ["alpha", "alpha"]),
         "duplicate nodes"),
    ])
    def test_validation_rejects_each_malformed_field(self, mutate, message):
        spec = make_spec([dict(name="a", user="u", nodes=1, duration=10.0)])
        mutate(spec)
        with pytest.raises(CampaignError, match=message):
            spec.validate()

    @pytest.mark.parametrize("document, message", [
        ({"name": "c", "pool": ["n"]}, "'experiments' list"),
        ({"name": "c", "pool": ["n"], "experiments": ["x"]},
         "must be a mapping"),
        ({"name": "c", "pool": "n",
          "experiments": [{"name": "a", "user": "u", "duration": 1}]},
         "'pool' list"),
        ({"name": "c", "pool": ["n"],
          "experiments": [{"name": "a", "user": "u", "duration": "soon"}]},
         "must be a number"),
        ({"name": "c", "pool": ["n"],
          "experiments": [{"name": "a", "user": "u", "duration": 1,
                           "rates": 100}]},
         "rates must be a list"),
        ({"name": "c", "pool": ["n"],
          "experiments": [{"name": "a", "user": "u", "duration": 1,
                           "nodes": "n"}]},
         "must be an integer"),
    ])
    def test_loader_rejects_each_malformed_document(self, document, message):
        with pytest.raises(CampaignError, match=message):
            load_campaign(document)


# --------------------------------------------------------------------------
# admission planning
# --------------------------------------------------------------------------


class TestAdmission:
    def test_priority_order_with_submit_index_tiebreak(self):
        plan = plan_admission(make_spec([
            dict(name="low", user="u", nodes=1, duration=10.0, priority=1),
            dict(name="hi-late", user="u", nodes=1, duration=10.0, priority=5),
            dict(name="hi-early", user="v", nodes=1, duration=10.0, priority=5),
        ]))
        names = [p.spec.name for p in plan.admitted]
        # Priority first; equal priorities fall back to file order.
        assert names == ["hi-late", "hi-early", "low"]

    def test_whole_pool_requests_serialize_back_to_back(self):
        plan = plan_admission(make_spec([
            dict(name="a", user="u", nodes=3, duration=100.0),
            dict(name="b", user="v", nodes=3, duration=50.0),
        ]))
        (first, second) = plan.admitted
        assert (first.start, first.end) == (0.0, 100.0)
        # Half-open windows: the follow-up starts exactly at the end.
        assert (second.start, second.end) == (100.0, 150.0)

    def test_small_job_backfills_without_delaying_big_ones(self):
        plan = plan_admission(make_spec([
            dict(name="big", user="u", nodes=2, duration=100.0, priority=9),
            dict(name="small", user="v", nodes=1, duration=100.0, priority=0),
        ]))
        by_name = {p.spec.name: p for p in plan.admitted}
        # Pool has three nodes; the small job fits beside the big one.
        assert by_name["big"].start == 0.0
        assert by_name["small"].start == 0.0
        assert not set(by_name["big"].nodes) & set(by_name["small"].nodes)

    def test_fairness_cap_delays_same_user(self):
        plan = plan_admission(make_spec(
            [
                dict(name="a", user="u", nodes=1, duration=60.0),
                dict(name="b", user="u", nodes=1, duration=60.0),
            ],
            max_active_per_user=1,
        ))
        starts = sorted(p.start for p in plan.admitted)
        # Two free nodes exist, but the cap forces serialization.
        assert starts == [0.0, 60.0]

    def test_deadline_miss_is_rejected_with_reason(self):
        plan = plan_admission(make_spec([
            dict(name="hog", user="u", nodes=3, duration=100.0, priority=9),
            dict(name="late", user="v", nodes=3, duration=50.0, deadline=60.0),
        ]))
        assert [p.spec.name for p in plan.admitted] == ["hog"]
        assert len(plan.rejected) == 1
        assert "deadline" in plan.rejected[0].reason

    def test_explicit_node_request_keeps_those_nodes(self):
        plan = plan_admission(make_spec([
            dict(name="a", user="u", nodes=["gamma", "alpha"], duration=10.0),
        ]))
        assert plan.admitted[0].nodes == ["alpha", "gamma"]

    def test_no_node_window_overlap_ever(self):
        plan = plan_admission(make_spec([
            dict(name=f"e{i}", user="u", nodes=2, duration=30.0)
            for i in range(5)
        ]))
        per_node = {}
        for placement in plan.admitted:
            for node in placement.nodes:
                per_node.setdefault(node, []).append(placement)
        for placements in per_node.values():
            placements.sort(key=lambda p: p.start)
            for earlier, later in zip(placements, placements[1:]):
                assert earlier.end <= later.start

    def test_plan_is_a_pure_function_of_the_spec(self):
        experiments = [
            dict(name="a", user="u", nodes=2, duration=60.0, priority=3),
            dict(name="b", user="v", nodes=1, duration=45.0),
            dict(name="c", user="u", nodes=3, duration=20.0, priority=7),
        ]
        first = plan_admission(make_spec(experiments)).entries()
        second = plan_admission(make_spec(experiments)).entries()
        assert first == second

    def test_dispatch_order_and_predecessors(self):
        plan = plan_admission(make_spec([
            dict(name="a", user="u", nodes=3, duration=50.0, priority=9),
            dict(name="b", user="v", nodes=1, duration=30.0),
        ]))
        order = plan.dispatch_order()
        assert [p.spec.name for p in order] == ["a", "b"]
        predecessors = plan.predecessors(order[1])
        assert [p.spec.name for p in predecessors] == ["a"]
        assert plan.predecessors(order[0]) == []

    def test_admission_log_round_trips_as_jsonl(self, tmp_path):
        plan = plan_admission(make_spec([
            dict(name="a", user="u", nodes=1, duration=10.0),
        ]))
        path = plan.write(str(tmp_path))
        assert os.path.basename(path) == ADMISSION_NAME
        with open(path) as handle:
            entries = [json.loads(line) for line in handle]
        assert entries == plan.entries()


# --------------------------------------------------------------------------
# campaign journal
# --------------------------------------------------------------------------


class TestCampaignJournal:
    def test_header_and_entries(self, tmp_path):
        journal = CampaignJournal.create(str(tmp_path), "camp", 2)
        journal.record_experiment(
            0, "a", "u", ok=True, result_dir="experiments/u/a/x",
            runs_completed=2,
        )
        journal.close()
        reopened = CampaignJournal.open(str(tmp_path))
        assert reopened.header["name"] == "camp"
        assert list(reopened.completed()) == [0]
        reopened.close()

    def test_failed_experiments_are_not_completed(self, tmp_path):
        journal = CampaignJournal.create(str(tmp_path), "camp", 2)
        journal.record_experiment(0, "a", "u", ok=False, error="boom")
        journal.record_experiment(1, "b", "u", ok=True, runs_completed=1)
        assert list(journal.completed()) == [1]
        journal.close()

    def test_validate_against_rejects_other_campaigns(self, tmp_path):
        CampaignJournal.create(str(tmp_path), "camp", 2).close()
        journal = CampaignJournal.open(str(tmp_path))
        with pytest.raises(JournalError, match="belongs to"):
            journal.validate_against("other", 2)
        with pytest.raises(JournalError, match="refusing to resume"):
            journal.validate_against("camp", 5)
        journal.close()

    def test_open_without_header_raises(self, tmp_path):
        path = os.path.join(str(tmp_path), JOURNAL_NAME)
        with open(path, "w") as handle:
            handle.write('{"event": "experiment", "index": 0}\n')
        with pytest.raises(JournalError, match="no campaign header"):
            CampaignJournal.open(str(tmp_path))


# --------------------------------------------------------------------------
# workload construction
# --------------------------------------------------------------------------


class TestWorkload:
    def test_experiment_shape_is_deterministic(self):
        experiment = build_campaign_experiment(
            "sweep", ["beta", "alpha"], 60.0, [100, 200]
        )
        assert [role.node for role in experiment.roles] == ["alpha", "beta"]
        assert experiment.variables.loop_vars == {"pkt_rate": [100, 200]}

    def test_inspect_missing_dir(self, tmp_path):
        assert inspect_result_dir(str(tmp_path / "nope"), 2) == "missing"

    def test_inspect_unreadable_journal_wipes_the_tree(self, tmp_path):
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "run-000").mkdir()
        assert inspect_result_dir(str(broken), 2) == "missing"
        assert not broken.exists()


# --------------------------------------------------------------------------
# end-to-end campaign execution
# --------------------------------------------------------------------------


class TestRunCampaign:
    def test_small_campaign_end_to_end(self, tmp_path):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        target = str(tmp_path / "out")
        result = run_campaign(path, target, jobs=1)
        assert result.ok
        assert result.admitted == 2 and result.rejected == 0
        assert result.completed_experiments == 2
        # All the campaign-level artifacts exist.
        for name in (ADMISSION_NAME, JOURNAL_NAME, "campaign.json",
                     "campaign-trace.jsonl", "index.html"):
            assert os.path.isfile(os.path.join(target, name)), name
        # Every experiment landed in its own per-user tree.
        assert os.path.isdir(os.path.join(target, "experiments", "alice",
                                          "sweep-a"))
        assert os.path.isdir(os.path.join(target, "experiments", "bob",
                                          "sweep-b"))

    def test_campaign_summary_contents(self, tmp_path):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        target = str(tmp_path / "out")
        run_campaign(path, target, jobs=1)
        with open(os.path.join(target, "campaign.json")) as handle:
            summary = json.load(handle)
        assert summary["ok"] is True
        assert summary["pool"] == ["alpha", "beta"]
        assert set(summary["users"]) == {"alice", "bob"}
        assert summary["users"]["alice"]["experiments"] == 1
        assert [e["name"] for e in summary["experiments"]] == [
            "sweep-a", "sweep-b"
        ]

    def test_journal_entries_follow_admission_order(self, tmp_path):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        target = str(tmp_path / "out")
        run_campaign(path, target, jobs=2)
        with open(os.path.join(target, JOURNAL_NAME)) as handle:
            entries = [json.loads(line) for line in handle]
        assert entries[0]["event"] == "campaign"
        indices = [e["index"] for e in entries if e["event"] == "experiment"]
        assert indices == sorted(indices)
        assert entries[-1] == {"event": "complete", "ok": True}

    def test_rerun_without_resume_never_duplicates_run_dirs(self, tmp_path):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        target = str(tmp_path / "out")
        run_campaign(path, target, jobs=1)
        run_campaign(path, target, jobs=1)  # fresh re-run over old trees
        sweep = os.path.join(target, "experiments", "alice", "sweep-a")
        stamps = os.listdir(sweep)
        assert len(stamps) == 1
        runs = [entry for entry in os.listdir(os.path.join(sweep, stamps[0]))
                if entry.startswith("run-")]
        assert runs == ["run-000"]

    def test_resume_of_a_finished_campaign_is_a_no_op(self, tmp_path):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        target = str(tmp_path / "out")
        run_campaign(path, target, jobs=1)
        with open(os.path.join(target, JOURNAL_NAME), "rb") as handle:
            before = handle.read()
        result = run_campaign(path, target, jobs=1, resume=True)
        assert result.ok
        with open(os.path.join(target, JOURNAL_NAME), "rb") as handle:
            after = handle.read()
        assert before == after

    def test_resume_without_journal_raises(self, tmp_path):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        with pytest.raises(JournalError, match="nothing to resume"):
            run_campaign(path, str(tmp_path / "empty"), jobs=1, resume=True)

    def test_progress_callback_counts_up(self, tmp_path):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        seen = []
        run_campaign(path, str(tmp_path / "out"), jobs=1,
                     progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_published_index_links_every_experiment(self, tmp_path):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        target = str(tmp_path / "out")
        run_campaign(path, target, jobs=1)
        with open(os.path.join(target, "index.html")) as handle:
            html = handle.read()
        assert "sweep-a" in html and "sweep-b" in html
        assert "alice" in html and "bob" in html


class TestResumePartialTree:
    def test_partial_experiment_tree_is_resumed_to_byte_identity(self, tmp_path):
        """A campaign crash can leave one experiment half-run: its own
        journal has a trustworthy prefix.  Campaign resume must hand it
        to the run-level resume and reconverge on identical bytes."""
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        target = str(tmp_path / "out")
        run_campaign(path, target, jobs=1)

        def snapshot(root):
            files = {}
            for dirpath, __, filenames in os.walk(root):
                for filename in filenames:
                    full = os.path.join(dirpath, filename)
                    with open(full, "rb") as handle:
                        files[os.path.relpath(full, root)] = handle.read()
            return files

        baseline = snapshot(target)

        # Doctor sweep-b (execution index 1) back to "mid-run": drop its
        # run directory and journal records, and cut the campaign
        # journal back to before its entry.
        sweep = os.path.join(target, "experiments", "bob", "sweep-b")
        stamp = os.path.join(sweep, os.listdir(sweep)[0])
        shutil.rmtree(os.path.join(stamp, "run-000"))
        for victim in ("metadata.yml",):
            victim_path = os.path.join(stamp, victim)
            if os.path.isfile(victim_path):
                os.unlink(victim_path)
        exp_journal = os.path.join(stamp, JOURNAL_NAME)
        with open(exp_journal, "rb") as handle:
            first_line_len = len(handle.read().splitlines(keepends=True)[0])
        with open(exp_journal, "r+b") as handle:
            handle.truncate(first_line_len)
        campaign_journal = os.path.join(target, JOURNAL_NAME)
        with open(campaign_journal, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        with open(campaign_journal, "wb") as handle:
            handle.write(b"".join(lines[:2]))  # header + experiment 0

        result = run_campaign(path, target, jobs=1, resume=True)
        assert result.ok
        resumed = snapshot(target)
        assert sorted(resumed) == sorted(baseline)
        different = [name for name in baseline
                     if resumed[name] != baseline[name]]
        # Everything reconverges byte for byte except the resumed
        # experiment's controller.log: an append-only execution log
        # that records the resume itself as history, by design.
        assert different in ([], [
            os.path.relpath(os.path.join(stamp, "controller.log"), target)
        ])


class TestRunPlacementErrors:
    def test_failing_placement_reports_instead_of_raising(self, tmp_path):
        """A PosError inside the worker becomes a not-ok outcome: the
        campaign journals the failure and keeps going."""
        from repro.campaign.workload import run_placement

        outcome = run_placement({
            "campaign_dir": str(tmp_path),
            "index": 0,
            "name": "ghost",
            "user": "alice",
            "nodes": ["alpha"],
            "duration": 10.0,
            "rates": [100],
            "epoch": 1_600_000_000.0,
            "mode": "resume",  # nothing to resume -> JournalError
        })
        assert outcome["ok"] is False
        assert outcome["error"]
        assert outcome["runs_completed"] == 0


class TestDescribe:
    def test_spec_describe_round_trips_the_interesting_fields(self):
        spec = make_spec(
            [dict(name="a", user="u", nodes=2, duration=60.0, priority=3,
                  deadline=600.0, rates=[100])],
            max_active_per_user=2,
        )
        described = spec.describe()
        assert described["max_active_per_user"] == 2
        assert described["experiments"][0]["deadline"] == 600.0
        assert described["experiments"][0]["priority"] == 3


# --------------------------------------------------------------------------
# status report
# --------------------------------------------------------------------------


class TestStatus:
    def test_status_of_finished_campaign(self, tmp_path):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        target = str(tmp_path / "out")
        run_campaign(path, target, jobs=1)
        report = campaign_status(target)
        assert "campaign: demo" in report
        assert "finished: 2/2" in report
        assert "[complete]" in report
        assert "alice/sweep-a" in report

    def test_status_before_any_execution(self, tmp_path):
        spec = make_spec([dict(name="a", user="u", nodes=1, duration=10.0)])
        plan = plan_admission(spec)
        plan.write(str(tmp_path))
        report = campaign_status(str(tmp_path))
        assert "finished: 0/1" in report
        assert "pending" in report

    def test_status_without_admission_log_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no admission log"):
            campaign_status(str(tmp_path))

    def test_status_reports_failures_and_rejections(self, tmp_path):
        spec = make_spec([
            dict(name="hog", user="u", nodes=3, duration=100.0, priority=9),
            dict(name="late", user="v", nodes=3, duration=50.0,
                 deadline=60.0),
        ])
        plan = plan_admission(spec)
        plan.write(str(tmp_path))
        journal = CampaignJournal.create(str(tmp_path), "camp", 1)
        journal.record_experiment(0, "hog", "u", ok=False, error="boom")
        journal.close()
        report = campaign_status(str(tmp_path))
        assert "FAILED (boom)" in report
        assert "REJECTED" in report and "deadline" in report


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


class TestCli:
    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_run_parses_flags(self):
        args = build_parser().parse_args([
            "campaign", "run", "c.yml", "--results", "/tmp/x",
            "--jobs", "4", "--resume",
        ])
        assert args.campaign_command == "run"
        assert args.jobs == 4 and args.resume

    def test_campaign_run_and_status_commands(self, tmp_path, capsys):
        path = write_campaign_file(tmp_path / "c.yml", SMALL_CAMPAIGN)
        target = str(tmp_path / "out")
        assert main(["campaign", "run", path, "--results", target,
                     "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "experiments completed: 2, failed: 0, rejected: 0" in out
        assert main(["campaign", "status", target]) == 0
        assert "finished: 2/2" in capsys.readouterr().out
