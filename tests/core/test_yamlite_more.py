"""Additional yamlite coverage: sequence/flow interplay, edge shapes."""

from __future__ import annotations

import pytest

from repro.core import yamlite
from repro.core.errors import YamlError


class TestSequenceItems:
    def test_flow_mapping_as_sequence_item(self):
        assert yamlite.loads("- {a: 1}\n- {b: 2}") == [{"a": 1}, {"b": 2}]

    def test_flow_list_as_sequence_item(self):
        assert yamlite.loads("- [1, 2]\n- [3]") == [[1, 2], [3]]

    def test_inline_mapping_item_with_continuation(self):
        text = "- name: dut\n  ports: [eno1, eno2]\n- name: loadgen"
        assert yamlite.loads(text) == [
            {"name": "dut", "ports": ["eno1", "eno2"]},
            {"name": "loadgen"},
        ]

    def test_item_with_nested_mapping_value(self):
        text = "- role: dut\n  image:\n    name: debian\n    version: v1"
        assert yamlite.loads(text) == [
            {"role": "dut", "image": {"name": "debian", "version": "v1"}}
        ]

    def test_bare_dash_null_items(self):
        assert yamlite.loads("-\n- 1") == [None, 1]

    def test_duplicate_key_in_inline_item(self):
        with pytest.raises(YamlError, match="duplicate"):
            yamlite.loads("- a: 1\n  a: 2")


class TestDocumentShapes:
    def test_flow_document(self):
        assert yamlite.loads("[1, 2, 3]") == [1, 2, 3]
        assert yamlite.loads("{a: 1}") == {"a": 1}

    def test_quoted_scalar_document(self):
        assert yamlite.loads('"hello world"') == "hello world"

    def test_trailing_content_rejected(self):
        with pytest.raises(YamlError, match="unexpected content"):
            yamlite.loads("a: 1\n- 2")

    def test_deep_nesting_round_trip(self):
        data = {"a": {"b": {"c": {"d": [1, {"e": [2, 3]}]}}}}
        assert yamlite.loads(yamlite.dumps(data)) == data

    def test_list_of_lists_round_trip(self):
        data = [[1, [2, 3]], [], [4]]
        assert yamlite.loads(yamlite.dumps(data)) == data

    def test_mapping_with_numeric_looking_keys(self):
        # Keys parse with scalar rules; ints stay ints.
        assert yamlite.loads("64: small\n1500: big") == {
            64: "small", 1500: "big",
        }

    def test_whitespace_only_string_round_trip(self):
        assert yamlite.loads(yamlite.dumps({"v": "  padded  "})) == {
            "v": "  padded  "
        }

    def test_string_with_colon_round_trip(self):
        data = {"url": "https://example.org:8080/x"}
        assert yamlite.loads(yamlite.dumps(data)) == data

    def test_colon_no_space_is_plain_scalar(self):
        # "a:1" has no colon-space, so it is one scalar, not a mapping.
        assert yamlite.loads("v: a:1") == {"v": "a:1"}
