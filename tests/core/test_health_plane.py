"""Health artifacts: determinism, crash+resume, kill switch, schemas.

``run-NNN/health.json`` and the experiment-level ``health.json`` obey
the same contract as every other artifact of the toolchain: byte-
identical for any ``--jobs N`` and across a crash + resume, and pinned
by checked-in JSON schemas.  ``POS_HEALTH=0`` suppresses them without
touching anything else; ``POS_TELEMETRY=0`` does *not* suppress them —
the health plane rides the scheduler, not the telemetry plane.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.casestudy import run_case_study
from repro.faults.plan import FaultPlan, FaultSpec
from repro.telemetry.schema import validate_experiment
from repro.testbed.health import HEALTH_NAME

CLOCK = lambda: 1_600_000_000.0  # noqa: E731 - fixed clock => fixed tree paths

SWEEP = dict(
    rates=[200_000, 400_000],
    sizes=(64, 1500),
    duration_s=0.05,
    interval_s=0.02,
    clock=CLOCK,
)

SMALL = dict(
    rates=[200_000], sizes=(64,), duration_s=0.05, interval_s=0.02, clock=CLOCK
)


class CrashRequested(RuntimeError):
    """Simulated controller death: NOT a PosError, so nothing handles it."""


def crashing_progress(after):
    def callback(done, total):
        if done >= after:
            raise CrashRequested(f"killed after {after} runs")

    return callback


def health_files(root):
    """Relative path -> bytes for every health artifact under root."""
    picked = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name != HEALTH_NAME:
                continue
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                picked[os.path.relpath(path, root)] = handle.read()
    return picked


def find_result_dir(root):
    for dirpath, _, filenames in os.walk(root):
        if "journal.jsonl" in filenames:
            return dirpath
    raise AssertionError(f"no journal found under {root}")


class TestHealthArtifacts:
    def test_every_run_gets_a_snapshot_and_the_fold_matches(self, tmp_path):
        handle = run_case_study("pos", str(tmp_path), jobs=1, **SWEEP)
        root = handle.result_path
        with open(os.path.join(root, HEALTH_NAME)) as stream:
            aggregate = json.load(stream)
        assert aggregate["experiment"] == "linux-router-forwarding-pos"
        assert aggregate["runs"] == 4
        assert set(aggregate["nodes"]) == {"riga", "tartu"}
        for node in aggregate["nodes"].values():
            assert node["state"] == "healthy"
            assert node["observations"]["healthy"] == 4
            assert node["transitions"] == []
            assert node["sensors"]["fan_rpm"] > 0
        for index in range(4):
            path = os.path.join(root, f"run-{index:03d}", HEALTH_NAME)
            with open(path) as stream:
                snapshot = json.load(stream)
            assert snapshot["run"] == index
            assert set(snapshot["nodes"]) == {"riga", "tartu"}

    def test_health_artifacts_validate_against_schemas(self, tmp_path):
        handle = run_case_study("pos", str(tmp_path), jobs=1, **SMALL)
        validated = validate_experiment(handle.result_path)
        assert any(path.endswith("run-000/health.json") for path in validated)
        assert any(
            os.path.basename(path) == HEALTH_NAME
            and "run-" not in os.path.basename(os.path.dirname(path))
            for path in validated
        )

    def test_recovery_is_visible_in_health(self, tmp_path):
        """A power-cycle recovery shows up as SEL records + a state dip."""
        handle = run_case_study(
            "pos", str(tmp_path),
            rates=[200_000, 400_000], sizes=(64,),
            duration_s=0.05, interval_s=0.02, clock=CLOCK,
            on_error="recover", script_style="shell",
            fault_plan=FaultPlan(
                [FaultSpec(kind="script", runs=(1,), times=1)], seed=11
            ),
        )
        assert handle.completed_runs == 2 and handle.failed_runs == 0
        with open(os.path.join(handle.result_path, HEALTH_NAME)) as stream:
            aggregate = json.load(stream)
        degraded = [
            (name, node) for name, node in aggregate["nodes"].items()
            if node["observations"]["degraded"] > 0
        ]
        assert degraded, "recovery cycle must degrade at least one node"
        name, node = degraded[0]
        assert node["sel_records"] > 0
        assert {"run": 1, "from": "healthy", "to": "degraded"} \
            in node["transitions"]
        with open(os.path.join(handle.result_path, "journal.jsonl")) as stream:
            entries = [json.loads(line) for line in stream]
        run_dir = next(
            entry["dir"] for entry in entries
            if entry.get("event") == "run" and entry["index"] == 1
        )
        assert run_dir == "run-001-retry"  # the retry got its own folder
        with open(
            os.path.join(handle.result_path, run_dir, HEALTH_NAME)
        ) as stream:
            struck = json.load(stream)
        assert struck["nodes"][name]["observation"] == "degraded"
        assert any(
            record["sensor"] == "chassis"
            for record in struck["nodes"][name]["sel"]
        )


class TestHealthDeterminism:
    def test_identical_jobs_1_vs_4(self, tmp_path):
        run_case_study("pos", str(tmp_path / "seq"), jobs=1, **SWEEP)
        run_case_study("pos", str(tmp_path / "par"), jobs=4, **SWEEP)
        seq = health_files(str(tmp_path / "seq"))
        par = health_files(str(tmp_path / "par"))
        assert len(seq) == 5  # experiment aggregate + one per run
        assert par == seq

    def test_identical_across_crash_and_resume(self, tmp_path):
        run_case_study("pos", str(tmp_path / "clean"), jobs=1, **SWEEP)
        clean = health_files(str(tmp_path / "clean"))

        with pytest.raises(CrashRequested):
            run_case_study(
                "pos", str(tmp_path / "crashed"), jobs=2,
                progress=crashing_progress(2), **SWEEP,
            )
        result_dir = find_result_dir(str(tmp_path / "crashed"))
        handle = run_case_study(
            "pos", str(tmp_path / "crashed"), jobs=2,
            resume_path=result_dir, **SWEEP,
        )
        assert handle.completed_runs == 4 and handle.resumed_runs == 2
        assert health_files(str(tmp_path / "crashed")) == clean

    def test_kill_switch_suppresses_health_only(self, tmp_path, monkeypatch):
        monkeypatch.setenv("POS_HEALTH", "0")
        handle = run_case_study("pos", str(tmp_path), jobs=1, **SMALL)
        root = handle.result_path
        assert not os.path.exists(os.path.join(root, HEALTH_NAME))
        assert not os.path.exists(
            os.path.join(root, "run-000", HEALTH_NAME)
        )
        # The telemetry plane is untouched by the health switch.
        assert os.path.exists(os.path.join(root, "trace.jsonl"))

    def test_health_survives_telemetry_kill_switch(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("POS_TELEMETRY", "0")
        handle = run_case_study("pos", str(tmp_path), jobs=1, **SMALL)
        root = handle.result_path
        assert os.path.exists(os.path.join(root, HEALTH_NAME))
        assert os.path.exists(os.path.join(root, "run-000", HEALTH_NAME))
        assert not os.path.exists(os.path.join(root, "trace.jsonl"))

    def test_sel_events_enter_the_trace(self, tmp_path):
        """Health SEL records surface as telemetry events under the run."""
        handle = run_case_study(
            "pos", str(tmp_path),
            rates=[200_000, 400_000], sizes=(64,),
            duration_s=0.05, interval_s=0.02, clock=CLOCK,
            on_error="recover", script_style="shell",
            fault_plan=FaultPlan(
                [FaultSpec(kind="script", runs=(1,), times=1)], seed=11
            ),
        )
        with open(os.path.join(handle.result_path, "trace.jsonl")) as stream:
            records = [json.loads(line) for line in stream]
        sel_spans = [r for r in records if r["name"] == "health.sel"]
        assert sel_spans, "SEL records must be mirrored into the trace"
        assert all(r["attrs"]["node"] for r in sel_spans)
        with open(
            os.path.join(handle.result_path, "telemetry.json")
        ) as stream:
            counters = json.load(stream)["metrics"]["counters"]
        assert counters["health.sel_records"] == len(sel_spans)
        assert counters["health.observation.degraded"] >= 1
