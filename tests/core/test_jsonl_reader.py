"""The tolerant JSONL reader's contract, pinned.

Every flushed-line artifact shares one reader
(:mod:`repro.telemetry.jsonl`), and every fold over those artifacts —
reports, doctor, diff, perf history — inherits its semantics: blank
lines are skipped, the torn tail of a crashed writer is dropped, and
reading *stops* at the first undecodable line instead of resuming
after it.  A reader that skipped interior garbage would let a
truncated-and-appended file masquerade as a healthy history, so that
stop is deliberate and must never regress.
"""

from __future__ import annotations

import pytest

from repro.telemetry.jsonl import read_jsonl, read_jsonl_or_none


def write(tmp_path, text: str) -> str:
    path = tmp_path / "artifact.jsonl"
    path.write_text(text, encoding="utf-8")
    return str(path)


class TestReadJsonl:
    def test_empty_file_is_no_records(self, tmp_path):
        assert read_jsonl(write(tmp_path, "")) == []

    def test_blank_lines_are_skipped(self, tmp_path):
        path = write(tmp_path, '\n\n{"a": 1}\n\n{"b": 2}\n\n')
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_all_torn_file_is_no_records(self, tmp_path):
        path = write(tmp_path, '{"a": 1\n{"b":\nnot json at all\n')
        assert read_jsonl(path) == []

    def test_torn_tail_is_dropped(self, tmp_path):
        path = write(tmp_path, '{"a": 1}\n{"b": 2}\n{"c": 3')
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_interior_garbage_stops_the_read(self, tmp_path):
        # A valid line AFTER an undecodable one must NOT be resurrected:
        # this shape only exists when a file was truncated and appended
        # to, and silently resuming would cook every fold downstream.
        path = write(tmp_path, '{"a": 1}\n!!garbage!!\n{"b": 2}\n')
        assert read_jsonl(path) == [{"a": 1}]

    def test_non_object_line_stops_the_read(self, tmp_path):
        # Decodable-but-not-an-object is equally foreign to the format.
        path = write(tmp_path, '{"a": 1}\n[1, 2, 3]\n{"b": 2}\n')
        assert read_jsonl(path) == [{"a": 1}]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            read_jsonl(str(tmp_path / "absent.jsonl"))


class TestReadJsonlOrNone:
    def test_missing_file_is_none_not_empty(self, tmp_path):
        # None ("no evidence") and [] ("evidence of nothing") are
        # different verdicts; folds branch on the distinction.
        assert read_jsonl_or_none(str(tmp_path / "absent.jsonl")) is None

    def test_present_file_reads_normally(self, tmp_path):
        path = write(tmp_path, '{"a": 1}\n')
        assert read_jsonl_or_none(path) == [{"a": 1}]
