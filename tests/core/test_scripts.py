"""Tests for command and Python experiment scripts."""

from __future__ import annotations

import pytest

from repro.core.errors import ScriptError
from repro.core.scripts import CommandScript, PythonScript, ScriptContext
from repro.core.tools import PosTools, SharedStore
from repro.netsim.host import SimHost
from repro.testbed.node import Node
from repro.testbed.power import IpmiController
from repro.testbed.transport import SshTransport


def make_context(role="dut", variables=None, store=None):
    host = SimHost(role)
    host.boot("debian-buster", "v1")
    node = Node(role, host=host, power=IpmiController(host),
                transport=SshTransport(host))
    node.transport.connect()
    store = store or SharedStore()
    tools = PosTools(store, node, role)
    ctx = ScriptContext(
        node=node,
        role=role,
        phase="setup",
        variables=variables or {},
        tools=tools,
    )
    return ctx, host, store


class TestCommandScript:
    def test_runs_all_commands(self):
        ctx, host, __ = make_context(variables={"PORT": "eno1"})
        script = CommandScript("setup", [
            "sysctl -w net.ipv4.ip_forward=1",
            "ip link set $PORT up",
        ])
        result = script.run(ctx)
        assert result.ok
        assert host.sysctl["net.ipv4.ip_forward"] == "1"
        assert host.interfaces["eno1"].up
        assert len(result.commands) == 2

    def test_substitution_happens_before_execution(self):
        ctx, host, __ = make_context(variables={"MSG": "hello"})
        script = CommandScript("echo", ["echo $MSG world"])
        result = script.run(ctx)
        assert result.commands[0].stdout == "hello world"

    def test_failing_command_raises(self):
        ctx, __, __ = make_context()
        script = CommandScript("bad", ["false", "echo never-reached"])
        with pytest.raises(ScriptError, match="exit code 1"):
            script.run(ctx)
        # The failing command is still in the captured log.
        assert len(ctx.tools.command_log) == 1

    def test_unknown_command_raises_with_127(self):
        ctx, __, __ = make_context()
        script = CommandScript("bad", ["definitely-not-a-command"])
        with pytest.raises(ScriptError) as excinfo:
            script.run(ctx)
        assert excinfo.value.exit_code == 127

    def test_tolerant_prefix_ignores_failure(self):
        ctx, __, __ = make_context()
        script = CommandScript("tolerant", ["-false", "echo reached"])
        result = script.run(ctx)
        assert result.ok
        assert result.commands[1].stdout == "reached"

    def test_pos_tool_commands(self):
        ctx, __, store = make_context()
        script = CommandScript("sync", [
            "pos set dut_ready 1",
            "pos barrier setup-done",
            "pos log configured",
        ])
        result = script.run(ctx)
        assert result.ok
        assert store.get_variable("dut_ready") == "1"
        assert store.barrier_parties("setup-done") == {"dut"}
        assert "configured" in result.log_lines

    def test_pos_get_round_trip(self):
        ctx, __, store = make_context()
        store.set_variable("peer_mac", "52:54:00:00:00:01")
        script = CommandScript("read", ["pos get peer_mac"])
        result = script.run(ctx)
        assert result.commands[0].stdout == "52:54:00:00:00:01"

    def test_pos_get_missing_fails_script(self):
        ctx, __, __ = make_context()
        script = CommandScript("read", ["pos get never-set"])
        with pytest.raises(ScriptError):
            script.run(ctx)

    def test_undefined_variable_aborts_before_execution(self):
        ctx, __, __ = make_context()
        script = CommandScript("bad", ["echo $UNDEFINED"])
        with pytest.raises(Exception, match="UNDEFINED"):
            script.run(ctx)
        assert ctx.tools.command_log == []

    def test_describe_includes_commands(self):
        script = CommandScript("setup", ["echo hi"])
        described = script.describe()
        assert described["kind"] == "CommandScript"
        assert described["commands"] == ["echo hi"]


class TestPythonScript:
    def test_return_value_captured(self):
        ctx, __, __ = make_context()
        script = PythonScript("measure", lambda c: {"tx": 5})
        result = script.run(ctx)
        assert result.ok
        assert result.return_value == {"tx": 5}

    def test_uploads_and_logs_captured(self):
        ctx, __, __ = make_context()

        def body(c):
            c.tools.upload("moongen.log", "data")
            c.tools.log("note")

        result = PythonScript("measure", body).run(ctx)
        assert result.uploads == [("moongen.log", "data")]
        assert result.log_lines == ["note"]

    def test_exception_becomes_script_error(self):
        ctx, __, __ = make_context()

        def body(c):
            raise ValueError("boom")

        with pytest.raises(ScriptError, match="boom"):
            PythonScript("measure", body).run(ctx)

    def test_script_error_passes_through(self):
        ctx, __, __ = make_context()

        def body(c):
            raise ScriptError("explicit", exit_code=3)

        with pytest.raises(ScriptError) as excinfo:
            PythonScript("measure", body).run(ctx)
        assert excinfo.value.exit_code == 3

    def test_context_var_accessor(self):
        ctx, __, __ = make_context(variables={"pkt_rate": 10000})
        assert ctx.var("pkt_rate") == 10000
        assert ctx.var("missing", 7) == 7

    def test_describe_uses_docstring(self):
        def documented(c):
            """Runs the thing."""

        described = PythonScript("m", documented).describe()
        assert described["callable"] == "documented"
        assert described["doc"] == "Runs the thing."
