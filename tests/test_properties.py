"""Cross-module property-based tests (hypothesis).

Invariants that must hold for arbitrary inputs, spanning module
boundaries: packet conservation through the full forwarding path,
round-trips of the artifact formats, sanitizer guarantees, calendar
algebra, and determinism of the serializers.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import yamlite
from repro.core.calendar import Calendar
from repro.core.results import _safe_filename
from repro.core.variables import substitute
from repro.comparison import (
    REQUIREMENTS,
    Support,
    SystemProfile,
    evaluate_requirement,
)


# ---------------------------------------------------------------------------
# packet conservation through the full path
# ---------------------------------------------------------------------------

@given(
    rate_kpps=st.integers(min_value=50, max_value=3000),
    frame_size=st.sampled_from([64, 128, 512, 1024, 1500]),
    flows=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=20, deadline=None)
def test_moongen_router_conservation_property(rate_kpps, frame_size, flows):
    """Every generated packet is accounted for: received back, queued,
    in flight nowhere (after drain), or counted as dropped by exactly
    one element of the path."""
    from repro.loadgen.moongen import MoonGen
    from repro.netsim.engine import Simulator
    from repro.netsim.link import DirectWire
    from repro.netsim.multicore import MultiCoreRouter
    from repro.netsim.nic import HardwareNic

    sim = Simulator()
    tx = HardwareNic(sim, "tx")
    rx = HardwareNic(sim, "rx")
    p0 = HardwareNic(sim, "p0")
    p1 = HardwareNic(sim, "p1")
    router = MultiCoreRouter(sim, cores=2)
    router.add_port(p0)
    router.add_port(p1)
    DirectWire(sim, tx, p0)
    DirectWire(sim, p1, rx)
    gen = MoonGen(sim, tx, rx)
    job = gen.start(
        rate_pps=rate_kpps * 1000, frame_size=frame_size, duration_s=0.01,
        flows=flows,
    )
    sim.run()  # run to full drain

    # job.tx_packets counts only frames the TX ring accepted, so TX-ring
    # drops are already excluded from `sent`.
    sent = job.tx_packets
    # Sinks: returned to the generator (counted by the rx NIC whether or
    # not the job window was still open), dropped at the DuT backlog,
    # or dropped at a NIC ring along the path.
    arrived_back = rx.stats.rx_packets + rx.stats.rx_dropped
    dropped = (
        router.stats.backlog_dropped
        + p0.stats.rx_dropped
        + p1.stats.tx_dropped
    )
    assert arrived_back + dropped == sent
    assert router.stats.received == sent - p0.stats.rx_dropped


# ---------------------------------------------------------------------------
# artifact-folder round trip
# ---------------------------------------------------------------------------

_name = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=10,
)
_command = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=30,
).filter(lambda text: not text.startswith(("#", "-")) and "$" not in text)


@given(
    commands=st.lists(_command, min_size=1, max_size=5),
    loop_values=st.lists(
        st.integers(min_value=1, max_value=10 ** 6), min_size=1, max_size=5,
        unique=True,
    ),
    global_value=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_expdir_round_trip_property(tmp_path_factory, commands, loop_values,
                                    global_value):
    """Arbitrary command scripts and variables survive export → import."""
    from repro.core.expdir import load_experiment_dir, write_experiment_dir
    from repro.core.experiment import Experiment, Role
    from repro.core.scripts import CommandScript
    from repro.core.variables import Variables

    experiment = Experiment(
        name="prop",
        roles=[
            Role(
                name="dut",
                node="tartu",
                setup=CommandScript("dut-setup", commands),
                measurement=CommandScript("dut-measurement", ["true"]),
            )
        ],
        variables=Variables(
            global_vars={"g": global_value},
            loop_vars={"rate": loop_values},
        ),
    )
    target = tmp_path_factory.mktemp("expdir")
    write_experiment_dir(experiment, str(target))
    loaded = load_experiment_dir(str(target))
    assert loaded.roles[0].setup.commands == commands
    assert loaded.variables.loop_vars == {"rate": loop_values}
    assert loaded.variables.global_vars == {"g": global_value}


# ---------------------------------------------------------------------------
# sanitizers
# ---------------------------------------------------------------------------

@given(name=st.text(max_size=60))
@settings(max_examples=200, deadline=None)
def test_safe_filename_property(name):
    """Whatever a script names its upload, the stored filename never
    escapes the run directory."""
    cleaned = _safe_filename(name)
    assert cleaned
    assert "/" not in cleaned and "\\" not in cleaned
    assert ".." not in cleaned
    assert not cleaned.startswith(".")
    assert os.path.basename(cleaned) == cleaned


@given(
    text=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40
    ).filter(lambda value: "$" not in value)
)
@settings(max_examples=100, deadline=None)
def test_substitute_without_dollars_is_identity_property(text):
    assert substitute(text, {}) == text


@given(
    value=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20
    )
)
@settings(max_examples=100, deadline=None)
def test_substitute_replaces_exactly_property(value):
    result = substitute("pre $VAR post", {"VAR": value})
    assert result == f"pre {value} post"


# ---------------------------------------------------------------------------
# yamlite determinism
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 9), max_value=10 ** 9),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=15
    ),
)
_docs = st.dictionaries(
    st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=8),
    st.one_of(_scalars, st.lists(_scalars, max_size=3)),
    max_size=5,
)


@given(document=_docs)
@settings(max_examples=100, deadline=None)
def test_yamlite_dump_is_canonical_property(document):
    """Serialization is a fixpoint: dump(load(dump(x))) == dump(x)."""
    once = yamlite.dumps(document)
    assert yamlite.dumps(yamlite.loads(once)) == once


# ---------------------------------------------------------------------------
# calendar algebra
# ---------------------------------------------------------------------------

@given(
    bookings=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=500),
            st.floats(min_value=1, max_value=100),
        ),
        max_size=10,
    ),
    duration=st.floats(min_value=1, max_value=50),
)
@settings(max_examples=60, deadline=None)
def test_next_free_slot_is_actually_free_property(bookings, duration):
    calendar = Calendar(clock=lambda: 0.0)
    for start, length in bookings:
        try:
            calendar.book("node", "user", length, start=start)
        except Exception:
            pass
    slot = calendar.next_free_slot("node", duration)
    assert calendar.is_free("node", duration, start=slot)
    assert slot >= 0.0


# ---------------------------------------------------------------------------
# comparison rule engine totality
# ---------------------------------------------------------------------------

_profiles = st.builds(
    SystemProfile,
    name=st.just("x"),
    kind=st.sampled_from(["testbed", "methodology", "both"]),
    heterogeneous_hardware=st.booleans(),
    isolation=st.sampled_from([None, "direct", "switched"]),
    recoverable=st.booleans(),
    automation=st.booleans(),
    evaluation_in_workflow=st.booleans(),
    publication=st.sampled_from([None, "basic", "full"]),
)


@given(profile=_profiles)
@settings(max_examples=150, deadline=None)
def test_rule_engine_total_and_scoped_property(profile):
    """Every requirement yields a defined verdict, and verdicts respect
    the testbed/methodology split of Table 1."""
    for requirement in REQUIREMENTS:
        verdict = evaluate_requirement(profile, requirement)
        assert isinstance(verdict, Support)
        if requirement in ("R1", "R2", "R3") and not profile.is_testbed:
            assert verdict is Support.NOT_APPLICABLE
        if requirement in ("R4", "R5") and not profile.is_methodology:
            assert verdict is Support.NOT_APPLICABLE
        if requirement in ("R1", "R2", "R3") and profile.is_testbed:
            assert verdict is not Support.NOT_APPLICABLE
