"""A pcap-replay experiment through the full workflow.

Sec. 4.2: "Typical experiments in our testbed use synthetic traffic …
However, other experiments use pcaps of recorded traffic."  This
integration test records a trace, stores it as a pcap file among the
experiment artifacts, and replays it against the DuT inside a
controller-driven measurement run.
"""

from __future__ import annotations



from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.evaluation.loader import load_experiment
from repro.loadgen.pcap import PcapRecord, PcapReplayer, read_pcap, write_pcap
from repro.testbed.scenarios import build_pos_pair
from tests.conftest import boot_and_configure


def make_trace(path, sizes=(64, 200, 700, 1500), repeats=50, gap_s=2e-5):
    """A deterministic mixed-size trace with bursty timing."""
    records = []
    timestamp = 0.0
    for repeat in range(repeats):
        for size in sizes:
            records.append(PcapRecord(timestamp_s=timestamp, data=b"x" * size))
            timestamp += gap_s if repeat % 5 else gap_s / 4  # bursts
    write_pcap(path, records)
    return records


def replay_measurement(ctx):
    """Replay the trace file named in the variables, with its timing."""
    setup = ctx.setup
    records = read_pcap(ctx.variables["trace_path"])
    replayer = PcapReplayer(setup.sim, setup.loadgen.tx_nic, records)
    received = []
    rx_nic = setup.loadgen.rx_nic
    rx_nic.set_rx_handler(lambda packet: received.append(setup.sim.now))
    replayer.start()
    setup.sim.run(until=setup.sim.now + records[-1].timestamp_s + 0.05)
    ctx.tools.upload(
        "replay-stats.txt",
        f"trace_packets={len(records)}\n"
        f"transmitted={replayer.transmitted}\n"
        f"received={len(received)}\n",
    )
    ctx.tools.barrier("run-done")
    return {"received": len(received), "transmitted": replayer.transmitted}


def dut_measure(ctx):
    ctx.tools.barrier("run-done")


class TestPcapExperiment:
    def build(self, tmp_path):
        setup = build_pos_pair()
        trace_path = str(tmp_path / "trace.pcap")
        make_trace(trace_path)
        calendar = Calendar(clock=lambda: 0.0)
        controller = Controller(
            Allocator(calendar, setup.nodes),
            setup.images,
            ResultStore(str(tmp_path / "results"), clock=lambda: 1.0),
        )
        experiment = Experiment(
            name="pcap-replay",
            roles=[
                Role(
                    name="loadgen",
                    node="riga",
                    setup=CommandScript("lg-setup", [
                        "ip link set eno1 up",
                        "ip link set eno2 up",
                        "pos barrier setup-done",
                    ]),
                    measurement=PythonScript("lg-replay", replay_measurement),
                ),
                Role(
                    name="dut",
                    node="tartu",
                    setup=CommandScript("dut-setup", [
                        "sysctl -w net.ipv4.ip_forward=1",
                        "ip link set eno1 up",
                        "ip link set eno2 up",
                        "pos barrier setup-done",
                    ]),
                    measurement=PythonScript("dut-measure", dut_measure),
                ),
            ],
            variables=Variables(global_vars={"trace_path": trace_path}),
        )
        return setup, controller, experiment, trace_path

    def test_replay_through_the_dut(self, tmp_path):
        setup, controller, experiment, __ = self.build(tmp_path)
        handle = controller.run(
            experiment, setup_context_extra={"setup": setup}
        )
        assert handle.completed_runs == 1
        results = load_experiment(handle.result_path)
        stats = results.runs[0].output("loadgen", "replay-stats.txt")
        fields = dict(line.split("=") for line in stats.strip().splitlines())
        assert fields["transmitted"] == fields["trace_packets"] == "200"
        # The 400 kpps peak trace sits below the DuT ceiling: lossless.
        assert fields["received"] == "200"

    def test_trace_round_trips_before_replay(self, tmp_path):
        __, __, __, trace_path = self.build(tmp_path)
        records = read_pcap(trace_path)
        assert len(records) == 200
        assert {record.frame_size for record in records} == {64, 200, 700, 1500}
        timestamps = [record.timestamp_s for record in records]
        assert timestamps == sorted(timestamps)

    def test_replay_preserves_burst_timing(self, tmp_path):
        setup = build_pos_pair()
        boot_and_configure(setup)
        trace_path = str(tmp_path / "trace.pcap")
        make_trace(trace_path, sizes=(64,), repeats=20)
        records = read_pcap(trace_path)
        times = []
        setup.loadgen.rx_nic.set_rx_handler(lambda p: times.append(setup.sim.now))
        PcapReplayer(setup.sim, setup.loadgen.tx_nic, records).start()
        setup.sim.run()
        # Inter-arrival gaps mirror the trace's bursts (two modes).
        gaps = sorted(round(b - a, 7) for a, b in zip(times, times[1:]))
        assert gaps[0] < gaps[-1] / 2  # burst gap much smaller
