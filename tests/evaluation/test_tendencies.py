"""Tests for the cross-platform tendency comparison."""

from __future__ import annotations

import pytest

from repro.core.errors import EvaluationError
from repro.evaluation.tendencies import (
    extract_features,
    factorial_effects,
    paired_effect,
    tendencies_agree,
    tendency_report,
)


def saturating_curve(ceiling, rates):
    return [(rate, min(rate, ceiling)) for rate in rates]


class TestExtractFeatures:
    def test_linear_curve_never_saturates(self):
        feats = extract_features([(1, 1), (2, 2), (3, 3)])
        assert not feats.saturates
        assert feats.knee_offered == 3
        assert feats.ceiling == 3

    def test_knee_and_ceiling_of_saturating_curve(self):
        feats = extract_features(saturating_curve(2.0, [1, 2, 3, 4]))
        assert feats.saturates
        assert feats.knee_offered == 2
        assert feats.ceiling == 2.0

    def test_loss_tolerance(self):
        # 2% loss counts as drop-free with default tolerance.
        feats = extract_features([(1.0, 0.99), (2.0, 1.0)])
        assert feats.knee_offered == 1.0
        assert feats.saturates  # the 2.0 point lost half

    def test_empty_curve_rejected(self):
        with pytest.raises(EvaluationError):
            extract_features([])

    def test_non_positive_offered_rejected(self):
        with pytest.raises(EvaluationError):
            extract_features([(0.0, 0.0)])


class TestTendenciesAgree:
    def paper_like_curves(self):
        """pos and vpos shapes: 44x apart, same tendencies."""
        rates_pos = [0.5, 1.0, 1.5, 2.0]
        pos = {
            64: saturating_curve(1.75, rates_pos),
            1500: saturating_curve(0.82, rates_pos),
        }
        rates_vpos = [0.01, 0.02, 0.04, 0.1, 0.3]
        vpos = {
            64: saturating_curve(0.040, rates_vpos),
            # "regardless of the packet size": the 1500 B ceiling sits
            # within the loss tolerance of the 64 B one.
            1500: saturating_curve(0.0396, rates_vpos),
        }
        return pos, vpos

    def test_paper_shapes_agree(self):
        pos, vpos = self.paper_like_curves()
        verdict = tendencies_agree(pos, vpos)
        assert verdict["same_groups"]
        assert verdict["both_saturate"]
        assert verdict["size_independence_matches"]

    def test_group_mismatch_detected(self):
        pos, vpos = self.paper_like_curves()
        del vpos[1500]
        assert not tendencies_agree(pos, vpos)["same_groups"]

    def test_non_saturating_platform_detected(self):
        pos, vpos = self.paper_like_curves()
        vpos[64] = [(0.01, 0.01), (0.02, 0.02)]  # never stressed
        assert not tendencies_agree(pos, vpos)["both_saturate"]

    def test_report_renders(self):
        pos, vpos = self.paper_like_curves()
        report = tendency_report("pos", pos, "vpos", vpos)
        assert "pos [64]" in report
        assert "agree" in report
        assert "DISAGREE" not in report


class TestPairedEffect:
    def test_direction_is_after_minus_before(self):
        effect = paired_effect([1.0, 2.0, 3.0], [2.0, 4.0, 6.0])
        assert effect["hl_estimate"] > 0
        assert effect["median_diff"] == 2.0
        assert effect["n"] == 3.0

    def test_single_pair_degenerates_to_the_difference(self):
        """With n=1 every bootstrap resample is the same one diff, so
        the interval collapses onto the point estimate."""
        effect = paired_effect([1.0], [3.5])
        assert effect["hl_estimate"] == 2.5
        assert effect["median_diff"] == 2.5
        assert effect["ci_low"] == 2.5
        assert effect["ci_high"] == 2.5
        assert effect["n"] == 1.0

    def test_all_tied_differences_give_a_degenerate_interval(self):
        """Identical diffs leave the bootstrap nothing to vary: the CI
        is exact, not merely narrow."""
        effect = paired_effect([1.0, 2.0, 3.0, 4.0], [2.0, 3.0, 4.0, 5.0])
        assert effect["hl_estimate"] == 1.0
        assert effect["ci_low"] == 1.0
        assert effect["ci_high"] == 1.0

    def test_deterministic_for_identical_inputs(self):
        before = [1.0, 1.2, 0.9, 1.1, 1.05]
        after = [1.3, 1.6, 1.1, 1.5, 1.25]
        assert paired_effect(before, after) == paired_effect(before, after)
        # ... and the interval brackets the estimate.
        effect = paired_effect(before, after)
        assert effect["ci_low"] <= effect["hl_estimate"] <= effect["ci_high"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            paired_effect([1.0, 2.0], [1.0])

    def test_empty_samples_rejected(self):
        with pytest.raises(EvaluationError):
            paired_effect([], [])


class TestFactorialEffects:
    FACTORS = {"rate": [1, 2], "size": [64, 128]}

    def rows(self, replications=2):
        """Additive synthetic design: +5 for rate=2, +2 for size=128."""
        built = []
        for replication in range(replications):
            for rate in self.FACTORS["rate"]:
                for size in self.FACTORS["size"]:
                    value = 10.0 + 5.0 * (rate == 2) + 2.0 * (size == 128)
                    built.append(
                        ({"rate": rate, "size": size}, replication, value)
                    )
        return built

    def test_recovers_known_additive_effects(self):
        effects = factorial_effects(self.rows(), self.FACTORS)
        assert set(effects) == {"rate", "size"}
        assert effects["rate"]["baseline"] == 1
        rate_effect = effects["rate"]["levels"]["2"]
        assert rate_effect["hl_estimate"] == 5.0
        assert rate_effect["ci_low"] == rate_effect["ci_high"] == 5.0
        # 2 pairings (one per size level) x 2 replications.
        assert rate_effect["n"] == 4.0
        size_effect = effects["size"]["levels"]["128"]
        assert size_effect["hl_estimate"] == 2.0

    def test_deterministic_across_calls(self):
        assert factorial_effects(self.rows(), self.FACTORS) == \
            factorial_effects(self.rows(), self.FACTORS)

    def test_mixed_type_levels_are_supported(self):
        """Levels like 64 vs "auto" cannot be ordered by ``<`` — the
        pairing must not rely on cross-type comparison."""
        factors = {"mode": [64, "auto"]}
        rows = [
            ({"mode": 64}, 0, 1.0),
            ({"mode": "auto"}, 0, 3.0),
        ]
        effects = factorial_effects(rows, factors)
        assert effects["mode"]["levels"]["auto"]["hl_estimate"] == 2.0

    def test_empty_rows_rejected(self):
        with pytest.raises(EvaluationError):
            factorial_effects([], self.FACTORS)

    def test_empty_factors_rejected(self):
        with pytest.raises(EvaluationError):
            factorial_effects(self.rows(), {})

    def test_measurement_lacking_a_factor_rejected(self):
        rows = [({"rate": 1}, 0, 1.0)]
        with pytest.raises(EvaluationError, match="lacks factors"):
            factorial_effects(rows, self.FACTORS)

    def test_factor_without_levels_rejected(self):
        rows = [({"rate": 1, "size": 64}, 0, 1.0)]
        with pytest.raises(EvaluationError, match="no levels"):
            factorial_effects(rows, {"rate": [1], "size": []})

    def test_unpairable_levels_rejected(self):
        """A level present in the design but absent from the data has
        no paired measurements — that is an error, not a silent skip."""
        rows = [
            ({"rate": 1, "size": 64}, 0, 1.0),
            ({"rate": 1, "size": 128}, 0, 2.0),
        ]
        with pytest.raises(EvaluationError, match="no paired measurements"):
            factorial_effects(rows, self.FACTORS)


class TestAgainstRealRuns:
    def test_measured_platforms_agree_in_tendency(self, tmp_path):
        """The Sec. 5 argument on actual measured data."""
        from repro.casestudy import run_case_study
        from repro.evaluation.loader import load_experiment

        def curves(platform, rates, duration):
            handle = run_case_study(
                platform, str(tmp_path / platform), rates=rates,
                sizes=(64, 1500), duration_s=duration, interval_s=duration / 2,
                seed=6,
            )
            results = load_experiment(handle.result_path)
            by_size = {}
            for size in (64, 1500):
                by_size[size] = [
                    (run.loop["pkt_rate"] / 1e6, run.moongen().rx_mpps)
                    for run in results.filter(pkt_sz=size)
                ]
            return by_size

        pos = curves("pos", [500_000, 1_000_000, 2_000_000], 0.03)
        vpos = curves("vpos", [10_000, 30_000, 200_000], 0.15)
        verdict = tendencies_agree(pos, vpos)
        assert all(verdict.values()), verdict
