"""Tests for the cross-platform tendency comparison."""

from __future__ import annotations

import pytest

from repro.core.errors import EvaluationError
from repro.evaluation.tendencies import (
    extract_features,
    tendencies_agree,
    tendency_report,
)


def saturating_curve(ceiling, rates):
    return [(rate, min(rate, ceiling)) for rate in rates]


class TestExtractFeatures:
    def test_linear_curve_never_saturates(self):
        feats = extract_features([(1, 1), (2, 2), (3, 3)])
        assert not feats.saturates
        assert feats.knee_offered == 3
        assert feats.ceiling == 3

    def test_knee_and_ceiling_of_saturating_curve(self):
        feats = extract_features(saturating_curve(2.0, [1, 2, 3, 4]))
        assert feats.saturates
        assert feats.knee_offered == 2
        assert feats.ceiling == 2.0

    def test_loss_tolerance(self):
        # 2% loss counts as drop-free with default tolerance.
        feats = extract_features([(1.0, 0.99), (2.0, 1.0)])
        assert feats.knee_offered == 1.0
        assert feats.saturates  # the 2.0 point lost half

    def test_empty_curve_rejected(self):
        with pytest.raises(EvaluationError):
            extract_features([])

    def test_non_positive_offered_rejected(self):
        with pytest.raises(EvaluationError):
            extract_features([(0.0, 0.0)])


class TestTendenciesAgree:
    def paper_like_curves(self):
        """pos and vpos shapes: 44x apart, same tendencies."""
        rates_pos = [0.5, 1.0, 1.5, 2.0]
        pos = {
            64: saturating_curve(1.75, rates_pos),
            1500: saturating_curve(0.82, rates_pos),
        }
        rates_vpos = [0.01, 0.02, 0.04, 0.1, 0.3]
        vpos = {
            64: saturating_curve(0.040, rates_vpos),
            # "regardless of the packet size": the 1500 B ceiling sits
            # within the loss tolerance of the 64 B one.
            1500: saturating_curve(0.0396, rates_vpos),
        }
        return pos, vpos

    def test_paper_shapes_agree(self):
        pos, vpos = self.paper_like_curves()
        verdict = tendencies_agree(pos, vpos)
        assert verdict["same_groups"]
        assert verdict["both_saturate"]
        assert verdict["size_independence_matches"]

    def test_group_mismatch_detected(self):
        pos, vpos = self.paper_like_curves()
        del vpos[1500]
        assert not tendencies_agree(pos, vpos)["same_groups"]

    def test_non_saturating_platform_detected(self):
        pos, vpos = self.paper_like_curves()
        vpos[64] = [(0.01, 0.01), (0.02, 0.02)]  # never stressed
        assert not tendencies_agree(pos, vpos)["both_saturate"]

    def test_report_renders(self):
        pos, vpos = self.paper_like_curves()
        report = tendency_report("pos", pos, "vpos", vpos)
        assert "pos [64]" in report
        assert "agree" in report
        assert "DISAGREE" not in report


class TestAgainstRealRuns:
    def test_measured_platforms_agree_in_tendency(self, tmp_path):
        """The Sec. 5 argument on actual measured data."""
        from repro.casestudy import run_case_study
        from repro.evaluation.loader import load_experiment

        def curves(platform, rates, duration):
            handle = run_case_study(
                platform, str(tmp_path / platform), rates=rates,
                sizes=(64, 1500), duration_s=duration, interval_s=duration / 2,
                seed=6,
            )
            results = load_experiment(handle.result_path)
            by_size = {}
            for size in (64, 1500):
                by_size[size] = [
                    (run.loop["pkt_rate"] / 1e6, run.moongen().rx_mpps)
                    for run in results.filter(pkt_sz=size)
                ]
            return by_size

        pos = curves("pos", [500_000, 1_000_000, 2_000_000], 0.03)
        vpos = curves("vpos", [10_000, 30_000, 200_000], 0.15)
        verdict = tendencies_agree(pos, vpos)
        assert all(verdict.values()), verdict
