"""Tests for the figure model, chart builders, and exporters."""

from __future__ import annotations

import os
import zlib

import pytest

from repro.core.errors import PlotError
from repro.evaluation.plots import (
    Figure,
    Series,
    build_scene,
    cdf,
    export,
    figure_to_tex,
    hdr_plot,
    histogram,
    line_plot,
    nice_ticks,
    scene_to_pdf,
    scene_to_svg,
    violin,
)
from repro.evaluation.plots.scene import Polyline, Rect, Text



class TestNiceTicks:
    def test_covers_range(self):
        ticks = nice_ticks(0.0, 10.0)
        assert ticks[0] <= 0.0 and ticks[-1] >= 10.0

    def test_steps_are_1_2_5(self):
        for low, high in ((0, 7), (0, 23), (0.1, 0.9), (0, 123456)):
            ticks = nice_ticks(low, high)
            step = round(ticks[1] - ticks[0], 12)
            mantissa = step / (10 ** len(str(int(1 / step)) if step < 1 else str(int(step))) )
            # simpler check: consecutive differences equal
            diffs = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
            assert len(diffs) == 1

    def test_degenerate_range(self):
        ticks = nice_ticks(5.0, 5.0)
        assert len(ticks) >= 2

    def test_reversed_range_handled(self):
        assert nice_ticks(10.0, 0.0) == nice_ticks(0.0, 10.0)


class TestSceneBuilding:
    def make_figure(self):
        return line_plot(
            {"64B": [(0.1, 0.1), (1.0, 1.0), (2.0, 1.75)]},
            title="throughput", xlabel="rate", ylabel="Mpps",
        )

    def test_scene_contains_frame_and_series(self):
        scene = build_scene(self.make_figure())
        assert any(isinstance(item, Polyline) for item in scene.items)
        assert any(isinstance(item, Rect) for item in scene.items)
        texts = [item.text for item in scene.items if isinstance(item, Text)]
        assert "throughput" in texts
        assert "rate" in texts and "Mpps" in texts

    def test_legend_entries_present(self):
        scene = build_scene(self.make_figure())
        texts = [item.text for item in scene.items if isinstance(item, Text)]
        assert "64B" in texts

    def test_empty_figure_rejected(self):
        with pytest.raises(PlotError, match="no series"):
            build_scene(Figure(title="empty"))

    def test_empty_series_rejected(self):
        figure = Figure()
        figure.add(Series(label="x", points=[]))
        with pytest.raises(PlotError, match="empty|no data"):
            build_scene(figure)

    def test_bar_series_needs_width(self):
        figure = Figure()
        figure.add(Series(label="h", points=[(0, 1)], kind="bars"))
        with pytest.raises(PlotError, match="bar_width"):
            build_scene(figure)

    def test_unknown_series_kind(self):
        figure = Figure()
        figure.add(Series(label="x", points=[(0, 1)], kind="sparkles"))
        with pytest.raises(PlotError, match="unknown series kind"):
            build_scene(figure)

    def test_log_axis_with_nonpositive_rejected(self):
        figure = Figure(x_log=True)
        figure.add(Series(label="x", points=[(0.0, 1.0), (1.0, 2.0)]))
        with pytest.raises(PlotError):
            build_scene(figure)

    def test_all_points_inside_canvas(self):
        scene = build_scene(self.make_figure())
        for item in scene.items:
            if isinstance(item, Polyline):
                for x, y in item.points:
                    assert -1 <= x <= scene.width + 1
                    assert -1 <= y <= scene.height + 1


class TestChartBuilders:
    def test_histogram_counts(self):
        figure = histogram([1, 1, 2, 9], bins=4)
        bars = figure.series[0]
        assert bars.kind == "bars"
        assert sum(y for __, y in bars.points) == 4

    def test_histogram_density_integrates_to_one(self):
        figure = histogram([float(i) for i in range(100)], bins=10, density=True)
        width = figure.series[0].bar_width
        total = sum(y * width for __, y in figure.series[0].points)
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_histogram_empty_rejected(self):
        with pytest.raises(PlotError):
            histogram([])

    def test_cdf_reaches_one(self):
        figure = cdf({"a": [1.0, 2.0, 3.0]})
        points = figure.series[0].points
        assert points[-1][1] == pytest.approx(1.0)
        assert points[0][1] == 0.0

    def test_cdf_is_monotone(self):
        figure = cdf({"a": [5.0, 1.0, 3.0, 3.0]})
        ys = [y for __, y in figure.series[0].points]
        assert ys == sorted(ys)

    def test_hdr_plot_has_percentile_ticks(self):
        figure = hdr_plot({"a": [float(i) for i in range(1, 200)]})
        labels = [label for __, label in figure.x_ticks]
        assert "99%" in labels and "50%" in labels

    def test_violin_builds_shape_per_group(self):
        figure = violin({"64B": [1.0, 2.0, 2.0, 3.0], "1500B": [5.0, 6.0]})
        shapes = [s for s in figure.series if s.kind == "shape"]
        assert len(shapes) == 2

    def test_violin_empty_group_rejected(self):
        with pytest.raises(PlotError):
            violin({"a": []})

    def test_line_plot_multiple_series_get_distinct_dashes(self):
        figure = line_plot({"a": [(0, 0)], "b": [(0, 1)]})
        assert figure.series[0].dash != figure.series[1].dash


class TestSvgBackend:
    def test_valid_xml_shape(self):
        svg = scene_to_svg(build_scene(line_plot({"a": [(0, 0), (1, 1)]})))
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<polyline") >= 1

    def test_text_is_escaped(self):
        figure = line_plot({"<&>": [(0, 0), (1, 1)]}, title='q"t')
        svg = scene_to_svg(build_scene(figure))
        assert "&lt;&amp;&gt;" in svg
        assert "&quot;t" in svg

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ET

        figure = violin({"a": [1.0, 2.0, 3.0]}, title="latency & co")
        ET.fromstring(scene_to_svg(build_scene(figure)))


class TestPdfBackend:
    def figure_pdf(self):
        return scene_to_pdf(build_scene(line_plot(
            {"64B": [(0, 0), (1, 1)]}, title="t", xlabel="x", ylabel="y",
        )))

    def test_header_and_eof(self):
        pdf = self.figure_pdf()
        assert pdf.startswith(b"%PDF-1.4")
        assert pdf.rstrip().endswith(b"%%EOF")

    def test_xref_offsets_are_byte_accurate(self):
        pdf = self.figure_pdf()
        xref_start = pdf.rindex(b"startxref")
        offset = int(pdf[xref_start:].split(b"\n")[1])
        assert pdf[offset : offset + 4] == b"xref"
        # Each object offset in the table points at "N 0 obj".
        table = pdf[offset:].split(b"\n")
        count = int(table[1].split()[1])
        for index in range(1, count):
            entry_offset = int(table[2 + index].split()[0])
            expected = f"{index} 0 obj".encode()
            assert pdf[entry_offset : entry_offset + len(expected)] == expected

    def test_content_stream_decompresses(self):
        pdf = self.figure_pdf()
        start = pdf.index(b"stream\n") + len(b"stream\n")
        end = pdf.index(b"\nendstream")
        content = zlib.decompress(pdf[start:end]).decode("latin-1")
        assert "BT" in content and "Tj" in content  # text ops
        assert " m" in content and " l" in content  # path ops

    def test_non_ascii_text_replaced_not_crashed(self):
        figure = line_plot({"µs": [(0, 0), (1, 1)]}, title="café")
        pdf = scene_to_pdf(build_scene(figure))
        start = pdf.index(b"stream\n") + len(b"stream\n")
        end = pdf.index(b"\nendstream")
        content = zlib.decompress(pdf[start:end])
        assert b"caf?" in content  # é falls outside the Helvetica subset


class TestTexBackend:
    def test_standalone_document(self):
        tex = figure_to_tex(line_plot({"a": [(0, 0), (1, 1)]}, title="t"))
        assert "\\documentclass[tikz]{standalone}" in tex
        assert "\\begin{axis}" in tex
        assert "\\addplot" in tex
        assert "\\end{document}" in tex

    def test_special_characters_escaped(self):
        tex = figure_to_tex(
            line_plot({"100% load": [(0, 0), (1, 1)]}, title="a_b & c")
        )
        assert "100\\% load" in tex
        assert "a\\_b \\& c" in tex

    def test_coordinates_present(self):
        tex = figure_to_tex(line_plot({"a": [(0.5, 1.75)]}))
        assert "(0.5,1.75)" in tex

    def test_log_axis_option(self):
        figure = line_plot({"a": [(1, 1), (10, 2)]})
        figure.x_log = True
        assert "xmode=log" in figure_to_tex(figure)

    def test_empty_figure_rejected(self):
        with pytest.raises(PlotError):
            figure_to_tex(Figure())


class TestExport:
    def test_all_formats_written(self, tmp_path):
        figure = line_plot({"a": [(0, 0), (1, 1)]})
        written = export(figure, str(tmp_path / "fig"))
        assert sorted(os.path.basename(p) for p in written) == [
            "fig.pdf", "fig.svg", "fig.tex",
        ]
        for path in written:
            assert os.path.getsize(path) > 100

    def test_subset_of_formats(self, tmp_path):
        figure = line_plot({"a": [(0, 0), (1, 1)]})
        written = export(figure, str(tmp_path / "fig"), formats=("svg",))
        assert len(written) == 1

    def test_unknown_format_rejected_before_writing(self, tmp_path):
        figure = line_plot({"a": [(0, 0), (1, 1)]})
        with pytest.raises(PlotError, match="unknown export"):
            export(figure, str(tmp_path / "fig"), formats=("png",))
        assert list(tmp_path.iterdir()) == []

    def test_creates_directories(self, tmp_path):
        figure = line_plot({"a": [(0, 0), (1, 1)]})
        export(figure, str(tmp_path / "deep" / "nested" / "fig"), formats=("svg",))
        assert (tmp_path / "deep" / "nested" / "fig.svg").exists()
