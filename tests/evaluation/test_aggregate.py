"""Tests for statistics, grouping, and the HDR histogram."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import EvaluationError
from repro.evaluation.aggregate import (
    HdrHistogram,
    describe,
    group_runs,
    percentile,
    series_from_runs,
)
from repro.evaluation.loader import RunResult


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 0.5) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 0.5) == 2.5

    def test_extremes(self):
        data = [5, 1, 9]
        assert percentile(data, 0.0) == 1
        assert percentile(data, 1.0) == 9

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError, match="empty"):
            percentile([], 0.5)

    def test_out_of_range_fraction(self):
        with pytest.raises(EvaluationError):
            percentile([1], 1.5)

    @given(
        samples=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1, max_size=50,
        ),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_min_max_property(self, samples, fraction):
        value = percentile(samples, fraction)
        assert min(samples) <= value <= max(samples)


class TestDescribe:
    def test_basic_statistics(self):
        stats = describe([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.0)
        assert stats.count == 8
        assert stats.minimum == 2.0 and stats.maximum == 9.0

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            describe([])


def run(index, **loop):
    return RunResult(index=index, loop=loop)


class TestGroupingAndSeries:
    def test_group_runs_preserves_order(self):
        runs = [run(0, sz=64), run(1, sz=1500), run(2, sz=64)]
        groups = group_runs(runs, "sz")
        assert list(groups) == [64, 1500]
        assert [r.index for r in groups[64]] == [0, 2]

    def test_series_sorted_by_x(self):
        runs = [run(0, rate=300), run(1, rate=100), run(2, rate=200)]
        points = series_from_runs(
            runs, x=lambda r: r.loop["rate"], y=lambda r: r.index
        )
        assert [x for x, __ in points] == [100, 200, 300]

    def test_series_skips_failing_extractors(self):
        runs = [run(0, rate=100), run(1)]  # second lacks "rate"
        points = series_from_runs(
            runs, x=lambda r: r.loop["rate"], y=lambda r: 1.0
        )
        assert len(points) == 1


class TestHdrHistogram:
    def test_quantiles_of_known_distribution(self):
        hist = HdrHistogram(precision=100)
        hist.record_many(float(value) for value in range(1, 1001))
        median = hist.value_at_quantile(0.5)
        assert median == pytest.approx(500, rel=0.05)
        p99 = hist.value_at_quantile(0.99)
        assert p99 == pytest.approx(990, rel=0.05)

    def test_relative_precision_bound(self):
        """Each recorded value lands in a bucket whose bounds are within
        the configured relative precision."""
        precision = 32
        hist = HdrHistogram(precision=precision)
        for value in (1e-6, 3.3e-5, 0.75, 123.0, 9e5):
            index = hist._bucket_index(value)
            low, high = hist.bucket_bounds(index)
            assert low <= value <= high * (1 + 1e-9)
            assert high / low <= (1 + 1.0 / precision) * (1 + 1e-9)

    def test_quantile_curve_is_monotone(self):
        hist = HdrHistogram()
        hist.record_many([abs(math.sin(i)) * 100 + 1 for i in range(500)])
        curve = hist.quantile_curve()
        values = [value for __, value in curve]
        assert values == sorted(values)

    def test_merge(self):
        a, b = HdrHistogram(), HdrHistogram()
        a.record_many([1.0, 2.0])
        b.record_many([3.0, 4.0])
        a.merge(b)
        assert a.total == 4

    def test_merge_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            HdrHistogram(precision=32).merge(HdrHistogram(precision=64))

    def test_negative_value_rejected(self):
        with pytest.raises(EvaluationError):
            HdrHistogram().record(-1.0)

    def test_empty_quantile_rejected(self):
        with pytest.raises(EvaluationError, match="empty"):
            HdrHistogram().value_at_quantile(0.5)

    def test_invalid_quantile_rejected(self):
        hist = HdrHistogram()
        hist.record(1.0)
        with pytest.raises(EvaluationError):
            hist.value_at_quantile(0.0)

    @given(
        samples=st.lists(
            st.floats(min_value=1e-9, max_value=1e6, allow_nan=False),
            min_size=1, max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_quantile_accuracy_property(self, samples):
        """The HDR p-quantile is within one bucket's relative precision
        of the exact empirical quantile."""
        precision = 64
        hist = HdrHistogram(precision=precision)
        hist.record_many(samples)
        ordered = sorted(samples)
        for q in (0.5, 0.9, 0.99):
            # HDR uses the nearest-rank definition: the smallest value
            # with at least a q fraction of samples at or below it.
            rank = max(0, math.ceil(q * len(ordered)) - 1)
            exact = ordered[rank]
            approx = hist.value_at_quantile(q)
            # approx is the upper bound of the bucket holding `exact`,
            # so it is within one bucket width above it (and never below).
            assert approx >= exact * (1 - 1e-9)
            assert approx <= max(exact, hist.min_value) * (
                (1 + 1.0 / precision) * (1 + 1e-9)
            )
