"""Tests for the result loader and the out-of-the-box plotter."""

from __future__ import annotations

import os

import pytest

from repro.casestudy import run_case_study
from repro.core.errors import EvaluationError, ResultError
from repro.evaluation.loader import load_experiment
from repro.evaluation.plotter import (
    latency_samples_us,
    plot_experiment,
    throughput_figure,
)


@pytest.fixture(scope="module")
def pos_results(tmp_path_factory):
    """One small pos case-study run shared by the module's tests."""
    root = tmp_path_factory.mktemp("results")
    handle = run_case_study(
        "pos",
        str(root),
        rates=[200_000, 1_000_000, 2_000_000],
        sizes=(64, 1500),
        duration_s=0.05,
        interval_s=0.01,
    )
    return load_experiment(handle.result_path)


@pytest.fixture(scope="module")
def vpos_results(tmp_path_factory):
    root = tmp_path_factory.mktemp("vresults")
    handle = run_case_study(
        "vpos",
        str(root),
        rates=[20_000, 60_000],
        sizes=(64,),
        duration_s=0.1,
        interval_s=0.05,
        seed=3,
    )
    return load_experiment(handle.result_path)


class TestLoader:
    def test_loads_all_runs_in_order(self, pos_results):
        assert len(pos_results.runs) == 6
        assert [run.index for run in pos_results.runs] == list(range(6))

    def test_metadata_and_variables_present(self, pos_results):
        assert pos_results.name == "linux-router-forwarding-pos"
        assert pos_results.variables["loop"]["pkt_sz"] == [64, 1500]

    def test_run_outputs_by_role(self, pos_results):
        run = pos_results.runs[0]
        assert "moongen.log" in run.outputs["loadgen"]
        assert "dut-stats.txt" in run.outputs["dut"]
        assert run.ok

    def test_filter_by_loop_value(self, pos_results):
        small = pos_results.filter(pkt_sz=64)
        assert len(small) == 3
        assert all(run.loop["pkt_sz"] == 64 for run in small)

    def test_filter_combined(self, pos_results):
        runs = pos_results.filter(pkt_sz=64, pkt_rate=1_000_000)
        assert len(runs) == 1

    def test_loop_values_order(self, pos_results):
        assert pos_results.loop_values("pkt_sz") == [64, 1500]

    def test_moongen_accessor_parses(self, pos_results):
        output = pos_results.runs[0].moongen()
        assert output.tx_summary is not None

    def test_missing_output_error_message(self, pos_results):
        run = pos_results.runs[0]
        with pytest.raises(ResultError, match="no file"):
            run.output("loadgen", "nonexistent.bin")
        with pytest.raises(ResultError, match="no outputs"):
            run.output("ghost-role", "x")

    def test_load_missing_folder(self):
        with pytest.raises(ResultError, match="no such"):
            load_experiment("/nonexistent/experiment")

    def test_inventory_records_testbed(self, pos_results):
        assert "testbed" in pos_results.inventory
        assert pos_results.inventory["nodes"]["tartu"]["power"]["protocol"] == "ipmi"


class TestThroughputFigure:
    def test_one_series_per_packet_size(self, pos_results):
        figure = throughput_figure(pos_results)
        labels = [series.label for series in figure.series]
        assert labels == ["pkt_sz=64", "pkt_sz=1500"]

    def test_points_sorted_by_offered_rate(self, pos_results):
        figure = throughput_figure(pos_results)
        xs = [x for x, __ in figure.series[0].points]
        assert xs == sorted(xs)

    def test_fig3a_shape(self, pos_results):
        """64 B tops out near 1.75 Mpps; 1500 B near the 10 G line rate."""
        figure = throughput_figure(pos_results)
        by_label = {series.label: series.points for series in figure.series}
        peak_64 = max(y for __, y in by_label["pkt_sz=64"])
        peak_1500 = max(y for __, y in by_label["pkt_sz=1500"])
        assert peak_64 == pytest.approx(1.75, rel=0.05)
        assert peak_1500 == pytest.approx(0.82, rel=0.05)

    def test_missing_logs_raise(self, tmp_path):
        from repro.evaluation.loader import ExperimentResults

        empty = ExperimentResults(
            path=str(tmp_path), metadata={}, variables={}, inventory={}
        )
        with pytest.raises(EvaluationError, match="no plottable runs"):
            throughput_figure(empty)


class TestLatencySamples:
    def test_pos_runs_have_latency(self, pos_results):
        samples = latency_samples_us(pos_results, pkt_sz=64)
        assert samples
        assert all(sample > 0 for sample in samples)

    def test_vpos_runs_have_none(self, vpos_results):
        assert latency_samples_us(vpos_results) == []


class TestPlotExperiment:
    def test_pos_produces_throughput_and_latency_figures(self, pos_results):
        written = plot_experiment(pos_results, formats=("svg",))
        names = sorted(os.path.basename(path) for path in written)
        assert names == [
            "latency_cdf.svg",
            "latency_hdr.svg",
            "latency_hist.svg",
            "latency_violin.svg",
            "loss.svg",
            "throughput.svg",
        ]

    def test_vpos_produces_throughput_only(self, vpos_results):
        """Appendix A: no latency figures on the virtual testbed."""
        written = plot_experiment(vpos_results, formats=("svg",))
        names = sorted(os.path.basename(path) for path in written)
        assert names == ["loss.svg", "throughput.svg"]

    def test_custom_output_dir(self, pos_results, tmp_path):
        written = plot_experiment(
            pos_results, output_dir=str(tmp_path / "figs"), formats=("tex",)
        )
        assert all(str(tmp_path) in path for path in written)


class TestLossFigure:
    def test_loss_knee_matches_ceiling(self, pos_results):
        from repro.evaluation.plotter import loss_figure

        figure = loss_figure(pos_results)
        by_label = {series.label: series.points for series in figure.series}
        # 64 B: no loss at 1.0 Mpps, visible loss at 2.0 Mpps.
        losses = dict(by_label["pkt_sz=64"])
        assert losses[1.0] < 1.0
        assert losses[2.0] > 10.0

    def test_loss_is_percentage_bounded(self, pos_results):
        from repro.evaluation.plotter import loss_figure

        figure = loss_figure(pos_results)
        for series in figure.series:
            for __, loss in series.points:
                assert 0.0 <= loss <= 100.0
