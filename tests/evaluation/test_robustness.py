"""Tests for the robustness-scan utilities."""

from __future__ import annotations

import pytest

from repro.core.errors import EvaluationError
from repro.evaluation.robustness import (
    find_cliffs,
    robustness_report,
    scan,
)


class TestScan:
    def test_measures_every_point_in_order(self):
        points = scan([1, 2, 3], measure=lambda value: value * 10)
        assert points == [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            scan([], measure=lambda value: value)


class TestFindCliffs:
    def test_smooth_curve_has_no_cliffs(self):
        points = [(float(x), 100.0 + x) for x in range(10)]
        assert find_cliffs(points, tolerance=0.10) == []

    def test_step_is_detected(self):
        points = [(1.0, 100.0), (2.0, 100.0), (3.0, 60.0), (4.0, 60.0)]
        cliffs = find_cliffs(points, tolerance=0.10)
        assert len(cliffs) == 1
        cliff = cliffs[0]
        assert (cliff.parameter_before, cliff.parameter_after) == (2.0, 3.0)
        assert cliff.relative_change == pytest.approx(-0.4)

    def test_tolerance_bounds(self):
        points = [(1.0, 100.0), (2.0, 95.0)]
        assert find_cliffs(points, tolerance=0.10) == []
        assert len(find_cliffs(points, tolerance=0.01)) == 1

    def test_unsorted_points_rejected(self):
        with pytest.raises(EvaluationError, match="increasing"):
            find_cliffs([(2.0, 1.0), (1.0, 1.0)])

    def test_bad_tolerance_rejected(self):
        with pytest.raises(EvaluationError):
            find_cliffs([(1.0, 1.0), (2.0, 2.0)], tolerance=1.5)

    def test_all_zero_metric_is_not_a_cliff(self):
        points = [(1.0, 0.0), (2.0, 0.0)]
        assert find_cliffs(points) == []

    def test_upward_cliff_detected(self):
        points = [(1.0, 50.0), (2.0, 100.0)]
        cliffs = find_cliffs(points, tolerance=0.10)
        assert cliffs[0].relative_change == pytest.approx(0.5)


class TestReport:
    def test_report_flags_cliff_rows(self):
        points = [(1024.0, 1.6), (1025.0, 1.0)]
        report = robustness_report(
            points, parameter_name="pkt_sz", metric_name="mpps",
        )
        assert "pkt_sz=1024" in report
        assert "<-- cliff" in report
        assert "1 brittle transition" in report

    def test_report_clean_scan(self):
        points = [(1.0, 5.0), (2.0, 5.0)]
        report = robustness_report(points)
        assert "no brittle transitions" in report


class TestEndToEndWithRouter:
    def test_descriptor_cliff_found_by_scan(self):
        """The Zilberman scenario: sweeping packet size around the
        receive-buffer boundary exposes a throughput cliff the single
        published operating point would hide."""
        from repro.netsim.engine import Simulator
        from repro.netsim.link import DirectWire
        from repro.netsim.nic import HardwareNic
        from repro.netsim.packet import Packet
        from repro.netsim.router import LinuxRouter

        def throughput_at(frame_size: float) -> float:
            sim = Simulator()
            tx = HardwareNic(sim, "tx", line_rate_bps=100e9)
            rx = HardwareNic(sim, "rx", line_rate_bps=100e9)
            p0 = HardwareNic(sim, "p0", line_rate_bps=100e9)
            p1 = HardwareNic(sim, "p1", line_rate_bps=100e9)
            router = LinuxRouter(
                sim, rx_buffer_bytes=1024, extra_descriptor_cost_s=400e-9
            )
            router.add_port(p0)
            router.add_port(p1)
            DirectWire(sim, tx, p0)
            DirectWire(sim, p1, rx)
            received = []
            rx.set_rx_handler(received.append)
            for seq in range(20_000):
                sim.schedule(
                    seq / 4_000_000,
                    tx.transmit,
                    Packet(seq=seq, frame_size=int(frame_size)),
                )
            sim.run()
            return len(received) / 0.005

        points = scan([960, 1000, 1024, 1025, 1060, 1100], throughput_at)
        cliffs = find_cliffs(points, tolerance=0.10)
        assert len(cliffs) == 1
        assert cliffs[0].parameter_before == 1024
        assert cliffs[0].parameter_after == 1025
        assert cliffs[0].relative_change < -0.2
