"""Tests for the replication checker."""

from __future__ import annotations

import pytest

from repro.casestudy import run_case_study
from repro.core.errors import EvaluationError
from repro.evaluation.loader import load_experiment
from repro.evaluation.replication import (
    ReplicationReport,
    RunComparison,
    compare_experiments,
    sample_consistency,
)


def run_once(tmp_path, sub, seed, rates=(1_000_000, 2_000_000)):
    handle = run_case_study(
        "pos", str(tmp_path / sub), rates=list(rates), sizes=(64,),
        duration_s=0.02, interval_s=0.01, seed=seed,
    )
    return load_experiment(handle.result_path)


class TestRepeatability:
    def test_identical_reruns_repeat(self, tmp_path):
        original = run_once(tmp_path, "a", seed=1)
        rerun = run_once(tmp_path, "b", seed=1)
        report = compare_experiments(original, rerun, tolerance=0.01)
        assert report.structurally_identical
        assert report.repeats
        assert len(report.comparisons) == 2
        assert "REPEATS" in report.summary()

    def test_metric_deviation_detected(self, tmp_path):
        original = run_once(tmp_path, "a", seed=1)
        rerun = run_once(tmp_path, "b", seed=1)
        # Tamper with the rerun's captured MoonGen log: halve the RX
        # summary (a "different testbed" in disguise).
        run = rerun.runs[0]
        log = run.outputs["loadgen"]["moongen.log"]
        tampered = []
        for line in log.splitlines():
            if "RX" in line and "total" in line:
                line = line.replace("1.0", "0.5", 1)
            tampered.append(line)
        run.outputs["loadgen"]["moongen.log"] = "\n".join(tampered) + "\n"
        report = compare_experiments(original, rerun, tolerance=0.05)
        assert not report.repeats
        assert len(report.deviating_runs) == 1
        assert "DIFFERS" in report.summary()

    def test_structural_difference_detected(self, tmp_path):
        original = run_once(tmp_path, "a", seed=1, rates=(1_000_000, 2_000_000))
        rerun = run_once(tmp_path, "b", seed=1, rates=(1_000_000,))
        report = compare_experiments(original, rerun)
        assert not report.structurally_identical
        assert report.only_in_original == [
            {"pkt_rate": 2_000_000, "pkt_sz": 64}
        ]
        assert not report.repeats

    def test_extra_runs_in_rerun_detected(self, tmp_path):
        original = run_once(tmp_path, "a", seed=1, rates=(1_000_000,))
        rerun = run_once(tmp_path, "b", seed=1, rates=(1_000_000, 2_000_000))
        report = compare_experiments(original, rerun)
        assert len(report.only_in_rerun) == 1

    def test_bad_tolerance_rejected(self, tmp_path):
        results = run_once(tmp_path, "a", seed=1, rates=(1_000_000,))
        with pytest.raises(EvaluationError):
            compare_experiments(results, results, tolerance=0.0)

    def test_self_comparison_always_repeats(self, tmp_path):
        results = run_once(tmp_path, "a", seed=3, rates=(1_000_000,))
        report = compare_experiments(results, results, tolerance=0.001)
        assert report.repeats
        assert report.comparisons[0].rx_deviation == 0.0

    def test_tx_deviation_detected_from_captured_logs(self, tmp_path):
        """A rerun whose load generator *offered* a different rate must
        fail the check even when the forwarded (RX) rate matches."""
        original = run_once(tmp_path, "a", seed=1, rates=(1_000_000,))
        rerun = run_once(tmp_path, "b", seed=1, rates=(1_000_000,))
        run = rerun.runs[0]
        log = run.outputs["loadgen"]["moongen.log"]
        tampered = []
        for line in log.splitlines():
            if "TX" in line and "total" in line:
                line = line.replace("1.0", "0.5", 1)
            tampered.append(line)
        run.outputs["loadgen"]["moongen.log"] = "\n".join(tampered) + "\n"
        report = compare_experiments(original, rerun, tolerance=0.05)
        assert not report.repeats
        comparison = report.deviating_runs[0]
        assert comparison.rx_deviation <= report.tolerance
        assert comparison.tx_deviation > report.tolerance
        assert "tx 1.0" in report.summary()

    def test_disjoint_loop_grids_are_reported_on_both_sides(self, tmp_path):
        """Entirely different loop grids are not a 'failed repeat' — the
        report names the runs unique to *each* side and shares nothing."""
        original = run_once(tmp_path, "a", seed=1, rates=(1_000_000,))
        rerun = run_once(tmp_path, "b", seed=1, rates=(2_000_000,))
        report = compare_experiments(original, rerun)
        assert report.comparisons == []
        assert report.only_in_original == [
            {"pkt_rate": 1_000_000, "pkt_sz": 64}
        ]
        assert report.only_in_rerun == [
            {"pkt_rate": 2_000_000, "pkt_sz": 64}
        ]
        assert not report.structurally_identical
        assert not report.repeats

    def test_vpos_reruns_with_different_seeds_repeat_below_ceiling(self, tmp_path):
        """Below the drop-free ceiling the vpos platform repeats across
        seeds — stochastic models only bite under overload."""
        def vpos_run(sub, seed):
            handle = run_case_study(
                "vpos", str(tmp_path / sub), rates=[20_000], sizes=(64,),
                duration_s=0.2, seed=seed,
            )
            return load_experiment(handle.result_path)

        report = compare_experiments(
            vpos_run("a", seed=1), vpos_run("b", seed=99), tolerance=0.02
        )
        assert report.repeats


class TestRunComparison:
    def make(self, rx=(1.0, 1.0), tx=(1.0, 1.0)):
        return RunComparison(
            loop={"pkt_rate": 1_000_000},
            original_rx_mpps=rx[0], rerun_rx_mpps=rx[1],
            original_tx_mpps=tx[0], rerun_tx_mpps=tx[1],
        )

    def test_deviation_is_the_worst_of_both_directions(self):
        comparison = self.make(rx=(1.0, 0.99), tx=(1.0, 0.8))
        assert comparison.rx_deviation == pytest.approx(0.01)
        assert comparison.tx_deviation == pytest.approx(0.2)
        assert comparison.deviation == comparison.tx_deviation

    def test_verdict_gates_on_tx_alone(self):
        """Identical RX but a drifted TX flips the verdict: both
        measured directions are first-class."""
        report = ReplicationReport(
            tolerance=0.05,
            comparisons=[self.make(tx=(1.0, 0.8))],
        )
        assert len(report.deviating_runs) == 1
        assert not report.repeats
        summary = report.summary()
        assert "rx 1.0000 -> 1.0000" in summary
        assert "tx 1.0000 -> 0.8000" in summary

    def test_zero_original_uses_the_absolute_floor(self):
        """An all-zero original must not divide by zero; any nonzero
        rerun value then deviates (enormously)."""
        comparison = self.make(rx=(0.0, 0.1))
        assert comparison.rx_deviation > 1.0


class TestSampleConsistency:
    def test_consistent_within_tolerance(self):
        verdict = sample_consistency([1.0, 1.02, 0.99], tolerance=0.05)
        assert verdict["consistent"]
        assert verdict["n"] == 3
        assert verdict["reference"] == 1.0
        assert verdict["max_deviation"] == pytest.approx(0.02)

    def test_single_sample_is_trivially_consistent(self):
        verdict = sample_consistency([3.5], tolerance=0.01)
        assert verdict["consistent"]
        assert verdict["max_deviation"] == 0.0

    def test_outlier_breaks_consistency(self):
        verdict = sample_consistency([1.0, 1.0, 2.0], tolerance=0.05)
        assert not verdict["consistent"]
        assert verdict["reference"] == 1.0
        assert verdict["max_deviation"] == pytest.approx(1.0)

    def test_boundary_deviation_still_consistent(self):
        """`max_deviation == tolerance` passes: the gate is inclusive,
        matching the pairwise checker's strict `>` on deviations."""
        verdict = sample_consistency([1.0, 1.0, 1.5], tolerance=0.5)
        assert verdict["max_deviation"] == 0.5
        assert verdict["consistent"]

    def test_empty_samples_rejected(self):
        with pytest.raises(EvaluationError):
            sample_consistency([], tolerance=0.05)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(EvaluationError):
            sample_consistency([1.0], tolerance=0.0)
