"""Tests for the replication checker."""

from __future__ import annotations

import pytest

from repro.casestudy import run_case_study
from repro.core.errors import EvaluationError
from repro.evaluation.loader import load_experiment
from repro.evaluation.replication import compare_experiments


def run_once(tmp_path, sub, seed, rates=(1_000_000, 2_000_000)):
    handle = run_case_study(
        "pos", str(tmp_path / sub), rates=list(rates), sizes=(64,),
        duration_s=0.02, interval_s=0.01, seed=seed,
    )
    return load_experiment(handle.result_path)


class TestRepeatability:
    def test_identical_reruns_repeat(self, tmp_path):
        original = run_once(tmp_path, "a", seed=1)
        rerun = run_once(tmp_path, "b", seed=1)
        report = compare_experiments(original, rerun, tolerance=0.01)
        assert report.structurally_identical
        assert report.repeats
        assert len(report.comparisons) == 2
        assert "REPEATS" in report.summary()

    def test_metric_deviation_detected(self, tmp_path):
        original = run_once(tmp_path, "a", seed=1)
        rerun = run_once(tmp_path, "b", seed=1)
        # Tamper with the rerun's captured MoonGen log: halve the RX
        # summary (a "different testbed" in disguise).
        run = rerun.runs[0]
        log = run.outputs["loadgen"]["moongen.log"]
        tampered = []
        for line in log.splitlines():
            if "RX" in line and "total" in line:
                line = line.replace("1.0", "0.5", 1)
            tampered.append(line)
        run.outputs["loadgen"]["moongen.log"] = "\n".join(tampered) + "\n"
        report = compare_experiments(original, rerun, tolerance=0.05)
        assert not report.repeats
        assert len(report.deviating_runs) == 1
        assert "DIFFERS" in report.summary()

    def test_structural_difference_detected(self, tmp_path):
        original = run_once(tmp_path, "a", seed=1, rates=(1_000_000, 2_000_000))
        rerun = run_once(tmp_path, "b", seed=1, rates=(1_000_000,))
        report = compare_experiments(original, rerun)
        assert not report.structurally_identical
        assert report.only_in_original == [
            {"pkt_rate": 2_000_000, "pkt_sz": 64}
        ]
        assert not report.repeats

    def test_extra_runs_in_rerun_detected(self, tmp_path):
        original = run_once(tmp_path, "a", seed=1, rates=(1_000_000,))
        rerun = run_once(tmp_path, "b", seed=1, rates=(1_000_000, 2_000_000))
        report = compare_experiments(original, rerun)
        assert len(report.only_in_rerun) == 1

    def test_bad_tolerance_rejected(self, tmp_path):
        results = run_once(tmp_path, "a", seed=1, rates=(1_000_000,))
        with pytest.raises(EvaluationError):
            compare_experiments(results, results, tolerance=0.0)

    def test_self_comparison_always_repeats(self, tmp_path):
        results = run_once(tmp_path, "a", seed=3, rates=(1_000_000,))
        report = compare_experiments(results, results, tolerance=0.001)
        assert report.repeats
        assert report.comparisons[0].rx_deviation == 0.0

    def test_vpos_reruns_with_different_seeds_repeat_below_ceiling(self, tmp_path):
        """Below the drop-free ceiling the vpos platform repeats across
        seeds — stochastic models only bite under overload."""
        def vpos_run(sub, seed):
            handle = run_case_study(
                "vpos", str(tmp_path / sub), rates=[20_000], sizes=(64,),
                duration_s=0.2, seed=seed,
            )
            return load_experiment(handle.result_path)

        report = compare_experiments(
            vpos_run("a", seed=1), vpos_run("b", seed=99), tolerance=0.02
        )
        assert report.repeats
