"""Additional plotting coverage: axes options, exports, markers."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.evaluation.plots import (
    Figure,
    Series,
    build_scene,
    export,
    figure_to_tex,
    line_plot,
    scene_to_pdf,
    scene_to_svg,
)
from repro.evaluation.plots.figure import log_ticks
from repro.evaluation.plots.scene import Polyline, Rect, Text


class TestLogAxes:
    def test_log_ticks_are_decades(self):
        assert log_ticks(0.5, 200.0) == [0.1, 1.0, 10.0, 100.0, 1000.0]

    def test_log_figure_renders(self):
        figure = line_plot({"a": [(1, 1), (10, 5), (100, 9)]})
        figure.x_log = True
        svg = scene_to_svg(build_scene(figure))
        ET.fromstring(svg)

    def test_log_ticks_reject_nonpositive(self):
        with pytest.raises(Exception):
            log_ticks(0.0, 10.0)

    def test_log_spacing_is_geometric(self):
        figure = Figure(x_log=True, grid=False, legend=False)
        figure.add(Series(label="", points=[(1, 0), (10, 1), (100, 2)],
                          markers=False))
        scene = build_scene(figure)
        line = next(i for i in scene.items if isinstance(i, Polyline))
        xs = [x for x, __ in line.points]
        # Equal pixel spacing for equal ratios.
        assert xs[1] - xs[0] == pytest.approx(xs[2] - xs[1], rel=1e-6)


class TestCustomTicks:
    def test_custom_y_ticks_rendered(self):
        figure = Figure(
            y_ticks=[(0.0, "zero"), (1.0, "one")],
            ylim=(0.0, 1.0),
            legend=False,
        )
        figure.add(Series(label="", points=[(0, 0), (1, 1)], markers=False))
        scene = build_scene(figure)
        labels = [item.text for item in scene.items if isinstance(item, Text)]
        assert "zero" in labels and "one" in labels

    def test_ticks_outside_limits_skipped(self):
        figure = Figure(
            x_ticks=[(0.5, "in"), (9.0, "out")],
            xlim=(0.0, 1.0),
            legend=False,
        )
        figure.add(Series(label="", points=[(0.2, 1), (0.8, 2)], markers=False))
        labels = [item.text for item in build_scene(figure).items
                  if isinstance(item, Text)]
        assert "in" in labels and "out" not in labels


class TestMarkersAndLegend:
    def test_markers_suppressed_for_dense_series(self):
        dense = [(float(i), float(i)) for i in range(200)]
        figure = line_plot({"dense": dense})
        scene = build_scene(figure)
        # No marker rects beyond grid/frame/legend artifacts: count rects
        # with tiny size (markers are ~4.5pt squares).
        tiny = [item for item in scene.items
                if isinstance(item, Rect) and item.w < 6 and item.h < 6]
        assert tiny == []

    def test_legend_suppressed(self):
        figure = line_plot({"visible": [(0, 0), (1, 1)]})
        figure.legend = False
        labels = [item.text for item in build_scene(figure).items
                  if isinstance(item, Text)]
        assert "visible" not in labels

    def test_distinct_marker_shapes_by_series_index(self):
        figure = line_plot({
            "a": [(0, 0), (1, 1)],
            "b": [(0, 1), (1, 2)],
            "c": [(0, 2), (1, 3)],
        })
        svg = scene_to_svg(build_scene(figure))
        # square markers (rect) for series 0, polygons for 1 and 2.
        assert "<polygon" in svg and "<rect" in svg


class TestExports:
    def test_pdf_larger_figures_still_valid(self):
        figure = line_plot(
            {f"s{i}": [(x, x * i) for x in range(20)] for i in range(1, 5)},
            title="many series",
        )
        pdf = scene_to_pdf(build_scene(figure))
        assert pdf.startswith(b"%PDF-1.4")
        assert pdf.count(b"endobj") == 6

    def test_tex_custom_ticks(self):
        figure = Figure(x_ticks=[(0.0, "a%b"), (1.0, "c")])
        figure.add(Series(label="s", points=[(0, 0), (1, 1)]))
        tex = figure_to_tex(figure)
        assert "xtick={0,1}" in tex
        assert "a\\%b" in tex

    def test_export_twice_is_deterministic(self, tmp_path):
        figure = line_plot({"a": [(0, 0), (1, 1)]}, title="det")
        first = export(figure, str(tmp_path / "one"))
        second = export(figure, str(tmp_path / "two"))
        for path_a, path_b in zip(first, second):
            with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
                assert fa.read() == fb.read()
