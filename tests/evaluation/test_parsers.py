"""Tests for the MoonGen and iPerf output parsers."""

from __future__ import annotations

import pytest

from repro.core.errors import ParseError
from repro.evaluation.iperf_parser import parse_iperf_output
from repro.evaluation.moongen_parser import (
    parse_histogram_csv,
    parse_moongen_output,
)

SAMPLE = """\
[Device: id=0] TX: 0.100000 Mpps, 51.20 Mbit/s (67.20 Mbit/s with framing)
[Device: id=1] RX: 0.099000 Mpps, 50.69 Mbit/s (66.53 Mbit/s with framing)
[Device: id=0] TX: 0.100000 Mpps (total 10000 packets with 640000 bytes payload)
[Device: id=1] RX: 0.099000 Mpps (total 9900 packets with 633600 bytes payload)
[Latency] min: 0.721 us, avg: 0.812 us, max: 9.313 us, samples: 100
"""


class TestMoonGenParser:
    def test_summaries(self):
        output = parse_moongen_output(SAMPLE)
        assert output.tx_summary.packets == 10000
        assert output.rx_summary.packets == 9900
        assert output.tx_mpps == pytest.approx(0.1)
        assert output.rx_mpps == pytest.approx(0.099)

    def test_intervals(self):
        output = parse_moongen_output(SAMPLE)
        assert output.tx_interval_mpps == [0.1]
        assert output.rx_interval_mpps == [0.099]

    def test_latency_summary(self):
        latency = parse_moongen_output(SAMPLE).latency
        assert latency.min_us == pytest.approx(0.721)
        assert latency.samples == 100

    def test_loss_fraction(self):
        output = parse_moongen_output(SAMPLE)
        assert output.loss_fraction == pytest.approx(0.01)

    def test_no_latency_section_ok(self):
        text = "\n".join(SAMPLE.splitlines()[:-1])
        assert parse_moongen_output(text).latency is None

    def test_missing_summary_raises_on_access(self):
        output = parse_moongen_output(SAMPLE.splitlines()[0])
        with pytest.raises(ParseError, match="summary"):
            __ = output.tx_mpps

    def test_junk_line_rejected(self):
        with pytest.raises(ParseError, match="unrecognized"):
            parse_moongen_output(SAMPLE + "random garbage\n")

    def test_blank_lines_tolerated(self):
        padded = "\n" + SAMPLE.replace("\n", "\n\n")
        assert parse_moongen_output(padded).tx_summary.packets == 10000

    def test_zero_tx_loss_is_zero(self):
        text = (
            "[Device: id=0] TX: 0.000000 Mpps (total 0 packets with 0 bytes payload)\n"
            "[Device: id=1] RX: 0.000000 Mpps (total 0 packets with 0 bytes payload)\n"
        )
        assert parse_moongen_output(text).loss_fraction == 0.0


class TestHistogramCsv:
    def test_parse(self):
        buckets = parse_histogram_csv("latency_ns,count\n1000,5\n2000,3\n")
        assert buckets == {1000: 5, 2000: 3}

    def test_duplicate_buckets_accumulate(self):
        buckets = parse_histogram_csv("latency_ns,count\n1000,5\n1000,2\n")
        assert buckets == {1000: 7}

    def test_bad_header(self):
        with pytest.raises(ParseError, match="header"):
            parse_histogram_csv("nanoseconds,count\n1,1\n")

    def test_empty_input(self):
        with pytest.raises(ParseError, match="empty"):
            parse_histogram_csv("")

    def test_non_integer_rejected(self):
        with pytest.raises(ParseError):
            parse_histogram_csv("latency_ns,count\nabc,1\n")

    def test_negative_count_rejected(self):
        with pytest.raises(ParseError, match="negative"):
            parse_histogram_csv("latency_ns,count\n1000,-1\n")

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ParseError):
            parse_histogram_csv("latency_ns,count\n1000,1,9\n")


IPERF_SAMPLE = """\
------------------------------------------------------------
Client connecting to DuT, UDP, 1470 byte datagrams
------------------------------------------------------------
[  3]  0.0- 1.0 sec   1250000 Bytes    10.00 Mbits/sec
[  3]  1.0- 2.0 sec   1225000 Bytes     9.80 Mbits/sec
[  3]  0.0-2.0 sec   2475000 Bytes     9.90 Mbits/sec (summary)
"""


class TestIperfParser:
    def test_summary_and_intervals(self):
        output = parse_iperf_output(IPERF_SAMPLE)
        assert output.throughput_mbits == pytest.approx(9.9)
        assert output.interval_mbits == [10.0, 9.8]
        assert output.total_bytes == 2475000

    def test_banner_lines_skipped(self):
        assert parse_iperf_output(IPERF_SAMPLE).summary_mbits is not None

    def test_missing_summary_raises_on_access(self):
        text = "\n".join(IPERF_SAMPLE.splitlines()[:-1])
        with pytest.raises(ParseError, match="summary"):
            __ = parse_iperf_output(text).throughput_mbits

    def test_junk_rejected(self):
        with pytest.raises(ParseError, match="unrecognized"):
            parse_iperf_output("hello world\n")
