"""Integration tests: the full case study on both platforms.

These check the *shape* results the paper reports in Sec. 5 — who wins,
by what factor, and where the qualitative behaviours (size-independent
VM ceiling, instability under overload, missing VM latency) appear.
"""

from __future__ import annotations

import os

import pytest

from repro.casestudy import (
    VPOS_RATES,
    build_case_study_experiment,
    build_environment,
    run_case_study,
)
from repro.core.errors import ExperimentError
from repro.evaluation.loader import load_experiment


@pytest.fixture(scope="module")
def pos_handle(tmp_path_factory):
    return run_case_study(
        "pos",
        str(tmp_path_factory.mktemp("pos")),
        rates=[500_000, 1_000_000, 1_500_000, 2_000_000],
        sizes=(64, 1500),
        duration_s=0.05,
        interval_s=0.01,
    )


@pytest.fixture(scope="module")
def vpos_handle(tmp_path_factory):
    return run_case_study(
        "vpos",
        str(tmp_path_factory.mktemp("vpos")),
        rates=[10_000, 30_000, 50_000, 100_000, 200_000],
        sizes=(64, 1500),
        duration_s=0.25,
        interval_s=0.05,
        seed=1,
    )


class TestExperimentDefinition:
    def test_default_vpos_sweep_matches_appendix(self):
        experiment = build_case_study_experiment("vpos")
        assert experiment.variables.run_count() == 60  # 2 sizes x 30 rates
        assert experiment.variables.loop_vars["pkt_rate"] == VPOS_RATES
        assert VPOS_RATES[0] == 10_000 and VPOS_RATES[-1] == 300_000

    def test_planned_duration_is_three_hours(self):
        experiment = build_case_study_experiment("vpos")
        assert experiment.duration_s == pytest.approx(3 * 3600)

    def test_roles_and_nodes_per_platform(self):
        pos_exp = build_case_study_experiment("pos")
        assert pos_exp.node_names == ["riga", "tartu"]
        vpos_exp = build_case_study_experiment("vpos")
        assert vpos_exp.node_names == ["vriga", "vtartu"]

    def test_same_scripts_on_both_platforms(self):
        """The paper: experiment scripts are the same for both setups."""
        pos_exp = build_case_study_experiment("pos")
        vpos_exp = build_case_study_experiment("vpos")
        assert (
            pos_exp.role("dut").setup.describe()["commands"]
            == vpos_exp.role("dut").setup.describe()["commands"]
        )
        assert (
            pos_exp.role("loadgen").measurement.describe()["callable"]
            == vpos_exp.role("loadgen").measurement.describe()["callable"]
        )

    def test_unknown_platform_rejected(self):
        with pytest.raises(ExperimentError):
            build_case_study_experiment("qpos")
        with pytest.raises(ExperimentError):
            build_environment("qpos", "/tmp/x")


class TestPosShape:
    def test_all_runs_complete(self, pos_handle):
        assert pos_handle.completed_runs == 8
        assert pos_handle.failed_runs == 0

    def test_64b_ceiling_1_75_mpps(self, pos_handle):
        results = load_experiment(pos_handle.result_path)
        peak = max(
            run.moongen().rx_mpps for run in results.filter(pkt_sz=64)
        )
        assert peak == pytest.approx(1.75, rel=0.05)

    def test_1500b_line_rate_bound(self, pos_handle):
        results = load_experiment(pos_handle.result_path)
        peak = max(
            run.moongen().rx_mpps for run in results.filter(pkt_sz=1500)
        )
        assert peak == pytest.approx(0.82, rel=0.05)

    def test_below_ceiling_is_drop_free(self, pos_handle):
        results = load_experiment(pos_handle.result_path)
        run = results.filter(pkt_sz=64, pkt_rate=500_000)[0]
        assert run.moongen().loss_fraction < 0.01

    def test_latency_collected_on_hardware(self, pos_handle):
        results = load_experiment(pos_handle.result_path)
        run = results.filter(pkt_sz=64, pkt_rate=500_000)[0]
        assert "histogram.csv" in run.outputs["loadgen"]
        assert run.moongen().latency is not None


class TestVposShape:
    def test_all_runs_complete(self, vpos_handle):
        assert vpos_handle.completed_runs == 10

    def test_drop_free_ceiling_near_004_for_both_sizes(self, vpos_handle):
        """Fig. 3b: drop-free forwarding up to ~0.04 Mpps regardless of
        packet size."""
        results = load_experiment(vpos_handle.result_path)
        for size in (64, 1500):
            low = results.filter(pkt_sz=size, pkt_rate=30_000)[0].moongen()
            assert low.loss_fraction < 0.02, f"pkt_sz={size} should be drop-free"
            high = results.filter(pkt_sz=size, pkt_rate=200_000)[0].moongen()
            assert high.rx_mpps < 0.08, f"pkt_sz={size} ceiling blown"

    def test_no_latency_histograms_in_vm(self, vpos_handle):
        results = load_experiment(vpos_handle.result_path)
        for run in results.runs:
            assert "histogram.csv" not in run.outputs.get("loadgen", {})

    def test_dut_stats_uploaded(self, vpos_handle):
        results = load_experiment(vpos_handle.result_path)
        stats = results.runs[0].output("dut", "dut-stats.txt")
        assert "router forwarding statistics" in stats


class TestCrossPlatform:
    def test_factor_tens_between_pos_and_vpos(self, pos_handle, vpos_handle):
        """Sec. 5: 'a decrease in the maximum forwarding throughput by a
        factor of up to 44'."""
        pos_results = load_experiment(pos_handle.result_path)
        vpos_results = load_experiment(vpos_handle.result_path)
        pos_peak = max(run.moongen().rx_mpps for run in pos_results.filter(pkt_sz=64))
        vpos_ceiling = max(
            run.moongen().rx_mpps
            for run in vpos_results.filter(pkt_sz=64)
            if run.moongen().loss_fraction < 0.02
        )
        factor = pos_peak / vpos_ceiling
        assert 25 <= factor <= 70

    def test_result_format_identical_across_platforms(
        self, pos_handle, vpos_handle
    ):
        """The same evaluation pipeline consumes both result trees."""
        for handle in (pos_handle, vpos_handle):
            results = load_experiment(handle.result_path)
            output = results.runs[0].moongen()
            assert output.tx_summary is not None
            assert os.path.isfile(
                os.path.join(handle.result_path, "run-000", "metadata.yml")
            )

    def test_reproducibility_same_seed_same_results(self, tmp_path):
        """Running the identical vpos experiment twice with the same
        seed yields identical packet counts — repeatability by design."""
        def totals(sub):
            handle = run_case_study(
                "vpos", str(tmp_path / sub), rates=[100_000], sizes=(64,),
                duration_s=0.1, seed=9,
            )
            results = load_experiment(handle.result_path)
            output = results.runs[0].moongen()
            return (output.tx_summary.packets, output.rx_summary.packets)

        assert totals("a") == totals("b")
