"""Smoke tests: the example scripts run end to end as subprocesses.

Examples are part of the public surface — a release whose examples
crash is broken no matter what the unit tests say.  The quick examples
run here; the two long studies (`linux_router_study.py`,
`artifact_workflow.py`) have dedicated integration coverage in
`tests/test_casestudy.py` and `tests/test_shell_casestudy.py`.
"""

from __future__ import annotations

import os
import subprocess
import sys


_EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)


def run_example(name: str, timeout: float = 120.0) -> str:
    completed = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, (
        f"{name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "runs: 3 ok, 0 failed" in output
        assert "1,000,000" in output

    def test_latency_study(self):
        output = run_example("latency_study.py")
        assert "direct wire" in output
        assert "cut-through 70% load" in output
        assert "wrote 15 figure files" in output

    def test_distributed_experiment(self):
        output = run_example("distributed_experiment.py")
        assert "nodes orchestrated: 15" in output
        assert output.count("ok=True") == 3

    def test_local_subprocess_experiment(self):
        output = run_example("local_subprocess_experiment.py")
        assert "gzip level" in output
        assert "runs: 3 ok, 0 failed" in output

    def test_programmable_switch(self):
        output = run_example("programmable_switch.py")
        assert "12.0" in output  # the 12 Mpps row
        assert "line rate" in output

    def test_generate_paper_figures(self, tmp_path):
        completed = subprocess.run(
            [
                sys.executable,
                os.path.join(_EXAMPLES_DIR, "generate_paper_figures.py"),
                "--output", str(tmp_path / "figs"),
            ],
            capture_output=True,
            text=True,
            timeout=400.0,
        )
        assert completed.returncode == 0, completed.stderr
        produced = sorted(os.listdir(tmp_path / "figs"))
        assert produced == [
            "fig1.svg", "fig2.svg", "fig3a.svg", "fig3b.svg", "table1.txt",
        ]
