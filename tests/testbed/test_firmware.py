"""Tests for the vendor-adapter firmware layer (Sec. 7 future work)."""

from __future__ import annotations

import pytest

from repro.testbed.firmware import (
    DellBiosAdapter,
    FirmwareError,
    FirmwareManager,
    SupermicroBiosAdapter,
)


class TestAdapters:
    def test_neutral_setting_maps_to_dell_dialect(self):
        adapter = DellBiosAdapter()
        command = adapter.set("turbo_boost", "disabled")
        assert command == "racadm set BIOS.ProcSettings.ProcTurboMode Disabled"
        assert adapter.get("turbo_boost") == "disabled"

    def test_neutral_setting_maps_to_supermicro_dialect(self):
        adapter = SupermicroBiosAdapter()
        command = adapter.set("turbo_boost", "disabled")
        assert command == (
            "sum -c ChangeBiosCfg --setting Turbo_Mode=Disable"
        )

    def test_vendor_dialects_differ_for_the_same_setting(self):
        """The incompatibility the paper complains about, modelled."""
        dell = DellBiosAdapter().set("c_states", "enabled")
        supermicro = SupermicroBiosAdapter().set("c_states", "enabled")
        assert dell != supermicro

    def test_unknown_setting_rejected(self):
        with pytest.raises(FirmwareError, match="unknown firmware setting"):
            DellBiosAdapter().set("quantum_mode", "enabled")

    def test_invalid_value_rejected(self):
        with pytest.raises(FirmwareError, match="invalid value"):
            DellBiosAdapter().set("turbo_boost", "turbo-plus")

    def test_vendor_coverage_gaps_surface(self):
        """Supermicro exposes no SR-IOV knob: asking for it must fail
        loudly, not silently skip."""
        adapter = SupermicroBiosAdapter()
        assert not adapter.supports("sr_iov")
        with pytest.raises(FirmwareError, match="no interface"):
            adapter.set("sr_iov", "enabled")

    def test_defaults_and_snapshot(self):
        adapter = DellBiosAdapter(defaults={"turbo_boost": "disabled"})
        snapshot = adapter.snapshot()
        assert snapshot["turbo_boost"] == "disabled"
        assert set(snapshot) == set(DellBiosAdapter.dialect)

    def test_firmware_survives_host_reboot(self):
        """NVRAM state is exactly what live boots do NOT reset."""
        from repro.netsim.host import SimHost

        host = SimHost("tartu")
        adapter = DellBiosAdapter()
        adapter.set("turbo_boost", "disabled")
        host.boot("debian-buster", "v1")
        host.boot("debian-buster", "v1")  # any number of live boots
        assert adapter.get("turbo_boost") == "disabled"


class TestFirmwareManager:
    def make_manager(self):
        manager = FirmwareManager()
        manager.register("tartu", DellBiosAdapter())
        manager.register("riga", SupermicroBiosAdapter())
        return manager

    def test_profile_applied_across_vendors(self):
        manager = self.make_manager()
        report = manager.apply_profile(
            {"turbo_boost": "enabled", "c_states": "disabled"},
            ["tartu", "riga"],
        )
        assert report.fully_applied
        assert report.applied["tartu"]["c_states"] == "disabled"
        assert report.applied["riga"]["c_states"] == "disabled"
        assert any("racadm" in command for command in report.commands)
        assert any("sum -c" in command for command in report.commands)

    def test_strict_mode_fails_on_unmanaged_node(self):
        manager = self.make_manager()
        with pytest.raises(FirmwareError, match="unmanaged"):
            manager.apply_profile(
                {"turbo_boost": "enabled"}, ["tartu", "mystery-box"]
            )

    def test_strict_mode_fails_on_vendor_gap(self):
        manager = self.make_manager()
        with pytest.raises(FirmwareError, match="no interface"):
            manager.apply_profile({"sr_iov": "enabled"}, ["riga"])

    def test_lenient_mode_reports_gaps(self):
        manager = self.make_manager()
        report = manager.apply_profile(
            {"sr_iov": "enabled"}, ["tartu", "riga", "mystery-box"],
            strict=False,
        )
        assert not report.fully_applied
        assert report.applied["tartu"]["sr_iov"] == "enabled"
        assert report.unsupported["riga"] == ["sr_iov"]
        assert report.unsupported["mystery-box"] == ["sr_iov"]

    def test_inventory_snapshot(self):
        manager = self.make_manager()
        manager.apply_profile({"turbo_boost": "disabled"}, ["tartu"])
        inventory = manager.inventory()
        assert inventory["tartu"]["turbo_boost"] == "disabled"
        assert "riga" in inventory


class TestPerformanceCoupling:
    def test_turbo_state_changes_the_measured_ceiling(self):
        """The reason firmware management matters: the same experiment
        on the same image measures different ceilings depending on a
        BIOS knob the OS cannot see."""
        from repro.netsim.engine import Simulator
        from repro.netsim.link import DirectWire
        from repro.netsim.nic import HardwareNic
        from repro.netsim.packet import Packet
        from repro.netsim.router import LinuxRouter

        def ceiling(turbo: str) -> float:
            sim = Simulator()
            tx, rx = HardwareNic(sim, "tx"), HardwareNic(sim, "rx")
            p0, p1 = HardwareNic(sim, "p0"), HardwareNic(sim, "p1")
            router = LinuxRouter(sim)
            router.add_port(p0)
            router.add_port(p1)
            DirectWire(sim, tx, p0)
            DirectWire(sim, p1, rx)
            adapter = DellBiosAdapter()
            adapter.set("turbo_boost", turbo)
            # 2.2 GHz base vs ~2.7 GHz turbo on the paper's Xeon 4214.
            router.frequency_scale = (
                1.0 if adapter.get("turbo_boost") == "enabled" else 2.2 / 2.7
            )
            times = []
            rx.set_rx_handler(lambda p: times.append(sim.now))
            duration = 0.01
            for seq in range(int(3_000_000 * duration)):
                sim.schedule(seq / 3_000_000, tx.transmit,
                             Packet(seq=seq, frame_size=64))
            sim.run()
            return sum(1 for t in times if t <= duration) / duration

        with_turbo = ceiling("enabled")
        without_turbo = ceiling("disabled")
        assert with_turbo == pytest.approx(1.75e6, rel=0.03)
        assert without_turbo == pytest.approx(1.75e6 * 2.2 / 2.7, rel=0.03)
        # An unmanaged BIOS would make these two "identical" experiments
        # disagree by ~20% — the hidden state of Sec. 7.
        assert (with_turbo - without_turbo) / with_turbo > 0.15
