"""Tests for the image registry and the node lifecycle."""

from __future__ import annotations

import pytest

from repro.core.errors import ImageError, NodeError
from repro.netsim.host import SimHost
from repro.testbed.images import ImageRegistry, default_registry
from repro.testbed.node import Node, NodeState
from repro.testbed.power import FlakyPowerControl, IpmiController
from repro.testbed.transport import SshTransport


class TestImageRegistry:
    def test_register_and_resolve(self):
        registry = ImageRegistry()
        registry.register("debian", "v1", kernel="4.19")
        spec = registry.resolve("debian", "v1")
        assert spec.kernel == "4.19"

    def test_latest_resolves_newest(self):
        registry = ImageRegistry()
        registry.register("debian", "v1", kernel="4.19")
        registry.register("debian", "v2", kernel="5.10")
        assert registry.resolve("debian").kernel == "5.10"

    def test_snapshot_pinning_is_stable(self):
        """The snapshot.debian.org property: a pinned version never
        changes, even when newer snapshots are registered."""
        registry = ImageRegistry()
        registry.register("debian", "20200908", kernel="4.19.0-10")
        pinned = registry.resolve("debian", "20200908")
        registry.register("debian", "20211024", kernel="5.10.0-8")
        assert registry.resolve("debian", "20200908") == pinned

    def test_duplicate_version_rejected(self):
        registry = ImageRegistry()
        registry.register("debian", "v1", kernel="4.19")
        with pytest.raises(ImageError, match="already"):
            registry.register("debian", "v1", kernel="4.19")

    def test_unknown_image_and_version(self):
        registry = ImageRegistry()
        registry.register("debian", "v1", kernel="4.19")
        with pytest.raises(ImageError, match="unknown image"):
            registry.resolve("arch")
        with pytest.raises(ImageError, match="no version"):
            registry.resolve("debian", "v9")

    def test_default_registry_has_buster(self):
        registry = default_registry()
        spec = registry.resolve("debian-buster", "20201012T000000Z")
        assert spec.kernel.startswith("4.19")
        assert "debian-buster" in registry.names()

    def test_versions_listing(self):
        registry = default_registry()
        versions = registry.versions("debian-buster")
        assert versions == sorted(versions)
        with pytest.raises(ImageError):
            registry.versions("missing")

    def test_spec_is_immutable(self):
        spec = default_registry().resolve("debian-buster")
        with pytest.raises(AttributeError):
            spec.kernel = "hacked"  # type: ignore[misc]


def make_node(name="tartu", failures=0):
    host = SimHost(name)
    power = (
        FlakyPowerControl(host, failures=failures)
        if failures
        else IpmiController(host)
    )
    return Node(name, host=host, power=power, transport=SshTransport(host)), host


class TestNodeLifecycle:
    def test_reset_boots_pinned_image(self):
        node, host = make_node()
        node.set_image(default_registry().resolve("debian-buster", "latest"))
        node.set_boot_parameters({"isolcpus": "1-3"})
        node.reset()
        assert node.state is NodeState.READY
        assert host.image == "debian-buster"
        assert host.boot_parameters == {"isolcpus": "1-3"}

    def test_reset_without_image_rejected(self):
        node, __ = make_node()
        with pytest.raises(NodeError, match="no image"):
            node.reset()

    def test_reset_recovers_wedged_host(self):
        node, host = make_node()
        node.set_image(default_registry().resolve("debian-buster"))
        node.reset()
        host.wedge()
        node.reset()
        assert host.reachable
        assert node.reset_count == 2

    def test_power_retries_absorb_transient_failures(self):
        node, host = make_node(failures=2)
        node.set_image(default_registry().resolve("debian-buster"))
        node.reset()  # retried internally
        assert node.state is NodeState.READY

    def test_persistent_power_failure_marks_failed(self):
        node, __ = make_node(failures=10)
        node.set_image(default_registry().resolve("debian-buster"))
        with pytest.raises(NodeError, match="power cycle failed"):
            node.reset()
        assert node.state is NodeState.FAILED

    def test_allocate_release_cycle(self):
        node, __ = make_node()
        node.mark_allocated("alice")
        assert node.state is NodeState.ALLOCATED
        assert node.owner == "alice"
        node.release()
        assert node.state is NodeState.FREE
        assert node.owner is None
        assert node.image is None

    def test_double_allocation_rejected(self):
        node, __ = make_node()
        node.mark_allocated("alice")
        with pytest.raises(NodeError, match="cannot allocate"):
            node.mark_allocated("bob")

    def test_execute_via_transport(self):
        node, __ = make_node()
        node.set_image(default_registry().resolve("debian-buster"))
        node.reset()
        assert node.execute("hostname").stdout == "tartu"

    def test_node_without_transport_rejects_execute(self):
        node = Node("bare")
        with pytest.raises(NodeError, match="no transport"):
            node.execute("echo hi")

    def test_describe_full_record(self):
        node, __ = make_node()
        node.set_image(default_registry().resolve("debian-buster"))
        node.reset()
        info = node.describe()
        assert info["power"]["protocol"] == "ipmi"
        assert info["transport"]["protocol"] == "ssh"
        assert info["image"]["name"] == "debian-buster"
        assert info["hardware"]["hostname"] == "tartu"
