"""Tests for the topology layer and the pos/vpos scenario builders."""

from __future__ import annotations

import pytest

from repro.core.errors import TopologyError
from repro.netsim.engine import Simulator
from repro.netsim.host import SimHost
from repro.netsim.nic import HardwareNic
from repro.testbed.node import Node
from repro.testbed.scenarios import build_pos_pair, build_vpos_pair
from repro.testbed.topology import Topology
from tests.conftest import boot_and_configure


def make_wired_node(sim, name):
    host = SimHost(name)
    for iface in host.interfaces.values():
        iface.nic = HardwareNic(sim, f"{name}.{iface.name}")
    return Node(name, host=host)


class TestTopology:
    def test_wire_creates_link(self):
        sim = Simulator()
        topology = Topology(sim)
        topology.add_node(make_wired_node(sim, "a"))
        topology.add_node(make_wired_node(sim, "b"))
        wire = topology.wire("a", "eno1", "b", "eno1")
        assert wire.kind == "direct"
        assert len(topology.wires) == 1

    def test_duplicate_node_rejected(self):
        sim = Simulator()
        topology = Topology(sim)
        topology.add_node(make_wired_node(sim, "a"))
        with pytest.raises(TopologyError, match="duplicate"):
            topology.add_node(make_wired_node(sim, "a"))

    def test_unknown_node_or_port(self):
        sim = Simulator()
        topology = Topology(sim)
        topology.add_node(make_wired_node(sim, "a"))
        topology.add_node(make_wired_node(sim, "b"))
        with pytest.raises(TopologyError, match="unknown node"):
            topology.wire("zz", "eno1", "b", "eno1")
        with pytest.raises(TopologyError, match="no port"):
            topology.wire("a", "eth7", "b", "eno1")

    def test_port_reuse_rejected(self):
        sim = Simulator()
        topology = Topology(sim)
        for name in ("a", "b", "c"):
            topology.add_node(make_wired_node(sim, name))
        topology.wire("a", "eno1", "b", "eno1")
        with pytest.raises(TopologyError, match="already wired"):
            topology.wire("a", "eno1", "c", "eno1")

    def test_unknown_link_kind(self):
        sim = Simulator()
        topology = Topology(sim)
        topology.add_node(make_wired_node(sim, "a"))
        topology.add_node(make_wired_node(sim, "b"))
        with pytest.raises(TopologyError, match="unknown link kind"):
            topology.wire("a", "eno1", "b", "eno1", kind="wifi")

    def test_validate_detects_lonely_nodes(self):
        sim = Simulator()
        topology = Topology(sim)
        for name in ("a", "b", "c"):
            topology.add_node(make_wired_node(sim, name))
        topology.wire("a", "eno1", "b", "eno1")
        with pytest.raises(TopologyError, match="unwired"):
            topology.validate()

    def test_describe(self):
        sim = Simulator()
        topology = Topology(sim, controller_name="kaunas")
        topology.add_node(make_wired_node(sim, "a"))
        topology.add_node(make_wired_node(sim, "b"))
        topology.wire("a", "eno1", "b", "eno1", kind="optical-l1")
        described = topology.describe()
        assert described["controller"] == "kaunas"
        assert described["wires"][0]["kind"] == "optical-l1"

    def test_svg_rendering_mentions_all_entities(self):
        sim = Simulator()
        topology = Topology(sim, controller_name="kaunas")
        topology.add_node(make_wired_node(sim, "riga"))
        topology.add_node(make_wired_node(sim, "tartu"))
        topology.wire("riga", "eno1", "tartu", "eno1")
        svg = topology.to_svg()
        assert svg.startswith("<svg")
        for name in ("kaunas", "riga", "tartu"):
            assert name in svg
        assert svg.count("<rect") == 3  # controller + two hosts


class TestPosPair:
    def test_builds_two_directly_wired_nodes(self, pos_setup):
        assert set(pos_setup.nodes) == {"riga", "tartu"}
        assert len(pos_setup.topology.wires) == 2
        assert all(wire.kind == "direct" for wire in pos_setup.topology.wires)

    def test_roles_accessors(self, pos_setup):
        assert pos_setup.loadgen_node.name == "riga"
        assert pos_setup.dut_node.name == "tartu"

    def test_unconfigured_dut_forwards_nothing(self, pos_setup):
        """Without the setup script, the admission gate drops traffic —
        an unscripted configuration step cannot silently work."""
        for node in pos_setup.nodes.values():
            node.set_image(pos_setup.images.resolve("debian-buster"))
            node.reset()
        job = pos_setup.loadgen.start(rate_pps=10_000, frame_size=64, duration_s=0.01)
        pos_setup.sim.run(until=0.05)
        assert job.rx_packets == 0

    def test_configured_dut_forwards(self, pos_setup):
        boot_and_configure(pos_setup)
        job = pos_setup.loadgen.start(rate_pps=10_000, frame_size=64, duration_s=0.01)
        pos_setup.sim.run(until=0.05)
        # The final frame can leave right at the window edge and return
        # after the job closed — identical to a real MoonGen run.
        assert job.rx_packets == pytest.approx(job.tx_packets, abs=2)

    def test_latency_measurable_on_hardware(self, pos_setup):
        boot_and_configure(pos_setup)
        assert pos_setup.loadgen.supports_latency

    def test_switch_variants_buildable(self):
        optical = build_pos_pair(link_kind="optical-l1")
        assert all(w.kind == "optical-l1" for w in optical.topology.wires)
        shared = build_pos_pair(
            link_kind="cut-through", link_kwargs={"background_load": 0.5}
        )
        assert all(w.kind == "cut-through" for w in shared.topology.wires)

    def test_describe_is_complete(self, pos_setup):
        info = pos_setup.describe()
        assert info["platform"] == "pos"
        assert set(info["nodes"]) == {"riga", "tartu"}
        assert info["dut_model"]["model"] == "LinuxRouter"


class TestVposPair:
    def test_builds_vm_nodes_and_bridges(self, vpos_setup):
        assert set(vpos_setup.nodes) == {"vriga", "vtartu"}
        assert len(vpos_setup.bridges) == 2
        assert vpos_setup.hypervisor is not None

    def test_no_latency_support_in_vms(self, vpos_setup):
        """virtio NICs lack hardware timestamping (Appendix A)."""
        assert not vpos_setup.loadgen.supports_latency

    def test_traffic_flows_through_bridges(self, vpos_setup):
        boot_and_configure(vpos_setup)
        job = vpos_setup.loadgen.start(
            rate_pps=10_000, frame_size=64, duration_s=0.05
        )
        vpos_setup.sim.run(until=0.2)
        assert job.rx_packets > 0
        assert all(bridge.stats.forwarded > 0 for bridge in vpos_setup.bridges)

    def test_same_experiment_surface_as_pos(self, pos_setup, vpos_setup):
        """The paper's key claim: scripts work unchanged on both
        platforms.  Both setups expose the identical driving surface."""
        for setup in (pos_setup, vpos_setup):
            assert hasattr(setup.loadgen, "start")
            assert {"eno1", "eno2"} <= set(
                setup.dut_node.host.interfaces
            )
            assert setup.router.ports  # a 2-port DuT

    def test_seeds_give_reproducible_results(self):
        def run_once(seed):
            setup = build_vpos_pair(seed=seed)
            boot_and_configure(setup)
            job = setup.loadgen.start(
                rate_pps=100_000, frame_size=64, duration_s=0.1
            )
            setup.sim.run(until=0.2)
            setup.hypervisor.stop()
            return job.rx_packets

        assert run_once(11) == run_once(11)
