"""Tests for the sandboxed local nodes (real-subprocess hosts)."""

from __future__ import annotations

import os


from repro.testbed.local import (
    local_image_registry,
    make_local_node,
)


class TestSandboxPower:
    def test_power_on_wipes_the_sandbox(self, tmp_path):
        node = make_local_node("worker", str(tmp_path / "box"))
        node.set_image(local_image_registry().resolve("local-sandbox"))
        node.reset()
        node.transport.execute("mkdir sub && echo data > sub/file.txt")
        assert (tmp_path / "box" / "sub" / "file.txt").exists()
        node.reset()  # live-boot equivalent
        assert not (tmp_path / "box" / "sub").exists()

    def test_sandbox_created_if_missing(self, tmp_path):
        target = tmp_path / "does-not-exist-yet"
        node = make_local_node("worker", str(target))
        node.set_image(local_image_registry().resolve("local-sandbox"))
        node.reset()
        assert target.is_dir()

    def test_default_sandbox_is_tempdir(self):
        node = make_local_node("worker")
        assert os.path.isdir(node.transport.sandbox_dir)

    def test_protocol_name(self, tmp_path):
        node = make_local_node("worker", str(tmp_path / "box"))
        assert node.power.protocol == "sandbox"
        assert node.describe()["power"]["protocol"] == "sandbox"

    def test_status_reflects_power_state(self, tmp_path):
        node = make_local_node("worker", str(tmp_path / "box"))
        node.set_image(local_image_registry().resolve("local-sandbox"))
        node.reset()
        assert node.power.status() == "on"
        node.power.power_off()
        assert node.power.status() == "off"


class TestLocalRegistry:
    def test_pseudo_image_registered(self):
        registry = local_image_registry()
        spec = registry.resolve("local-sandbox", "v1")
        assert spec.kernel == "host-kernel"
