"""Tests for out-of-band power control and in-band transports."""

from __future__ import annotations

import pytest

from repro.core.errors import PowerError, TransportError, TransportTimeout
from repro.netsim.host import SimHost
from repro.testbed.power import (
    AmdProController,
    FlakyPowerControl,
    IpmiController,
    SwitchablePowerPlug,
    VProController,
)
from repro.testbed.transport import (
    HttpTransport,
    LocalTransport,
    SnmpTransport,
    SshTransport,
)


@pytest.fixture
def host():
    h = SimHost("tartu")
    h.boot("debian-buster", "v1")
    return h


class TestPowerControl:
    @pytest.mark.parametrize(
        "controller_class,protocol",
        [
            (IpmiController, "ipmi"),
            (VProController, "intel-vpro"),
            (AmdProController, "amd-pro"),
        ],
    )
    def test_protocols_report_status(self, host, controller_class, protocol):
        controller = controller_class(host)
        assert controller.protocol == protocol
        assert controller.status() == "on"
        controller.power_off()
        assert controller.status() == "off"

    def test_power_cycle_recovers_wedged_host(self, host):
        """R3: the out-of-band path works even when the OS is dead."""
        host.wedge()
        assert not host.reachable
        controller = IpmiController(host)
        controller.power_cycle()
        assert host.booted and not host.wedged

    def test_power_plug_cannot_report_status(self, host):
        plug = SwitchablePowerPlug(host)
        plug.power_cycle()  # works
        with pytest.raises(PowerError, match="status"):
            plug.status()

    def test_cycle_counter(self, host):
        controller = IpmiController(host)
        controller.power_cycle()
        controller.power_cycle()
        assert controller.power_cycles == 2

    def test_flaky_controller_fails_then_recovers(self, host):
        flaky = FlakyPowerControl(host, failures=2)
        with pytest.raises(PowerError):
            flaky.power_cycle()
        with pytest.raises(PowerError):
            flaky.power_cycle()
        flaky.power_cycle()  # third attempt succeeds
        assert host.booted

    def test_flaky_failure_leaves_state_unchanged(self, host):
        flaky = FlakyPowerControl(host, failures=1)
        assert host.booted
        with pytest.raises(PowerError):
            flaky.power_cycle()
        assert host.booted  # the rail was never touched


class TestSshTransport:
    def test_connect_and_execute(self, host):
        ssh = SshTransport(host)
        ssh.connect()
        assert ssh.execute("echo hi").stdout == "hi"

    def test_connect_to_down_host_fails(self, host):
        host.shutdown()
        with pytest.raises(TransportError, match="No route"):
            SshTransport(host).connect()

    def test_execute_without_session_fails(self, host):
        with pytest.raises(TransportError, match="no session"):
            SshTransport(host).execute("echo hi")

    def test_session_lost_when_host_wedges(self, host):
        ssh = SshTransport(host)
        ssh.connect()
        host.wedge()
        with pytest.raises(TransportError, match="lost"):
            ssh.execute("echo hi")

    def test_file_transfer(self, host):
        ssh = SshTransport(host)
        ssh.connect()
        ssh.put_file("/tmp/conf", "data")
        assert ssh.get_file("/tmp/conf") == "data"

    def test_close_then_execute_fails(self, host):
        ssh = SshTransport(host)
        ssh.connect()
        ssh.close()
        with pytest.raises(TransportError):
            ssh.execute("echo hi")

    def test_slow_command_times_out(self, host):
        ssh = SshTransport(host)
        ssh.connect()
        with pytest.raises(TransportTimeout, match="exceeded"):
            ssh.execute("sleep 10", timeout_s=1.0)

    def test_fast_command_beats_the_deadline(self, host):
        ssh = SshTransport(host)
        ssh.connect()
        assert ssh.execute("sleep 0.5", timeout_s=1.0).exit_code == 0
        assert ssh.execute("echo hi", timeout_s=1.0).stdout == "hi"


class TestSnmpTransport:
    def test_get_system_name(self, host):
        snmp = SnmpTransport(host)
        snmp.connect()
        result = snmp.execute("get 1.3.6.1.2.1.1.5.0")
        assert result.ok and result.stdout == "tartu"

    def test_set_then_get_oid(self, host):
        snmp = SnmpTransport(host)
        snmp.connect()
        assert snmp.execute("set 1.3.6.1.4.1.9.9.1 enabled").ok
        assert snmp.execute("get 1.3.6.1.4.1.9.9.1").stdout == "enabled"

    def test_unknown_oid(self, host):
        snmp = SnmpTransport(host)
        snmp.connect()
        assert snmp.execute("get 1.2.3").exit_code == 2

    def test_system_group_read_only(self, host):
        snmp = SnmpTransport(host)
        snmp.connect()
        assert snmp.execute("set 1.3.6.1.2.1.1.5.0 hacked").exit_code == 2

    def test_no_file_transfer(self, host):
        snmp = SnmpTransport(host)
        snmp.connect()
        with pytest.raises(TransportError, match="not supported"):
            snmp.put_file("/x", "y")


class TestHttpTransport:
    def test_builtin_endpoints(self, host):
        http = HttpTransport(host)
        http.connect()
        assert http.execute("GET /status").stdout == "ok"
        assert http.execute("GET /hostname").stdout == "tartu"

    def test_custom_endpoint(self, host):
        http = HttpTransport(host)
        http.register("POST", "/tables/forward", lambda body: (200, f"added {body}"))
        http.connect()
        result = http.execute("POST /tables/forward 10.0.0.0/24->p1")
        assert result.ok and result.stdout == "added 10.0.0.0/24->p1"

    def test_unknown_endpoint_404(self, host):
        http = HttpTransport(host)
        http.connect()
        result = http.execute("GET /nope")
        assert result.exit_code == 4
        assert "404" in result.stdout


class TestLocalTransport:
    def test_runs_real_subprocesses(self, tmp_path):
        local = LocalTransport(sandbox_dir=str(tmp_path))
        local.connect()
        result = local.execute("echo real-shell")
        assert result.ok and result.stdout == "real-shell"

    def test_exit_codes_propagate(self, tmp_path):
        local = LocalTransport(sandbox_dir=str(tmp_path))
        local.connect()
        assert local.execute("exit 3").exit_code == 3

    def test_stderr_captured(self, tmp_path):
        local = LocalTransport(sandbox_dir=str(tmp_path))
        local.connect()
        result = local.execute("echo oops >&2")
        assert "oops" in result.stdout

    def test_timeout_raises(self, tmp_path):
        local = LocalTransport(sandbox_dir=str(tmp_path))
        local.connect()
        with pytest.raises(TransportTimeout):
            local.execute("sleep 5", timeout_s=0.2)

    def test_file_round_trip_in_sandbox(self, tmp_path):
        local = LocalTransport(sandbox_dir=str(tmp_path))
        local.connect()
        local.put_file("sub/dir/file.txt", "content")
        assert local.get_file("sub/dir/file.txt") == "content"
        assert (tmp_path / "sub" / "dir" / "file.txt").exists()

    def test_path_escape_rejected(self, tmp_path):
        local = LocalTransport(sandbox_dir=str(tmp_path))
        local.connect()
        with pytest.raises(TransportError, match="escapes"):
            local.put_file("../../outside.txt", "x")

    def test_commands_run_inside_sandbox(self, tmp_path):
        local = LocalTransport(sandbox_dir=str(tmp_path))
        local.connect()
        local.execute("echo data > made-here.txt")
        assert (tmp_path / "made-here.txt").read_text().strip() == "data"
