"""Tests for the vpos provisioning service (Sec. 8)."""

from __future__ import annotations

import pytest

from repro.testbed.vposservice import VposService, VposServiceError


@pytest.fixture
def service(tmp_path):
    return VposService(str(tmp_path), max_instances_per_user=2)


class TestLifecycle:
    def test_create_boots_an_isolated_instance(self, service):
        instance = service.create_instance("alice")
        assert instance.booted and not instance.destroyed
        env = service.connect(instance.instance_id)
        assert set(env.setup.nodes) == {"vriga", "vtartu"}
        assert env.setup.topology.controller_name == "vkaunas"

    def test_instances_are_fully_isolated(self, service):
        first = service.create_instance("alice")
        second = service.create_instance("bob")
        env_a = service.connect(first.instance_id)
        env_b = service.connect(second.instance_id)
        assert env_a.setup.sim is not env_b.setup.sim
        assert env_a.setup.nodes["vtartu"] is not env_b.setup.nodes["vtartu"]
        # Allocating in one instance does not affect the other.
        env_a.allocator.allocate("alice", ["vtartu"], duration=60.0)
        env_b.allocator.allocate("bob", ["vtartu"], duration=60.0)

    def test_quota_enforced_per_user(self, service):
        service.create_instance("alice")
        service.create_instance("alice")
        with pytest.raises(VposServiceError, match="limit"):
            service.create_instance("alice")
        # Other users are unaffected.
        service.create_instance("bob")

    def test_destroy_frees_quota(self, service):
        first = service.create_instance("alice")
        service.create_instance("alice")
        service.destroy_instance(first.instance_id)
        service.create_instance("alice")  # quota slot free again

    def test_connect_to_destroyed_instance_fails(self, service):
        instance = service.create_instance("alice")
        service.destroy_instance(instance.instance_id)
        with pytest.raises(VposServiceError, match="destroyed"):
            service.connect(instance.instance_id)

    def test_double_destroy_fails(self, service):
        instance = service.create_instance("alice")
        service.destroy_instance(instance.instance_id)
        with pytest.raises(VposServiceError, match="already"):
            service.destroy_instance(instance.instance_id)

    def test_unknown_instance(self, service):
        with pytest.raises(VposServiceError, match="unknown"):
            service.connect("vpos-9999")

    def test_listing_and_describe(self, service):
        alice_1 = service.create_instance("alice")
        service.create_instance("bob")
        assert [i.instance_id for i in service.instances_for("alice")] == [
            alice_1.instance_id
        ]
        described = service.describe()
        assert len(described["instances"]) == 2


class TestExperimentsOnInstances:
    def test_full_experiment_inside_an_instance(self, service):
        """The appendix workflow: create instance, connect, run the
        case study inside it."""
        from repro.casestudy import build_case_study_experiment

        instance = service.create_instance("alice")
        env = service.connect(instance.instance_id)
        experiment = build_case_study_experiment(
            "vpos", rates=[20_000], sizes=(64,), duration_s=0.05,
        )
        handle = env.controller.run(
            experiment, user="alice", setup_context_extra={"setup": env.setup}
        )
        assert handle.completed_runs == 1
        service.destroy_instance(instance.instance_id)

    def test_different_seeds_per_instance(self, service):
        a = service.connect(service.create_instance("alice").instance_id)
        b = service.connect(service.create_instance("alice").instance_id)
        assert a.setup.router._rng.random() != b.setup.router._rng.random()
