"""Out-of-band health plane: sensors, SEL, state machine, monitor."""

from __future__ import annotations

import pytest

from repro.faults.injector import InjectedPowerControl
from repro.faults.plan import FaultPlan, FaultSpec
from repro.netsim.host import SimHost
from repro.testbed.firmware import DellBiosAdapter, FirmwareManager
from repro.testbed.health import (
    DEGRADED,
    HEALTHY,
    UNMONITORED,
    WEDGED,
    HealthMonitor,
    HealthStateMachine,
    advance_state,
)
from repro.testbed.power import (
    AMBIENT_TEMP_C,
    STANDBY_POWER_W,
    TEMP_CRITICAL_C,
    FlakyPowerControl,
    IpmiController,
    SwitchablePowerPlug,
)
from repro.testbed.vposservice import VposService


@pytest.fixture
def host():
    h = SimHost("tartu")
    h.boot("debian-buster", "v1")
    return h


class FakeNode:
    def __init__(self, power):
        self.power = power


class TestSensorsAndSel:
    def test_sensors_are_pure_functions_of_chassis_state(self, host):
        controller = IpmiController(host)
        first = controller.read_sensors()
        second = controller.read_sensors()
        assert first == second
        assert first["fan_rpm"] > 0
        assert first["power_w"] > STANDBY_POWER_W
        assert first["temperature_c"] < TEMP_CRITICAL_C

    def test_powered_off_host_reads_standby(self, host):
        controller = IpmiController(host)
        controller.power_off()
        sensors = controller.read_sensors()
        assert sensors == {
            "fan_rpm": 0,
            "power_w": STANDBY_POWER_W,
            "temperature_c": AMBIENT_TEMP_C,
        }

    def test_wedged_host_crosses_critical_temperature(self, host):
        """R3: the BMC sees a dead OS that no transport can reach."""
        controller = IpmiController(host)
        healthy = controller.read_sensors()
        host.wedge()
        wedged = controller.read_sensors()
        assert wedged["temperature_c"] >= TEMP_CRITICAL_C
        assert wedged["power_w"] > healthy["power_w"]
        assert wedged["fan_rpm"] > healthy["fan_rpm"]

    def test_power_operations_append_chassis_sel_records(self, host):
        controller = IpmiController(host)
        assert controller.sel == []
        controller.power_cycle()
        assert [record["sensor"] for record in controller.sel] == \
            ["chassis", "chassis"]
        assert all(record["severity"] == "info" for record in controller.sel)

    def test_flaky_controller_logs_warning_before_raising(self, host):
        from repro.core.errors import PowerError

        flaky = FlakyPowerControl(host, failures=1)
        with pytest.raises(PowerError):
            flaky.power_cycle()
        assert flaky.sel[-1]["sensor"] == "power"
        assert flaky.sel[-1]["severity"] == "warning"

    def test_injected_power_control_delegates_bmc_surface(self, host):
        from repro.core.errors import PowerError
        from repro.faults.injector import FaultInjector

        inner = IpmiController(host)
        injector = FaultInjector(
            FaultPlan([FaultSpec(kind="power", times=1)])
        )
        injector.begin_run(0)
        wrapped = InjectedPowerControl(inner, injector, "tartu")
        with pytest.raises(PowerError):
            wrapped.power_cycle()
        assert wrapped.sel is inner.sel
        assert wrapped.sel[-1]["severity"] == "critical"
        assert wrapped.read_sensors() == inner.read_sensors()

    def test_firmware_changes_land_in_the_sel(self, host):
        controller = IpmiController(host)
        manager = FirmwareManager()
        manager.register("tartu", DellBiosAdapter(), power=controller)
        manager.apply_profile({"turbo_boost": "disabled"}, ["tartu"])
        assert controller.sel[-1]["sensor"] == "firmware"
        assert "turbo_boost" in controller.sel[-1]["event"]


class TestStateMachine:
    def test_worsening_jumps_immediately(self):
        machine = HealthStateMachine()
        assert machine.observe(WEDGED) == WEDGED

    def test_recovery_steps_one_level_per_clean_run(self):
        machine = HealthStateMachine(WEDGED)
        assert machine.observe(HEALTHY) == DEGRADED
        assert machine.observe(HEALTHY) == HEALTHY

    def test_unmonitored_observation_and_restoration(self):
        assert advance_state(HEALTHY, UNMONITORED) == UNMONITORED
        assert advance_state(UNMONITORED, DEGRADED) == DEGRADED

    def test_equal_observation_is_stable(self):
        assert advance_state(DEGRADED, DEGRADED) == DEGRADED


class TestHealthMonitor:
    def test_sample_sees_wedged_host_out_of_band(self, host):
        monitor = HealthMonitor({"tartu": FakeNode(IpmiController(host))})
        assert monitor.sample()["tartu"]["observation"] == HEALTHY
        host.wedge()
        view = monitor.sample()["tartu"]
        assert view["observation"] == WEDGED
        assert view["chassis"] == "on"

    def test_collect_run_slices_sel_against_baseline(self, host):
        controller = IpmiController(host)
        controller.record_event("boot", "pre-run noise")
        monitor = HealthMonitor({"tartu": FakeNode(controller)})
        controller.record_event("chassis", "chassis power off")
        payload = monitor.collect_run(7)
        entry = payload["nodes"]["tartu"]
        assert payload["run"] == 7
        # Only the in-run record is in the slice, renumbered from 0.
        assert [record["id"] for record in entry["sel"]] == [0]
        assert entry["sel"][0]["sensor"] == "chassis"
        assert entry["observation"] == DEGRADED

    def test_collect_run_logs_critical_temperature_threshold(self, host):
        controller = IpmiController(host)
        monitor = HealthMonitor({"tartu": FakeNode(controller)})
        host.wedge()
        entry = monitor.collect_run(0)["nodes"]["tartu"]
        assert entry["observation"] == WEDGED
        assert any(
            record["sensor"] == "temperature"
            and record["severity"] == "critical"
            for record in entry["sel"]
        )

    def test_status_less_plug_inferred_from_power_draw(self, host):
        plug = SwitchablePowerPlug(host)
        monitor = HealthMonitor({"tartu": FakeNode(plug)})
        assert monitor.collect_run(0)["nodes"]["tartu"]["chassis"] == "on"
        plug.power_off()
        monitor = HealthMonitor({"tartu": FakeNode(plug)})
        entry = monitor.collect_run(0)["nodes"]["tartu"]
        assert entry["chassis"] == "off"
        assert entry["observation"] == WEDGED

    def test_unmonitorable_power_is_recorded_as_such(self):
        class BarePower:
            pass

        monitor = HealthMonitor({"x": FakeNode(BarePower())})
        entry = monitor.collect_run(0)["nodes"]["x"]
        assert entry == {"observation": UNMONITORED, "sel": []}
        assert monitor.sample()["x"] == {"observation": UNMONITORED}


class TestVposServiceHealth:
    def test_instance_health_endpoint(self, tmp_path):
        service = VposService(str(tmp_path))
        instance = service.create_instance("alice")
        view = service.health(instance.instance_id)
        assert set(view) == {"vriga", "vtartu"}

    def test_destroy_logs_chassis_teardown(self, tmp_path):
        service = VposService(str(tmp_path))
        instance = service.create_instance("alice")
        env = service.connect(instance.instance_id)
        service.destroy_instance(instance.instance_id)
        for node in env.setup.nodes.values():
            assert node.power.sel[-1]["sensor"] == "chassis"
            assert "destroyed" in node.power.sel[-1]["event"]
