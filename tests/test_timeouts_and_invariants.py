"""Script timeouts and controller invariants under random failure."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.errors import PosError, ScriptError
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.netsim.host import SimHost
from repro.testbed.images import default_registry
from repro.testbed.local import local_image_registry, make_local_node
from repro.testbed.node import Node, NodeState
from repro.testbed.power import IpmiController
from repro.testbed.transport import SshTransport


class TestCommandTimeouts:
    def test_hung_command_is_killed_and_fails_the_script(self, tmp_path):
        node = make_local_node("worker", str(tmp_path / "box"))
        calendar = Calendar(clock=lambda: 0.0)
        controller = Controller(
            Allocator(calendar, {"worker": node}),
            local_image_registry(),
            ResultStore(str(tmp_path / "results"), clock=lambda: 1.0),
        )
        experiment = Experiment(
            name="hang",
            roles=[Role(
                name="worker",
                node="worker",
                image=("local-sandbox", "v1"),
                setup=CommandScript("setup", ["true"]),
                measurement=CommandScript("measure", ["sleep 10"],
                                          timeout_s=0.3),
            )],
            variables=Variables(loop_vars={"x": [1]}),
        )
        with pytest.raises(ScriptError, match="timed out"):
            controller.run(experiment)
        # The node is back in the pool despite the hang.
        assert node.state is NodeState.FREE

    def test_fast_command_within_timeout_succeeds(self, tmp_path):
        node = make_local_node("worker", str(tmp_path / "box"))
        node.set_image(local_image_registry().resolve("local-sandbox"))
        node.reset()
        from repro.core.scripts import ScriptContext
        from repro.core.tools import PosTools, SharedStore

        tools = PosTools(SharedStore(), node, "worker")
        ctx = ScriptContext(node=node, role="worker", phase="setup",
                            variables={}, tools=tools)
        script = CommandScript("quick", ["echo ok"], timeout_s=5.0)
        assert script.run(ctx).ok

    def test_timeout_recorded_in_describe(self):
        script = CommandScript("s", ["true"], timeout_s=2.5)
        assert script.describe()["timeout_s"] == 2.5


def _sim_node(name):
    host = SimHost(name)
    return Node(name, host=host, power=IpmiController(host),
                transport=SshTransport(host))


@given(
    failures=st.lists(st.booleans(), min_size=1, max_size=6),
    policy=st.sampled_from(["abort", "continue", "recover"]),
)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_nodes_always_freed_whatever_fails_property(tmp_path_factory, failures,
                                                    policy):
    """Invariant: after any experiment — aborted, partially failed, or
    clean, under any error policy — every node is back in the free pool
    and the calendar holds no leftover booking."""
    tmp_path = tmp_path_factory.mktemp("inv")
    nodes = {"tartu": _sim_node("tartu")}
    calendar = Calendar(clock=lambda: 0.0)
    allocator = Allocator(calendar, nodes)
    controller = Controller(
        allocator, default_registry(),
        ResultStore(str(tmp_path / "results"), clock=lambda: 1.0),
    )
    plan = list(failures)

    def measure(ctx):
        if plan[ctx.run_index % len(plan)]:
            raise RuntimeError("injected failure")

    experiment = Experiment(
        name="inv",
        roles=[Role(
            name="dut",
            node="tartu",
            setup=CommandScript("setup", ["true"]),
            measurement=PythonScript("measure", measure),
        )],
        variables=Variables(loop_vars={"i": list(range(len(plan)))}),
    )
    try:
        controller.run(experiment, on_error=policy)
    except PosError:
        pass
    assert nodes["tartu"].state is NodeState.FREE
    assert calendar.bookings_for_node("tartu") == []
