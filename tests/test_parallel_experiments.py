"""Multi-user testbed behaviour (Sec. 4.4).

"This allows sharing testbed nodes between all users and running
multiple independent experiments in parallel.  Further, using a node in
more than one experiment at the same time is prohibited."
"""

from __future__ import annotations

import pytest

from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.errors import AllocationError
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript
from repro.core.variables import Variables
from repro.netsim.host import SimHost
from repro.testbed.images import default_registry
from repro.testbed.node import Node
from repro.testbed.power import IpmiController
from repro.testbed.transport import SshTransport


def make_pool(names):
    nodes = {}
    for name in names:
        host = SimHost(name)
        nodes[name] = Node(name, host=host, power=IpmiController(host),
                           transport=SshTransport(host))
    return nodes


def experiment_on(name, node_a, node_b):
    return Experiment(
        name=name,
        roles=[
            Role(name="dut", node=node_a,
                 setup=CommandScript("s", ["pos barrier setup-done"]),
                 measurement=CommandScript("m", ["echo run $i"])),
            Role(name="loadgen", node=node_b,
                 setup=CommandScript("s2", ["pos barrier setup-done"]),
                 measurement=CommandScript("m2", ["echo load $i"])),
        ],
        variables=Variables(loop_vars={"i": [1, 2]}),
        duration_s=3600.0,
    )


class TestParallelExperiments:
    def make_shared_testbed(self, tmp_path):
        nodes = make_pool(["n1", "n2", "n3", "n4"])
        calendar = Calendar(clock=lambda: 0.0)
        allocator = Allocator(calendar, nodes)
        results = ResultStore(str(tmp_path / "results"), clock=lambda: 1.0)
        controller = Controller(allocator, default_registry(), results)
        return controller, allocator, calendar

    def test_disjoint_experiments_share_the_testbed(self, tmp_path):
        """While alice's allocation is live, bob runs on other nodes."""
        controller, allocator, __ = self.make_shared_testbed(tmp_path)
        alice = allocator.allocate("alice", ["n1", "n2"], duration=3600.0)
        handle = controller.run(experiment_on("bob-exp", "n3", "n4"),
                                user="bob")
        assert handle.completed_runs == 2
        assert not alice.released  # alice's experiment is untouched
        allocator.release(alice)

    def test_overlap_on_any_node_is_prohibited(self, tmp_path):
        controller, allocator, __ = self.make_shared_testbed(tmp_path)
        allocator.allocate("alice", ["n1", "n2"], duration=3600.0)
        with pytest.raises(AllocationError):
            controller.run(experiment_on("bob-exp", "n2", "n3"), user="bob")

    def test_calendar_holds_both_users_bookings(self, tmp_path):
        controller, allocator, calendar = self.make_shared_testbed(tmp_path)
        allocator.allocate("alice", ["n1"], duration=3600.0)
        allocator.allocate("bob", ["n2"], duration=1800.0)
        active = calendar.active_bookings()
        assert {booking.user for booking in active} == {"alice", "bob"}

    def test_sequential_experiments_by_different_users(self, tmp_path):
        """The same nodes serve different users back to back, each from
        a clean live boot."""
        controller, __, __ = self.make_shared_testbed(tmp_path)
        first = controller.run(experiment_on("alice-exp", "n1", "n2"),
                               user="alice")
        second = controller.run(experiment_on("bob-exp", "n1", "n2"),
                                user="bob")
        assert first.completed_runs == second.completed_runs == 2
        assert "alice" in first.result_path
        assert "bob" in second.result_path

    def test_result_trees_are_per_user(self, tmp_path):
        controller, __, __ = self.make_shared_testbed(tmp_path)
        handle_a = controller.run(experiment_on("exp", "n1", "n2"), user="alice")
        handle_b = controller.run(experiment_on("exp", "n3", "n4"), user="bob")
        assert handle_a.result_path != handle_b.result_path
        # Same experiment name, separated by the user component.
        assert "/alice/" in handle_a.result_path.replace("\\", "/")
        assert "/bob/" in handle_b.result_path.replace("\\", "/")
