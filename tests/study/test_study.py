"""End-to-end tests for the replicated-study plane.

A study expands a factorial design into N replication campaigns,
executes them crash-safely, and folds the tree into a statistical
aggregate.  These tests pin the contract pieces one at a time: spec
validation, expansion, execution, the aggregate's content, schema
conformance, and resume-as-no-op.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.errors import StudyError
from repro.study import (
    RESPONSE_VARIABLE,
    StudySpec,
    collect_measurements,
    derive_seed,
    evaluate_study,
    expand_cells,
    load_study,
    render_study,
    replication_campaign,
    run_study,
    synthetic_response,
)
from repro.telemetry.schema import validate_study

SPEC_DOC = {
    "name": "unit",
    "factors": {"rate": [1.0, 2.0], "size": [64, 128]},
    "replications": 2,
    "seed": 11,
}


def run_small_study(tmp_path, sub="study", jobs=1, **overrides):
    document = dict(SPEC_DOC, **overrides)
    study_dir = str(tmp_path / sub)
    result = run_study(load_study(document), study_dir, jobs=jobs)
    return study_dir, result


class TestSpec:
    def test_load_normalizes_scalar_levels(self):
        spec = load_study(
            {"name": "s", "factors": {"rate": 5}, "replications": 1}
        )
        assert spec.factors == {"rate": [5]}

    def test_rejects_reserved_factor_name(self):
        with pytest.raises(StudyError):
            load_study(
                {
                    "name": "s",
                    "factors": {RESPONSE_VARIABLE: [1]},
                    "replications": 1,
                }
            )

    def test_rejects_duplicate_levels(self):
        with pytest.raises(StudyError):
            load_study(
                {"name": "s", "factors": {"rate": [1, 1]}, "replications": 1}
            )

    def test_rejects_non_scalar_levels(self):
        with pytest.raises(StudyError):
            load_study(
                {
                    "name": "s",
                    "factors": {"rate": [[1, 2]]},
                    "replications": 1,
                }
            )

    def test_rejects_bad_replications(self):
        for bad in (0, -1, True, "3"):
            with pytest.raises(StudyError):
                load_study(
                    {
                        "name": "s",
                        "factors": {"rate": [1]},
                        "replications": bad,
                    }
                )

    def test_describe_round_trips_through_load(self):
        spec = load_study(SPEC_DOC)
        assert load_study(spec.describe()).describe() == spec.describe()


class TestExpansion:
    def test_last_factor_varies_fastest(self):
        cells = expand_cells({"a": [1, 2], "b": ["x", "y"]})
        assert cells == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_campaign_carries_assignment_and_response(self):
        spec = load_study(SPEC_DOC)
        campaign = replication_campaign(spec, 0)
        assert len(campaign.experiments) == spec.cell_count
        for index, experiment in enumerate(campaign.experiments):
            cells = expand_cells(spec.factors)
            for factor, level in cells[index].items():
                assert experiment.loop[factor] == [level]
            assert len(experiment.loop[RESPONSE_VARIABLE]) == 1
            assert experiment.run_count == 1

    def test_synthetic_response_depends_on_cell_not_only_seed(self):
        a = synthetic_response({"rate": 1.0}, seed=5, noise=0.01)
        b = synthetic_response({"rate": 2.0}, seed=5, noise=0.01)
        assert a != b
        # Zero noise removes the replication jitter entirely.
        assert synthetic_response(
            {"rate": 1.0}, seed=5, noise=0.0
        ) == synthetic_response({"rate": 1.0}, seed=99, noise=0.0)

    def test_derived_seeds_differ_across_replications_and_roots(self):
        seeds = {derive_seed(0, k) for k in range(64)}
        assert len(seeds) == 64
        assert derive_seed(0, 1) != derive_seed(1, 1)


class TestRun:
    def test_study_runs_and_aggregates(self, tmp_path):
        study_dir, result = run_small_study(tmp_path)
        assert result.ok
        assert result.completed_replications == 2
        aggregate = json.load(open(os.path.join(study_dir, "study.json")))
        assert aggregate["study"] == "unit"
        assert aggregate["verdict"] == "consistent"
        assert len(aggregate["cells"]) == 4
        for cell in aggregate["cells"]:
            assert len(cell["samples"]) == 2
            assert cell["consistency"]["consistent"]
        assert set(aggregate["effects"]) == {"rate", "size"}
        assert aggregate["design"]["replication_seeds"] == [
            derive_seed(11, 0), derive_seed(11, 1),
        ]
        rendered = render_study(aggregate)
        assert "verdict: consistent" in rendered
        assert "main effects" in rendered

    def test_artifacts_validate_against_schemas(self, tmp_path):
        study_dir, __ = run_small_study(tmp_path)
        validated = validate_study(study_dir)
        assert os.path.join(study_dir, "study.json") in validated
        assert os.path.join(study_dir, "study.jsonl") in validated

    def test_study_page_is_selfcontained(self, tmp_path):
        study_dir, __ = run_small_study(tmp_path)
        page = open(os.path.join(study_dir, "index.html")).read()
        assert "Study: unit" in page
        assert "rep-000" in page and "rep-001" in page
        assert "Main effects" in page

    def test_measurements_come_from_captured_artifacts(self, tmp_path):
        """The evaluation parses the response back out of the command
        logs the simulated nodes captured — it never shortcuts the
        testbed pipeline."""
        study_dir, __ = run_small_study(tmp_path)
        spec = load_study(SPEC_DOC)
        rows = collect_measurements(study_dir, spec)
        assert len(rows) == 8  # 4 cells x 2 replications
        for assignment, replication, value in rows:
            expected = synthetic_response(
                assignment, derive_seed(11, replication), spec.noise
            )
            assert value == expected

    def test_resume_of_finished_study_is_byte_identical_noop(self, tmp_path):
        from tests.core.test_campaign_journal_torn import tree_snapshot

        study_dir, __ = run_small_study(tmp_path)
        before = tree_snapshot(study_dir)
        result = run_study(
            load_study(SPEC_DOC), study_dir, jobs=1, resume=True
        )
        assert result.ok
        assert all(
            entry.get("adopted") for entry in result.replications
        )
        assert tree_snapshot(study_dir) == before

    def test_resume_rejects_a_different_spec(self, tmp_path):
        study_dir, __ = run_small_study(tmp_path)
        changed = dict(SPEC_DOC, seed=12)
        with pytest.raises(StudyError):
            run_study(load_study(changed), study_dir, resume=True)

    def test_fresh_rerun_over_existing_tree_is_byte_identical(self, tmp_path):
        from tests.core.test_campaign_journal_torn import tree_snapshot

        study_dir, __ = run_small_study(tmp_path)
        before = tree_snapshot(study_dir)
        assert run_study(load_study(SPEC_DOC), study_dir, jobs=2).ok
        assert tree_snapshot(study_dir) == before

    def test_evaluate_flags_inconsistent_replications(self, tmp_path):
        """A noise amplitude beyond the tolerance must flip the verdict
        for at least one cell — the consistency check has teeth."""
        study_dir, result = run_small_study(
            tmp_path, replications=3, noise=0.2, tolerance=0.01
        )
        assert result.ok
        aggregate = evaluate_study(study_dir, load_study(
            dict(SPEC_DOC, replications=3, noise=0.2, tolerance=0.01)
        ))
        assert aggregate["verdict"] == "inconsistent"
        assert any(
            not cell["consistency"]["consistent"]
            for cell in aggregate["cells"]
        )

    def test_collect_rejects_assignment_drift(self, tmp_path):
        """A run directory whose recorded assignment disagrees with the
        expanded design is a corruption, not a measurement."""
        study_dir, __ = run_small_study(tmp_path)
        spec = load_study(SPEC_DOC)
        metadata = None
        for dirpath, __dirs, filenames in os.walk(study_dir):
            if "metadata.yml" in filenames:
                metadata = os.path.join(dirpath, "metadata.yml")
                break
        assert metadata is not None
        text = open(metadata).read().replace("64", "65")
        with open(metadata, "w") as handle:
            handle.write(text)
        with pytest.raises(StudyError):
            collect_measurements(study_dir, spec)


class TestSpecGuards:
    def test_studyspec_validate_catches_empty_pool(self):
        spec = StudySpec(
            name="s", factors={"a": [1]}, replications=1, pool=[]
        )
        with pytest.raises(StudyError):
            spec.validate()

    def test_studyspec_validate_catches_bad_tolerance(self):
        spec = StudySpec(
            name="s", factors={"a": [1]}, replications=1, tolerance=0.0
        )
        with pytest.raises(StudyError):
            spec.validate()
