"""Property-based determinism tests for the study plane.

The central guarantee: the expanded study — cells, derived seeds,
campaign specs, and ultimately the whole artifact tree — is a pure
function of ``(study spec, root seed)``.  Expansion invariants are
cheap pure functions and get a wide hypothesis sweep; whole-study
executions are expensive, so the byte-identity property runs fewer
seeded examples but compares entire trees.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.study import (
    RESPONSE_VARIABLE,
    StudySpec,
    derive_seed,
    expand_cells,
    replication_campaign,
    run_study,
)

FACTOR_NAMES = ["rate", "size", "burst"]
LEVEL_POOL = [1, 2, 64, 128, 1.5, "a", "b"]


@st.composite
def study_specs(draw, max_factors=3, max_levels=3, max_replications=3):
    factor_count = draw(st.integers(min_value=1, max_value=max_factors))
    factors = {}
    for name in FACTOR_NAMES[:factor_count]:
        level_count = draw(st.integers(min_value=1, max_value=max_levels))
        levels = draw(
            st.lists(
                st.sampled_from(LEVEL_POOL),
                min_size=level_count,
                max_size=level_count,
                unique_by=repr,
            )
        )
        factors[name] = levels
    return StudySpec(
        name="prop",
        factors=factors,
        replications=draw(
            st.integers(min_value=1, max_value=max_replications)
        ),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        noise=draw(st.sampled_from([0.0, 0.01, 0.05])),
    )


@given(study_specs())
@settings(max_examples=200, deadline=None)
def test_expansion_is_a_pure_function_of_spec_and_seed(spec):
    spec.validate()
    cells = expand_cells(spec.factors)
    assert len(cells) == spec.cell_count
    # Cells are pairwise distinct assignments covering the grid.
    assert len({tuple(sorted(c.items())) for c in cells}) == len(cells)
    for replication in range(spec.replications):
        first = replication_campaign(spec, replication)
        second = replication_campaign(spec, replication)
        assert first.describe() == second.describe()
        assert len(first.experiments) == spec.cell_count
        for experiment, cell in zip(first.experiments, cells):
            for factor, level in cell.items():
                assert experiment.loop[factor] == [level]
            assert RESPONSE_VARIABLE in experiment.loop


@given(study_specs())
@settings(max_examples=200, deadline=None)
def test_replication_seeds_are_pairwise_distinct(spec):
    seeds = [derive_seed(spec.seed, k) for k in range(spec.replications)]
    assert len(set(seeds)) == len(seeds)
    # ... and differ from every sibling root's seeds: the low bits carry
    # the replication index, the high bits the diffused root.
    for k, seed in enumerate(seeds):
        assert seed & 0xFFFFFFFF == k
        assert derive_seed(spec.seed + 1, k) != seed


@given(study_specs(), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=100, deadline=None)
def test_different_root_seeds_change_the_responses(spec, other_seed):
    """Replication campaigns embed the seed-jittered response, so two
    roots only expand identically when noise is zero or seeds collide."""
    one = replication_campaign(spec, 0)
    two = replication_campaign(
        StudySpec(
            name=spec.name,
            factors=spec.factors,
            replications=spec.replications,
            seed=other_seed,
            noise=spec.noise,
        ),
        0,
    )
    if spec.noise == 0.0 or spec.seed == other_seed:
        assert one.describe() == two.describe()
    # (With noise > 0 the responses *may* still round to equal values;
    # no assertion the other way.)


def tree_snapshot(root):
    snapshot = {}
    for dirpath, __, filenames in os.walk(root):
        for filename in filenames:
            path = os.path.join(dirpath, filename)
            with open(path, "rb") as handle:
                snapshot[os.path.relpath(path, root)] = handle.read()
    return snapshot


@given(study_specs(max_factors=2, max_levels=2, max_replications=2))
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_study_tree_is_byte_identical_for_any_job_count(spec):
    root = tempfile.mkdtemp(prefix="study-prop-")
    try:
        serial = os.path.join(root, "serial")
        parallel = os.path.join(root, "parallel")
        assert run_study(spec, serial, jobs=1).ok
        assert run_study(spec, parallel, jobs=4).ok
        assert tree_snapshot(serial) == tree_snapshot(parallel)
    finally:
        shutil.rmtree(root, ignore_errors=True)
