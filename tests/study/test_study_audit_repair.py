"""Audit and repair of damaged study trees.

The contract under test: ``audit_study`` lists *exactly* the holes a
seeded mutilation created (and nothing on a pristine tree), and
``repair_study`` re-executes only those holes, restoring a tree
byte-identical to the uninterrupted baseline — journals, aggregate,
and summary page included.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.core.errors import StudyError
from repro.study import (
    STUDY_JOURNAL_NAME,
    audit_study,
    load_study,
    render_audit,
    repair_study,
    run_study,
)
from tests.core.test_campaign_journal_torn import tree_snapshot

SPEC_DOC = {
    "name": "audit",
    "factors": {"rate": [1.0, 2.0], "size": [64, 128]},
    "replications": 2,
    "seed": 5,
}


@pytest.fixture()
def study_tree(tmp_path):
    """A finished baseline study plus a scratch copy to mutilate."""
    baseline = str(tmp_path / "baseline")
    assert run_study(load_study(SPEC_DOC), baseline, jobs=2).ok
    scratch = str(tmp_path / "scratch")
    shutil.copytree(baseline, scratch)
    return baseline, scratch


def experiment_dirs(study_dir, replication):
    root = os.path.join(
        study_dir, "replications", f"rep-{replication:03d}",
        "experiments", "study",
    )
    found = {}
    for cell in sorted(os.listdir(root)):
        timestamps = sorted(os.listdir(os.path.join(root, cell)))
        assert len(timestamps) == 1
        found[cell] = os.path.join(root, cell, timestamps[0])
    return found


def assert_repaired_to_baseline(baseline, scratch, expected_kinds):
    report = audit_study(scratch)
    assert not report["complete"]
    assert {hole["kind"] for hole in report["holes"]} == expected_kinds
    outcome = repair_study(scratch)
    assert {h["kind"] for h in outcome["repaired"]} == expected_kinds
    assert outcome["audit"]["complete"]
    assert tree_snapshot(scratch) == tree_snapshot(baseline)


class TestAudit:
    def test_pristine_tree_audits_complete(self, study_tree):
        __, scratch = study_tree
        report = audit_study(scratch)
        assert report["complete"]
        assert report["holes"] == []
        assert "verdict: complete" in render_audit(report)

    def test_audit_requires_a_study_tree(self, tmp_path):
        with pytest.raises(StudyError):
            audit_study(str(tmp_path))

    def test_missing_run_is_named_exactly(self, study_tree):
        __, scratch = study_tree
        cell_dir = experiment_dirs(scratch, 0)["cell-002"]
        shutil.rmtree(os.path.join(cell_dir, "run-000"))
        report = audit_study(scratch)
        holes = report["holes"]
        assert [h["kind"] for h in holes] == ["missing-run"]
        assert holes[0]["replication"] == 0
        assert holes[0]["cell"] == "cell-002"
        assert holes[0]["run"] == 0
        assert "cell-002" in render_audit(report)

    def test_assignment_mismatch_detected(self, study_tree):
        __, scratch = study_tree
        cell_dir = experiment_dirs(scratch, 1)["cell-001"]
        metadata = os.path.join(cell_dir, "run-000", "metadata.yml")
        text = open(metadata).read().replace("128", "129")
        with open(metadata, "w") as handle:
            handle.write(text)
        holes = audit_study(scratch)["holes"]
        assert [h["kind"] for h in holes] == ["assignment-mismatch"]
        assert holes[0]["replication"] == 1

    def test_stale_aggregate_detected(self, study_tree):
        __, scratch = study_tree
        aggregate_path = os.path.join(scratch, "study.json")
        aggregate = json.load(open(aggregate_path))
        aggregate["verdict"] = "inconsistent"
        with open(aggregate_path, "w") as handle:
            json.dump(aggregate, handle, sort_keys=True, indent=2)
            handle.write("\n")
        holes = audit_study(scratch)["holes"]
        assert [h["kind"] for h in holes] == ["stale-aggregate"]

    def test_missing_study_journal_detected(self, study_tree):
        __, scratch = study_tree
        os.unlink(os.path.join(scratch, STUDY_JOURNAL_NAME))
        holes = audit_study(scratch)["holes"]
        assert [h["kind"] for h in holes] == ["missing-study-journal"]

    def test_incomplete_campaign_detected(self, study_tree):
        """A campaign journal cut before its completion marker is an
        incomplete campaign, even with every run directory present."""
        __, scratch = study_tree
        journal = os.path.join(
            scratch, "replications", "rep-000", "journal.jsonl"
        )
        lines = open(journal).readlines()
        with open(journal, "w") as handle:
            handle.writelines(lines[:-2])
        holes = audit_study(scratch)["holes"]
        assert "incomplete-campaign" in {h["kind"] for h in holes}

    def test_holes_are_deterministically_ordered(self, study_tree):
        __, scratch = study_tree
        shutil.rmtree(os.path.join(scratch, "replications", "rep-001"))
        cell_dir = experiment_dirs(scratch, 0)["cell-003"]
        shutil.rmtree(cell_dir)
        first = audit_study(scratch)["holes"]
        second = audit_study(scratch)["holes"]
        assert first == second
        assert [h["kind"] for h in first] == [
            "missing-experiment", "missing-replication",
        ]


class TestRepair:
    def test_repair_of_pristine_tree_is_a_noop(self, study_tree):
        baseline, scratch = study_tree
        outcome = repair_study(scratch)
        assert outcome["repaired"] == []
        assert outcome["result"] is None
        assert tree_snapshot(scratch) == tree_snapshot(baseline)

    def test_repairs_a_missing_run(self, study_tree):
        baseline, scratch = study_tree
        cell_dir = experiment_dirs(scratch, 0)["cell-001"]
        shutil.rmtree(os.path.join(cell_dir, "run-000"))
        assert_repaired_to_baseline(baseline, scratch, {"missing-run"})

    def test_repairs_a_missing_experiment(self, study_tree):
        baseline, scratch = study_tree
        shutil.rmtree(experiment_dirs(scratch, 1)["cell-000"])
        assert_repaired_to_baseline(
            baseline, scratch, {"missing-experiment"}
        )

    def test_repairs_a_missing_replication(self, study_tree):
        baseline, scratch = study_tree
        shutil.rmtree(os.path.join(scratch, "replications", "rep-001"))
        assert_repaired_to_baseline(
            baseline, scratch, {"missing-replication"}
        )

    def test_repairs_a_missing_study_journal(self, study_tree):
        baseline, scratch = study_tree
        os.unlink(os.path.join(scratch, STUDY_JOURNAL_NAME))
        assert_repaired_to_baseline(
            baseline, scratch, {"missing-study-journal"}
        )

    def test_repairs_a_stale_aggregate(self, study_tree):
        baseline, scratch = study_tree
        with open(os.path.join(scratch, "study.json"), "a") as handle:
            handle.write("\n")
        assert_repaired_to_baseline(
            baseline, scratch, {"stale-aggregate"}
        )

    def test_repairs_compound_damage(self, study_tree):
        """Several hole kinds at once: a lost replication, a lost run in
        the surviving one, and a doctored aggregate."""
        baseline, scratch = study_tree
        shutil.rmtree(os.path.join(scratch, "replications", "rep-001"))
        cell_dir = experiment_dirs(scratch, 0)["cell-002"]
        shutil.rmtree(os.path.join(cell_dir, "run-000"))
        os.unlink(os.path.join(scratch, "study.json"))
        report = audit_study(scratch)
        kinds = {h["kind"] for h in report["holes"]}
        assert kinds == {"missing-replication", "missing-run"}
        outcome = repair_study(scratch)
        assert outcome["audit"]["complete"]
        assert tree_snapshot(scratch) == tree_snapshot(baseline)

    def test_repair_touches_only_the_damaged_experiment(self, study_tree):
        """Intact experiment directories keep their exact mtimes-aside
        bytes: repair deletes and re-creates only the damaged cell."""
        baseline, scratch = study_tree
        cells_before = experiment_dirs(scratch, 0)
        victim = cells_before["cell-001"]
        inode_before = {
            cell: os.stat(path).st_ino
            for cell, path in cells_before.items()
        }
        shutil.rmtree(victim)
        repair_study(scratch)
        inode_after = {
            cell: os.stat(path).st_ino
            for cell, path in experiment_dirs(scratch, 0).items()
        }
        for cell, inode in inode_before.items():
            if cell == "cell-001":
                assert inode_after[cell] != inode
            else:
                assert inode_after[cell] == inode
        assert tree_snapshot(scratch) == tree_snapshot(baseline)
