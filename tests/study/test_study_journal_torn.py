"""Torn-record fuzz for the study journal.

A study runner can die mid-``write()``: the fsynced prefix of
``study.jsonl`` is intact, the final record is an arbitrary byte
prefix of itself.  These tests truncate a finished study's journal at
*every byte offset* spanning the replication records and the
completion marker, then ``--resume``.  Required behaviour at every
cut point (mirroring ``test_campaign_journal_torn``):

* resume succeeds and reports the study ok,
* no campaign or run directory is ever duplicated,
* the final study directory — journal and aggregate included — is
  byte-identical to the uninterrupted baseline, and
* ``pos study audit`` reports the tree complete afterwards.
"""

from __future__ import annotations

import os
import shutil

from repro.study import (
    STUDY_JOURNAL_NAME,
    StudyJournal,
    audit_study,
    load_study,
    run_study,
)
from tests.core.test_campaign_journal_torn import tree_snapshot

SPEC_DOC = {
    "name": "torn",
    "factors": {"rate": [1.0, 2.0]},
    "replications": 2,
    "seed": 3,
}


def campaign_directories(study_dir):
    """Every campaign and run directory under the replications tree."""
    found = []
    replications = os.path.join(study_dir, "replications")
    for dirpath, dirnames, __ in os.walk(replications):
        for name in dirnames:
            if name.startswith(("rep-", "run-")):
                found.append(
                    os.path.relpath(os.path.join(dirpath, name), study_dir)
                )
    return sorted(found)


def test_study_resumes_cleanly_from_every_torn_byte(tmp_path):
    baseline = str(tmp_path / "baseline")
    assert run_study(load_study(SPEC_DOC), baseline, jobs=1).ok
    expected_tree = tree_snapshot(baseline)
    expected_dirs = campaign_directories(baseline)

    journal_path = os.path.join(baseline, STUDY_JOURNAL_NAME)
    with open(journal_path, "rb") as handle:
        journal_bytes = handle.read()
    lines = journal_bytes.splitlines(keepends=True)
    assert len(lines) == 4  # header, two replications, complete
    # Cut everywhere after the header: inside either replication record
    # and the completion marker, including clean line boundaries.
    tail_start = len(lines[0])
    scratch = str(tmp_path / "scratch")

    for cut in range(tail_start, len(journal_bytes)):
        shutil.rmtree(scratch, ignore_errors=True)
        shutil.copytree(baseline, scratch)
        with open(os.path.join(scratch, STUDY_JOURNAL_NAME), "r+b") as handle:
            handle.truncate(cut)
        result = run_study(
            load_study(SPEC_DOC), scratch, jobs=1, resume=True
        )
        assert result.ok, f"resume failed at cut offset {cut}"
        assert campaign_directories(scratch) == expected_dirs, (
            f"campaign/run directories duplicated or lost at cut {cut}"
        )
        resumed_tree = tree_snapshot(scratch)
        different = [
            path for path in sorted(set(expected_tree) | set(resumed_tree))
            if expected_tree.get(path) != resumed_tree.get(path)
        ]
        assert different == [], (
            f"tree diverged at cut offset {cut}: {different}"
        )
        report = audit_study(scratch)
        assert report["complete"], (
            f"audit found holes after resume at cut {cut}: "
            f"{report['holes']}"
        )


def test_study_journal_append_after_torn_tail_leaves_clean_records(tmp_path):
    """Reopening a torn study journal truncates the fragment; the next
    append starts on a clean line, never concatenating records."""
    import json

    journal = StudyJournal.create(str(tmp_path), "torn", 3)
    journal.record_replication(0, 11, ok=True, result_dir="replications/rep-000")
    journal.record_replication(1, 12, ok=True, result_dir="replications/rep-001")
    journal.close()
    path = os.path.join(str(tmp_path), STUDY_JOURNAL_NAME)
    with open(path, "rb") as handle:
        clean = handle.read()
    lines = clean.splitlines(keepends=True)
    tail_start = len(clean) - len(lines[-1])
    for cut in range(tail_start, len(clean)):
        with open(path, "wb") as handle:
            handle.write(clean[:cut])
        reopened = StudyJournal.open(str(tmp_path))
        assert sorted(reopened.completed()) == [0], cut
        reopened.record_replication(
            2, 13, ok=True, result_dir="replications/rep-002"
        )
        reopened.close()
        with open(path, "rb") as handle:
            raw_lines = handle.read().splitlines()
        parsed = [json.loads(line) for line in raw_lines if line.strip()]
        assert parsed[-1]["index"] == 2
