"""Heterogeneity (R1) with the third transport: an SNMP-managed bridge.

A managed L2 device in the traffic path whose forwarding is enabled
through an SNMP OID — configured by the experiment's setup script over
:class:`~repro.testbed.transport.SnmpTransport`, alongside the
SSH-managed load generator, inside one controller-driven experiment.
"""

from __future__ import annotations

import pytest

from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.evaluation.loader import load_experiment
from repro.loadgen.moongen import MoonGen, format_report
from repro.netsim.bridge import LinuxBridge
from repro.netsim.engine import Simulator
from repro.netsim.host import SimHost
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic, Nic
from repro.testbed.images import default_registry
from repro.testbed.node import Node
from repro.testbed.power import IpmiController, SwitchablePowerPlug
from repro.testbed.transport import SnmpTransport, SshTransport

#: Enterprise OID controlling the managed bridge's forwarding state.
PORT_ENABLE_OID = "1.3.6.1.4.1.9999.2.1"


class SnmpRig:
    """LoadGen (SSH) through an SNMP-managed bridge."""

    def __init__(self):
        self.sim = Simulator()
        self.lg_host = SimHost("riga")
        for iface in self.lg_host.interfaces.values():
            iface.nic = HardwareNic(self.sim, f"riga.{iface.name}")
        self.moongen = MoonGen(
            self.sim,
            tx_nic=self.lg_host.interfaces["eno1"].nic,
            rx_nic=self.lg_host.interfaces["eno2"].nic,
        )
        self.bridge = LinuxBridge(self.sim, name="managed-bridge")
        agent = SimHost("bridge-agent", interfaces=[])
        agent.boot("bridge-os", "v1")
        self.agent_host = agent
        # The data plane forwards only while the OID says so.
        self.bridge.gate = (
            lambda: agent.sysctl.get(PORT_ENABLE_OID) == "1" and agent.reachable
        )
        p0 = Nic(self.sim, "br.p0")
        p1 = Nic(self.sim, "br.p1")
        self.bridge.add_port(p0)
        self.bridge.add_port(p1)
        DirectWire(self.sim, self.lg_host.interfaces["eno1"].nic, p0)
        DirectWire(self.sim, p1, self.lg_host.interfaces["eno2"].nic)
        self.nodes = {
            "riga": Node("riga", host=self.lg_host,
                         power=IpmiController(self.lg_host),
                         transport=SshTransport(self.lg_host)),
            "bridge": Node("bridge", host=agent,
                           power=SwitchablePowerPlug(agent),
                           transport=SnmpTransport(agent)),
        }

    def controller(self, tmp_path):
        registry = default_registry()
        registry.register("bridge-os", "v1", kernel="switch-2.4")
        return Controller(
            Allocator(Calendar(clock=lambda: 0.0), self.nodes),
            registry,
            ResultStore(str(tmp_path / "results"), clock=lambda: 1.0),
        )


def loadgen_measure(ctx):
    rig = ctx.setup
    job = rig.moongen.start(rate_pps=100_000, frame_size=64, duration_s=0.02)
    rig.sim.run(until=rig.sim.now + 0.04)
    ctx.tools.upload("moongen.log", format_report(job))
    ctx.tools.barrier("run-done")


def snmp_experiment(enable_bridge=True):
    bridge_setup = [
        f"set {PORT_ENABLE_OID} 1" if enable_bridge else "get 1.3.6.1.2.1.1.5.0",
        f"-get {PORT_ENABLE_OID}",
        "pos barrier setup-done",
    ]
    return Experiment(
        name="snmp-bridge",
        roles=[
            Role(
                name="loadgen",
                node="riga",
                setup=CommandScript("lg-setup", [
                    "ip link set eno1 up",
                    "ip link set eno2 up",
                    "pos barrier setup-done",
                ]),
                measurement=PythonScript("lg-measure", loadgen_measure),
            ),
            Role(
                name="bridge",
                node="bridge",
                image=("bridge-os", "v1"),
                setup=CommandScript("bridge-setup", bridge_setup),
                measurement=CommandScript("bridge-measure", [
                    f"-get {PORT_ENABLE_OID}",
                    "pos barrier run-done",
                ]),
            ),
        ],
        variables=Variables(loop_vars={"run": [1]}),
        duration_s=60.0,
    )


class TestSnmpManagedBridge:
    def test_snmp_configured_bridge_forwards(self, tmp_path):
        rig = SnmpRig()
        controller = rig.controller(tmp_path)
        handle = controller.run(
            snmp_experiment(), setup_context_extra={"setup": rig}
        )
        assert handle.completed_runs == 1
        results = load_experiment(handle.result_path)
        output = results.runs[0].moongen()
        assert output.rx_mpps == pytest.approx(0.1, rel=0.03)

    def test_unconfigured_bridge_blackholes(self, tmp_path):
        rig = SnmpRig()
        controller = rig.controller(tmp_path)
        handle = controller.run(
            snmp_experiment(enable_bridge=False),
            setup_context_extra={"setup": rig},
        )
        results = load_experiment(handle.result_path)
        assert results.runs[0].moongen().rx_mpps == 0.0

    def test_oid_state_captured_in_results(self, tmp_path):
        rig = SnmpRig()
        controller = rig.controller(tmp_path)
        handle = controller.run(
            snmp_experiment(), setup_context_extra={"setup": rig}
        )
        results = load_experiment(handle.result_path)
        log = results.runs[0].output("bridge", "commands.log")
        assert f"get {PORT_ENABLE_OID}" in log

    def test_snmp_node_skips_tool_deployment_gracefully(self, tmp_path):
        """SNMP devices have no filesystem; the controller must not
        fail deploying the utility-tool stub there."""
        rig = SnmpRig()
        controller = rig.controller(tmp_path)
        handle = controller.run(
            snmp_experiment(), setup_context_extra={"setup": rig}
        )
        assert handle.completed_runs == 1
