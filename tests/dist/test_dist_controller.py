"""Unit and policy tests for the distributed run controller.

Covers agent-count resolution, chaos-plan validation, the execution-
plane guards in the experiment controller, and the failure policies the
scheduler enforces when a fleet cannot make progress: the re-dispatch
budget and fleet-wide quarantine both fail loudly instead of spinning.
"""

from __future__ import annotations

import pytest

from repro.casestudy import run_case_study
from repro.core.errors import ExperimentError
from repro.dist import DistScheduler, resolve_agents, validate_dist_fault_plan
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy

CLOCK = lambda: 1_600_000_000.0  # noqa: E731 - fixed clock => fixed tree paths


def run(tmp_path, sub, **kwargs):
    kwargs.setdefault("duration_s", 0.2)
    kwargs.setdefault("max_runs", 4)
    kwargs.setdefault("clock", CLOCK)
    return run_case_study("vpos", str(tmp_path / sub), **kwargs)


class TestResolveAgents:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("POS_AGENTS", raising=False)
        assert resolve_agents(None) == 0

    def test_explicit_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("POS_AGENTS", "8")
        assert resolve_agents(2) == 2

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("POS_AGENTS", "3")
        assert resolve_agents(None) == 3

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError, match="non-negative"):
            resolve_agents(-1)


class TestValidateDistFaultPlan:
    def test_none_and_dist_kinds_accepted(self):
        validate_dist_fault_plan(None)
        validate_dist_fault_plan(FaultPlan([
            FaultSpec(kind="agent", operation="kill", node="agent-00", times=1),
            FaultSpec(kind="agent", operation="kill-after", runs=(1,)),
            FaultSpec(kind="transport", operation="drop", times=2),
            FaultSpec(kind="transport", operation="drop:result", times=1),
            FaultSpec(kind="transport", operation="delay:heartbeat"),
            FaultSpec(kind="transport", operation="duplicate"),
        ]))

    def test_unknown_agent_operation_rejected(self):
        with pytest.raises(ExperimentError, match="agent operation"):
            validate_dist_fault_plan(FaultPlan([
                FaultSpec(kind="agent", operation="reboot"),
            ]))

    def test_transport_needs_explicit_operation(self):
        with pytest.raises(ExperimentError, match="explicit bus operation"):
            validate_dist_fault_plan(FaultPlan([
                FaultSpec(kind="transport"),
            ]))

    def test_unknown_bus_verb_rejected(self):
        with pytest.raises(ExperimentError, match="unknown bus operation"):
            validate_dist_fault_plan(FaultPlan([
                FaultSpec(kind="transport", operation="scramble"),
            ]))

    def test_unknown_envelope_kind_rejected(self):
        with pytest.raises(ExperimentError, match="unknown envelope kind"):
            validate_dist_fault_plan(FaultPlan([
                FaultSpec(kind="transport", operation="drop:telegram"),
            ]))

    def test_in_world_kinds_belong_to_the_regular_plan(self):
        with pytest.raises(ExperimentError, match="regular\nfault plan|regular "):
            validate_dist_fault_plan(FaultPlan([
                FaultSpec(kind="power", node="tartu", runs=(0,)),
            ]))


class TestSchedulerConstruction:
    def test_agent_count_must_be_positive(self):
        with pytest.raises(ExperimentError, match="at least 1"):
            DistScheduler(0, object(), RetryPolicy())

    def test_unknown_transport_rejected(self):
        with pytest.raises(ExperimentError, match="unknown transport"):
            DistScheduler(2, object(), RetryPolicy(), transport="carrier-pigeon")

    def test_quarantine_threshold_must_be_positive(self):
        with pytest.raises(ExperimentError, match="quarantine_threshold"):
            DistScheduler(2, object(), RetryPolicy(), quarantine_threshold=0)

    def test_chaos_plan_validated_at_construction(self):
        with pytest.raises(ExperimentError, match="unknown bus operation"):
            DistScheduler(
                2, object(), RetryPolicy(),
                fault_plan=FaultPlan([
                    FaultSpec(kind="transport", operation="scramble"),
                ]),
            )


class TestExecutionPlaneGuards:
    def test_jobs_and_agents_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ExperimentError, match="mutually exclusive"):
            run(tmp_path, "x", jobs=2, agents=2)

    def test_dist_fault_plan_requires_agents(self, tmp_path):
        plan = FaultPlan([
            FaultSpec(kind="transport", operation="drop", times=1),
        ])
        with pytest.raises(ExperimentError, match="needs the distributed plane"):
            run(tmp_path, "x", dist_fault_plan=plan)

    def test_continue_policy_rejected_on_the_plane(self, tmp_path):
        with pytest.raises(ExperimentError, match="on_error"):
            run(tmp_path, "x", agents=2, on_error="continue")

    def test_in_world_spec_in_dist_plan_rejected(self, tmp_path):
        plan = FaultPlan([
            FaultSpec(kind="power", node="tartu", runs=(0,), times=1),
        ])
        with pytest.raises(ExperimentError, match="regular"):
            run(tmp_path, "x", agents=2, dist_fault_plan=plan)

    def test_unknown_transport_rejected_by_controller(self, tmp_path):
        with pytest.raises(ExperimentError, match="transport"):
            run(tmp_path, "x", agents=2, transport="smoke-signal")


class TestFleetFailurePolicies:
    def test_always_dying_fleet_is_quarantined_loudly(self, tmp_path):
        # Every incarnation of the single agent is killed before its
        # first run; after quarantine_threshold deaths the whole fleet
        # is quarantined and the experiment must fail, not spin.
        plan = FaultPlan([
            FaultSpec(kind="agent", operation="kill", times=None),
        ])
        with pytest.raises(ExperimentError, match="quarantined"):
            run(tmp_path, "x", agents=1, dist_fault_plan=plan)

    def test_unreliable_transport_exhausts_redispatch_budget(self, tmp_path):
        # Results never survive the wire: the agent executes and
        # re-executes, reconcile re-dispatches, and the budget trips
        # before the scheduler loops forever.
        plan = FaultPlan([
            FaultSpec(kind="transport", operation="drop:result", times=None),
        ])
        with pytest.raises(ExperimentError, match="re-dispatched|stalled"):
            run(tmp_path, "x", max_runs=2, agents=1, dist_fault_plan=plan)
