"""Unit tests for the distributed-plane message transport.

The loopback bus is the deterministic half of the failure model: faults
strike on the wire from a seeded plan, delayed envelopes are released on
virtual round boundaries, and a killed agent goes *silent* — the bus
never reports its death, because lease expiry must be what notices.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ExperimentError
from repro.dist.transport import (
    BUS_FAULT_OPERATIONS,
    ENVELOPE_KINDS,
    BusFaults,
    Envelope,
    LoopbackBus,
    resolve_agents_env,
)
from repro.faults.plan import FaultPlan, FaultSpec


def env(kind="heartbeat", sender="agent-00", seq=0, payload=None):
    return Envelope(kind=kind, sender=sender, seq=seq, payload=payload)


class Recorder:
    """Minimal loopback agent: records its inbox, stays alive."""

    def __init__(self, agent_id, generation, send):
        self.agent_id = agent_id
        self.generation = generation
        self.alive = True
        self.inbox = []
        self.send = send
        self.steps = []

    def step(self, now):
        self.steps.append(now)


class TestBusFaults:
    def test_no_plan_always_delivers(self):
        faults = BusFaults(None)
        assert faults.verdict(env(), "agent-00") == "deliver"

    def test_bare_verb_strikes_any_kind(self):
        plan = FaultPlan([
            FaultSpec(kind="transport", operation="drop", times=1),
        ])
        faults = BusFaults(plan)
        assert faults.verdict(env(kind="lease"), "agent-00") == "drop"
        # Budget of one: the second send goes through.
        assert faults.verdict(env(kind="lease"), "agent-00") == "deliver"

    def test_kind_scoped_verb_only_strikes_that_kind(self):
        plan = FaultPlan([
            FaultSpec(kind="transport", operation="drop:result", times=2),
        ])
        faults = BusFaults(plan)
        assert faults.verdict(env(kind="heartbeat"), "agent-00") == "deliver"
        assert faults.verdict(env(kind="result"), "agent-00") == "drop"

    def test_agent_scoping_via_node_field(self):
        plan = FaultPlan([
            FaultSpec(kind="transport", operation="duplicate",
                      node="agent-01", times=1),
        ])
        faults = BusFaults(plan)
        assert faults.verdict(env(), "agent-00") == "deliver"
        assert faults.verdict(env(), "agent-01") == "duplicate"

    def test_known_verbs_and_envelope_kinds(self):
        assert BUS_FAULT_OPERATIONS == ("drop", "duplicate", "delay")
        for kind in ("register", "lease", "dispatch", "heartbeat",
                     "result", "shard-done", "shutdown"):
            assert kind in ENVELOPE_KINDS


class TestLoopbackBus:
    def test_send_reaches_agent_inbox(self):
        bus = LoopbackBus(Recorder)
        bus.spawn("agent-00", 0)
        bus.send("agent-00", env(kind="dispatch"))
        agent = bus._agents["agent-00"]
        assert [e.kind for e in agent.inbox] == ["dispatch"]

    def test_agent_send_reaches_controller_poll(self):
        bus = LoopbackBus(Recorder)
        bus.spawn("agent-00", 0)
        bus._agents["agent-00"].send(env(kind="register"))
        inbound, dead = bus.poll()
        assert [e.kind for e in inbound] == ["register"]
        assert dead == []
        # poll drains: a second poll is empty.
        assert bus.poll() == ([], [])

    def test_step_runs_agents_in_sorted_order_on_the_round_clock(self):
        bus = LoopbackBus(Recorder)
        bus.spawn("agent-01", 0)
        bus.spawn("agent-00", 0)
        bus.advance()
        bus.step()
        assert bus._agents["agent-00"].steps == [1.0]
        assert bus._agents["agent-01"].steps == [1.0]

    def test_killed_agent_is_silent_not_reported(self):
        bus = LoopbackBus(Recorder)
        bus.spawn("agent-00", 0)
        bus.kill("agent-00")
        bus.send("agent-00", env(kind="dispatch"))
        assert bus._agents["agent-00"].inbox == []
        inbound, dead = bus.poll()
        assert dead == []  # death is only discoverable via lease expiry
        bus.step()
        assert bus._agents["agent-00"].steps == []

    def test_dropped_envelope_vanishes(self):
        plan = FaultPlan([
            FaultSpec(kind="transport", operation="drop:dispatch", times=1),
        ])
        bus = LoopbackBus(Recorder, fault_plan=plan)
        bus.spawn("agent-00", 0)
        bus.send("agent-00", env(kind="dispatch"))
        bus.send("agent-00", env(kind="dispatch", seq=1))
        assert [e.seq for e in bus._agents["agent-00"].inbox] == [1]

    def test_duplicated_envelope_arrives_twice(self):
        plan = FaultPlan([
            FaultSpec(kind="transport", operation="duplicate", times=1),
        ])
        bus = LoopbackBus(Recorder, fault_plan=plan)
        bus.spawn("agent-00", 0)
        bus.send("agent-00", env(kind="dispatch"))
        assert [e.kind for e in bus._agents["agent-00"].inbox] == [
            "dispatch", "dispatch",
        ]

    def test_delayed_envelope_released_on_next_advance(self):
        plan = FaultPlan([
            FaultSpec(kind="transport", operation="delay", times=1),
        ])
        bus = LoopbackBus(Recorder, fault_plan=plan)
        bus.spawn("agent-00", 0)
        bus.send("agent-00", env(kind="dispatch"))
        # Delay delivers once immediately *and* once on the next round:
        # an agent that acts on the first copy sees a duplicate later,
        # which the dedupe layer must absorb.
        assert len(bus._agents["agent-00"].inbox) == 1
        bus.advance()
        assert len(bus._agents["agent-00"].inbox) == 2

    def test_virtual_clock_counts_rounds(self):
        bus = LoopbackBus(Recorder)
        assert bus.now() == 0.0
        bus.advance()
        bus.advance()
        assert bus.now() == 2.0

    def test_close_calls_agent_close(self):
        closed = []

        class Closing(Recorder):
            def close(self):
                closed.append(self.agent_id)

        bus = LoopbackBus(Closing)
        bus.spawn("agent-00", 0)
        bus.close()
        assert closed == ["agent-00"]


class TestResolveAgentsEnv:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("POS_AGENTS", raising=False)
        assert resolve_agents_env() == 0

    def test_environment_value(self, monkeypatch):
        monkeypatch.setenv("POS_AGENTS", "4")
        assert resolve_agents_env() == 4

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("POS_AGENTS", "many")
        with pytest.raises(ExperimentError, match="POS_AGENTS"):
            resolve_agents_env()
