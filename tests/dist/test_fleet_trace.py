"""Acceptance tests for the causal tracing and critical-path plane.

The tentpole contract: ``fleet-trace.jsonl`` is a *deterministic*
artifact — byte-identical for any ``--jobs``/``--agents`` count,
transport, and crash schedule (including a controller crash followed
by resume) — while every real timing lives in the quarantined
``fleet-trace-wall.jsonl`` evidence sidecar.  On top of the pair,
``pos trace`` must attribute the pump's whole lifetime to phases that
sum to the total by construction, even for a crashed-and-resumed
chaos execution.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.casestudy import run_case_study
from repro.cli.main import main as cli_main
from repro.dist.report import agents_status
from repro.faults.plan import FaultPlan, FaultSpec
from repro.telemetry.criticalpath import PHASES, TraceError, analyze
from repro.telemetry.plane import (
    DISPATCH_NAME,
    FLEET_TRACE_NAME,
    FLEET_WALL_NAME,
)
from repro.telemetry.schema import validate_experiment
from tests.core.test_parallel_scheduler import (
    CrashRequested,
    crashing_progress,
    find_result_dir,
)

CLOCK = lambda: 1_600_000_000.0  # noqa: E731 - fixed clock => fixed tree paths

KWARGS = dict(duration_s=0.2, max_runs=4, clock=CLOCK)

CHAOS = FaultPlan([
    FaultSpec(kind="agent", operation="kill", node="agent-00", times=1),
    FaultSpec(kind="transport", operation="drop:result", times=1),
    FaultSpec(kind="transport", operation="duplicate:result", times=2),
])


def fleet_trace_bytes(root):
    path = os.path.join(find_result_dir(root), FLEET_TRACE_NAME)
    with open(path, "rb") as handle:
        return handle.read()


def fleet_trace_records(root):
    return [
        json.loads(line)
        for line in fleet_trace_bytes(root).decode("utf-8").splitlines()
        if line.strip()
    ]


@pytest.fixture(scope="module")
def serial_fleet_trace(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("serial"))
    run_case_study("vpos", root, **KWARGS)
    return fleet_trace_bytes(root)


class TestDeterministicTrace:
    @pytest.mark.parametrize("agents", [1, 2, 3])
    def test_any_agent_count_traces_identically(
        self, tmp_path, serial_fleet_trace, agents,
    ):
        root = str(tmp_path / f"agents-{agents}")
        run_case_study("vpos", root, agents=agents, **KWARGS)
        assert fleet_trace_bytes(root) == serial_fleet_trace

    def test_jobs_trace_identically(self, tmp_path, serial_fleet_trace):
        root = str(tmp_path / "jobs")
        run_case_study("vpos", root, jobs=2, **KWARGS)
        assert fleet_trace_bytes(root) == serial_fleet_trace

    def test_chaos_traces_identically(self, tmp_path, serial_fleet_trace):
        root = str(tmp_path / "chaos")
        handle = run_case_study(
            "vpos", root, agents=3, dist_fault_plan=CHAOS, **KWARGS,
        )
        assert handle.completed_runs == 4
        assert fleet_trace_bytes(root) == serial_fleet_trace

    def test_crash_resume_traces_identically(
        self, tmp_path, serial_fleet_trace,
    ):
        root = str(tmp_path / "crashed")
        with pytest.raises(CrashRequested):
            run_case_study(
                "vpos", root, agents=3, progress=crashing_progress(2),
                **KWARGS,
            )
        result_dir = find_result_dir(root)
        run_case_study(
            "vpos", root, agents=3, resume_path=result_dir, **KWARGS,
        )
        assert fleet_trace_bytes(root) == serial_fleet_trace

    def test_trace_shape_and_schema(self, tmp_path):
        root = str(tmp_path / "shape")
        run_case_study("vpos", root, agents=2, **KWARGS)
        records = fleet_trace_records(root)
        # One dispatch -> run -> persist chain per run, root written
        # post-order, in strict run-index order.
        spans = [record["span"] for record in records]
        expected = [
            f"r{index}.{stage}"
            for index in range(4)
            for stage in ("dispatch", "run", "persist")
        ] + ["root"]
        assert spans == expected
        assert all(
            record["trace"] == records[0]["trace"] for record in records
        )
        root_record = records[-1]
        assert root_record["parent"] is None
        assert root_record["attrs"]["runs"] == 4
        # The chains hang off the root; run spans off their dispatch.
        by_span = {record["span"]: record for record in records}
        for index in range(4):
            assert by_span[f"r{index}.dispatch"]["parent"] == "root"
            assert by_span[f"r{index}.run"]["parent"] == f"r{index}.dispatch"
            assert by_span[f"r{index}.persist"]["parent"] == f"r{index}.run"
        # The published schema accepts every line.
        validated = validate_experiment(find_result_dir(root))
        assert any(path.endswith(FLEET_TRACE_NAME) for path in validated)
        assert any(path.endswith(DISPATCH_NAME) for path in validated)

    def test_wall_sidecar_is_quarantined(self, tmp_path):
        serial_root = str(tmp_path / "serial")
        run_case_study("vpos", serial_root, **KWARGS)
        assert not os.path.isfile(
            os.path.join(find_result_dir(serial_root), FLEET_WALL_NAME)
        )
        dist_root = str(tmp_path / "dist")
        run_case_study("vpos", dist_root, agents=2, **KWARGS)
        wall_path = os.path.join(find_result_dir(dist_root), FLEET_WALL_NAME)
        assert os.path.isfile(wall_path)
        events = [
            json.loads(line)
            for line in open(wall_path, encoding="utf-8")
            if line.strip()
        ]
        kinds = {event["event"] for event in events}
        assert {"begin", "send", "recv", "deliver", "complete"} <= kinds

    def test_kill_switch_disables_the_whole_plane(
        self, tmp_path, monkeypatch,
    ):
        monkeypatch.setenv("POS_FLEET_TRACE", "0")
        root = str(tmp_path / "off")
        handle = run_case_study("vpos", root, agents=2, **KWARGS)
        assert handle.completed_runs == 4
        result_dir = find_result_dir(root)
        assert not os.path.isfile(os.path.join(result_dir, FLEET_TRACE_NAME))
        assert not os.path.isfile(os.path.join(result_dir, FLEET_WALL_NAME))
        with pytest.raises(TraceError):
            analyze(result_dir)

    def test_dispatch_log_switch_silences_wall_but_not_trace(
        self, tmp_path, monkeypatch,
    ):
        # POS_DISPATCH_LOG=0 silences every evidence sidecar; the
        # deterministic causal skeleton is an artifact, not evidence,
        # and must survive.
        monkeypatch.setenv("POS_DISPATCH_LOG", "0")
        root = str(tmp_path / "quiet")
        run_case_study("vpos", root, agents=2, **KWARGS)
        result_dir = find_result_dir(root)
        assert os.path.isfile(os.path.join(result_dir, FLEET_TRACE_NAME))
        assert not os.path.isfile(os.path.join(result_dir, FLEET_WALL_NAME))


class TestCriticalPath:
    def test_chaos_crash_resume_breakdown_sums_to_total(self, tmp_path):
        # The acceptance scenario: a crashed-and-resumed --agents 3
        # chaos execution still yields a breakdown that accounts for
        # every instant of the pump's lifetime.
        root = str(tmp_path / "chaos")
        with pytest.raises(CrashRequested):
            run_case_study(
                "vpos", root, agents=3, dist_fault_plan=CHAOS,
                progress=crashing_progress(2), **KWARGS,
            )
        result_dir = find_result_dir(root)
        run_case_study(
            "vpos", root, agents=3, resume_path=result_dir, **KWARGS,
        )
        analysis = analyze(result_dir)
        assert analysis["runs_traced"] == 4
        assert analysis["clock"] == "transport"
        total = analysis["total"]
        assert total > 0
        assert sum(analysis["phases"].values()) == pytest.approx(total)
        assert set(analysis["phases"]) == set(PHASES)
        # Every phase is a non-negative share of the lifetime.
        assert all(value >= 0.0 for value in analysis["phases"].values())

    def test_serial_profile_falls_back_to_sim_clock(self, tmp_path):
        root = str(tmp_path / "serial")
        run_case_study("vpos", root, **KWARGS)
        analysis = analyze(find_result_dir(root))
        assert analysis["clock"] == "sim"
        assert analysis["phases"]["run"] == pytest.approx(analysis["total"])
        assert analysis["agents"] == []

    def test_agent_occupancy_and_slowest_runs(self, tmp_path):
        root = str(tmp_path / "dist")
        run_case_study("vpos", root, agents=2, **KWARGS)
        analysis = analyze(find_result_dir(root))
        agents = {book["agent"] for book in analysis["agents"]}
        assert agents <= {"agent-00", "agent-01"} and agents
        for book in analysis["agents"]:
            assert 0.0 <= book["utilization"] <= 1.0
            assert book["busy"] + book["idle"] == pytest.approx(
                analysis["total"]
            )
        assert len(analysis["slowest"]) == 4
        durations = [row["duration"] for row in analysis["slowest"]]
        assert durations == sorted(durations, reverse=True)

    def test_torn_wall_sidecar_still_profiles(self, tmp_path):
        root = str(tmp_path / "torn")
        run_case_study("vpos", root, agents=2, **KWARGS)
        wall_path = os.path.join(find_result_dir(root), FLEET_WALL_NAME)
        with open(wall_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 9999, "event": "re')  # torn write
        analysis = analyze(find_result_dir(root))  # must not raise
        assert sum(analysis["phases"].values()) == pytest.approx(
            analysis["total"]
        )


class TestTraceCli:
    def test_text_report(self, tmp_path, capsys):
        root = str(tmp_path / "dist")
        run_case_study("vpos", root, agents=2, **KWARGS)
        assert cli_main(["trace", find_result_dir(root)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "4/4 runs traced" in out
        for phase in PHASES:
            assert phase in out
        assert "slowest runs" in out

    def test_json_report_sums_to_total(self, tmp_path, capsys):
        root = str(tmp_path / "dist")
        run_case_study("vpos", root, agents=2, **KWARGS)
        assert cli_main(["trace", "--json", find_result_dir(root)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sum(payload["phases"].values()) == pytest.approx(
            payload["total"]
        )
        assert payload["runs_traced"] == 4

    def test_missing_trace_is_a_clear_error(self, tmp_path, capsys):
        assert cli_main(["trace", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "fleet-trace" in err or "POS_FLEET_TRACE" in err


class TestTornDispatchLog:
    def test_agents_status_folds_from_every_torn_offset(self, tmp_path):
        # Crash evidence has no atomicity: a writer can die mid-byte.
        # The fold must survive *any* prefix of the sidecar — walk every
        # truncation offset of a real log and require a clean answer.
        root = str(tmp_path / "torn")
        run_case_study("vpos", root, agents=2, **KWARGS)
        path = os.path.join(find_result_dir(root), DISPATCH_NAME)
        with open(path, "rb") as handle:
            original = handle.read()
        assert len(original) > 0
        complete = agents_status(root)
        assert complete["totals"]["completed"] is True
        for offset in range(len(original) + 1):
            with open(path, "wb") as handle:
                handle.write(original[:offset])
            status = agents_status(root)  # must not raise at any offset
            assert status["totals"]["results"] <= complete["totals"]["results"]
        # Full bytes restored by the final iteration: same answer again.
        assert agents_status(root) == complete
