"""Acceptance tests for the fault-tolerant distributed execution plane.

The hard invariant under test: the merged artifact tree is
*byte-identical* to a sequential, fault-free execution for any agent
count, transport, and seeded crash schedule — including agent SIGKILLs
mid-shard and a controller crash followed by resume.  The only file
allowed to differ is the ``dispatch.jsonl`` evidence sidecar, which is
deliberately outside the determinism contract.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.casestudy import run_case_study
from repro.dist.report import agents_status, format_agents_status
from repro.faults.plan import FaultPlan, FaultSpec
from repro.telemetry.plane import DISPATCH_NAME, EVIDENCE_SIDECARS
from tests.core.test_parallel_scheduler import (
    CrashRequested,
    crashing_progress,
    find_result_dir,
    journal_entries,
    run_dir_files,
    tree,
)

CLOCK = lambda: 1_600_000_000.0  # noqa: E731 - fixed clock => fixed tree paths

KWARGS = dict(duration_s=0.2, max_runs=4, clock=CLOCK)


def dist_tree(root):
    """Tree mapping without the evidence sidecars (outside the contract)."""
    return {
        rel: data
        for rel, data in tree(root).items()
        if os.path.basename(rel) not in EVIDENCE_SIDECARS
    }


def dispatch_events(root):
    path = os.path.join(find_result_dir(root), DISPATCH_NAME)
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


@pytest.fixture(scope="module")
def serial_tree(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("serial"))
    run_case_study("vpos", root, **KWARGS)
    return dist_tree(root)


class TestByteIdentity:
    @pytest.mark.parametrize("agents", [1, 2, 3])
    def test_any_agent_count_matches_serial(
        self, tmp_path, serial_tree, agents,
    ):
        root = str(tmp_path / f"agents-{agents}")
        handle = run_case_study("vpos", root, agents=agents, **KWARGS)
        assert handle.completed_runs == 4 and handle.failed_runs == 0
        assert dist_tree(root) == serial_tree

    def test_more_agents_than_runs(self, tmp_path, serial_tree):
        root = str(tmp_path / "wide")
        run_case_study("vpos", root, agents=16, **KWARGS)
        assert dist_tree(root) == serial_tree

    def test_dispatch_sidecar_can_be_disabled(
        self, tmp_path, serial_tree, monkeypatch,
    ):
        monkeypatch.setenv("POS_DISPATCH_LOG", "0")
        root = str(tmp_path / "quiet")
        run_case_study("vpos", root, agents=2, **KWARGS)
        # With the sidecar off the *whole* tree is identical, no filter.
        assert tree(root) == serial_tree


class TestCrashSchedules:
    def test_agent_killed_mid_shard_matches_serial(
        self, tmp_path, serial_tree,
    ):
        # agent-00's first incarnation is killed before its first run;
        # the lease expires, the work is re-dispatched, and a second
        # incarnation (or the survivor) finishes the shard.
        plan = FaultPlan([
            FaultSpec(kind="agent", operation="kill", node="agent-00", times=1),
        ])
        root = str(tmp_path / "killed")
        run_case_study("vpos", root, agents=2, dist_fault_plan=plan, **KWARGS)
        assert dist_tree(root) == serial_tree
        events = dispatch_events(root)
        assert any(event["event"] == "agent-dead" for event in events)
        # The orphaned work went out again — either as a reconcile
        # "redispatch" or as a fresh dispatch flagged with that reason.
        assert any(
            event["event"] == "redispatch"
            or (event["event"] == "dispatch"
                and event.get("reason") == "redispatch")
            for event in events
        )

    def test_lost_result_is_reexecuted_not_lost(self, tmp_path, serial_tree):
        # kill-after: the run executed but the result died with the
        # agent — the at-least-once leg must re-dispatch and the dedupe
        # leg must keep the tree identical.
        plan = FaultPlan([
            FaultSpec(kind="agent", operation="kill-after",
                      node="agent-01", times=1),
        ])
        root = str(tmp_path / "lost-result")
        run_case_study("vpos", root, agents=2, dist_fault_plan=plan, **KWARGS)
        assert dist_tree(root) == serial_tree

    def test_full_chaos_schedule_matches_serial(self, tmp_path, serial_tree):
        plan = FaultPlan([
            FaultSpec(kind="agent", operation="kill", node="agent-00", times=1),
            FaultSpec(kind="transport", operation="drop:result", times=1),
            FaultSpec(kind="transport", operation="delay:heartbeat", times=3),
            FaultSpec(kind="transport", operation="duplicate:result", times=2),
        ])
        root = str(tmp_path / "chaos")
        handle = run_case_study(
            "vpos", root, agents=3, dist_fault_plan=plan, **KWARGS,
        )
        assert handle.completed_runs == 4 and handle.failed_runs == 0
        assert dist_tree(root) == serial_tree

    def test_dying_agents_work_migrates_to_the_survivor(
        self, tmp_path, serial_tree,
    ):
        # agent-00 is killed whenever it is about to execute a run; its
        # orphaned shard migrates and agent-01 absorbs the whole sweep.
        plan = FaultPlan([
            FaultSpec(kind="agent", operation="kill",
                      node="agent-00", times=None),
        ])
        root = str(tmp_path / "migrate")
        run_case_study("vpos", root, agents=2, dist_fault_plan=plan, **KWARGS)
        assert dist_tree(root) == serial_tree
        events = dispatch_events(root)
        assert any(
            event["event"] == "agent-dead" and event["agent"] == "agent-00"
            for event in events
        )
        delivered_by = [
            event["agent"] for event in events if event["event"] == "result"
        ]
        assert delivered_by.count("agent-01") == 4

    def test_chaos_stays_out_of_the_inventory(self, tmp_path):
        # The chaos plan must never leak into the experiment artifacts:
        # inventory.json documents the in-world plan only.
        plan = FaultPlan([
            FaultSpec(kind="transport", operation="duplicate:result", times=1),
        ])
        serial_root = str(tmp_path / "inv-serial")
        run_case_study("vpos", serial_root, **KWARGS)
        root = str(tmp_path / "inv")
        run_case_study("vpos", root, agents=2, dist_fault_plan=plan, **KWARGS)

        def inventory(contents):
            return next(
                data for rel, data in contents.items()
                if os.path.basename(rel) == "inventory.yml"
            )

        # Byte-for-byte the same inventory as a chaos-free serial run:
        # the dist plan never reaches the in-world fault description.
        assert inventory(dist_tree(root)) == inventory(dist_tree(serial_root))


class TestControllerCrashResume:
    def test_crash_then_resume_reruns_zero_completed_runs(self, tmp_path):
        clean_root = str(tmp_path / "clean")
        run_case_study("vpos", clean_root, **KWARGS)
        clean = tree(clean_root)

        with pytest.raises(CrashRequested):
            run_case_study(
                "vpos", str(tmp_path / "crashed"), agents=2,
                progress=crashing_progress(2), **KWARGS,
            )
        result_dir = find_result_dir(str(tmp_path / "crashed"))
        completed_before = {
            entry["index"]
            for entry in journal_entries(tree(str(tmp_path / "crashed")))
            if entry.get("event") == "run"
        }
        assert len(completed_before) >= 2

        handle = run_case_study(
            "vpos", str(tmp_path / "crashed"), agents=2,
            resume_path=result_dir, **KWARGS,
        )
        assert handle.resumed_runs == len(completed_before)
        resumed = tree(str(tmp_path / "crashed"))
        assert run_dir_files(resumed) == run_dir_files(clean)
        # The journal promises each run exactly once.
        run_entries = [
            entry for entry in journal_entries(resumed)
            if entry.get("event") == "run"
        ]
        assert sorted(entry["index"] for entry in run_entries) == [0, 1, 2, 3]
        # Zero re-runs: the sidecar is append-only across the crash, so
        # a journal-promised run must appear exactly once in the whole
        # result history — delivered pre-crash, never re-delivered by
        # the resumed execution's agents.
        results = [
            event["run"]
            for event in dispatch_events(str(tmp_path / "crashed"))
            if event["event"] == "result"
        ]
        for index in completed_before:
            assert results.count(index) == 1

    def test_resume_onto_the_serial_path_from_a_dist_crash(self, tmp_path):
        clean_root = str(tmp_path / "clean")
        run_case_study("vpos", clean_root, **KWARGS)
        with pytest.raises(CrashRequested):
            run_case_study(
                "vpos", str(tmp_path / "crashed"), agents=3,
                progress=crashing_progress(1), **KWARGS,
            )
        result_dir = find_result_dir(str(tmp_path / "crashed"))
        run_case_study(
            "vpos", str(tmp_path / "crashed"), resume_path=result_dir,
            **KWARGS,
        )
        assert run_dir_files(tree(str(tmp_path / "crashed"))) == run_dir_files(
            tree(clean_root)
        )


class TestPipeTransport:
    def test_pipe_happy_path_matches_serial(self, tmp_path, serial_tree):
        root = str(tmp_path / "pipe")
        handle = run_case_study(
            "vpos", root, agents=2, transport="pipe", **KWARGS,
        )
        assert handle.completed_runs == 4 and handle.failed_runs == 0
        assert dist_tree(root) == serial_tree

    def test_real_sigkill_is_absorbed(self, tmp_path, serial_tree):
        # A real subprocess agent SIGKILLs itself; the controller sees
        # the broken pipe, fences, respawns, and the tree is identical.
        plan = FaultPlan([
            FaultSpec(kind="agent", operation="kill", node="agent-00", times=1),
        ])
        root = str(tmp_path / "pipe-kill")
        handle = run_case_study(
            "vpos", root, agents=2, transport="pipe",
            dist_fault_plan=plan, **KWARGS,
        )
        assert handle.completed_runs == 4 and handle.failed_runs == 0
        assert dist_tree(root) == serial_tree
        events = dispatch_events(root)
        assert any(event["event"] == "agent-dead" for event in events)


class TestAgentsStatusReport:
    def test_fleet_report_folds_the_evidence(self, tmp_path):
        plan = FaultPlan([
            FaultSpec(kind="agent", operation="kill", node="agent-00", times=1),
        ])
        root = str(tmp_path / "report")
        run_case_study("vpos", root, agents=2, dist_fault_plan=plan, **KWARGS)
        status = agents_status(root)
        assert status["totals"]["completed"] is True
        assert status["totals"]["results"] == 4
        assert status["totals"]["deaths"] >= 1
        by_id = {entry["agent"]: entry for entry in status["agents"]}
        assert by_id["agent-00"]["spawns"] >= 2  # initial + respawn
        text = format_agents_status(status)
        assert "agent-00" in text and "complete" in text

    def test_report_tolerates_a_torn_tail(self, tmp_path):
        root = str(tmp_path / "torn")
        run_case_study("vpos", root, agents=2, **KWARGS)
        path = os.path.join(find_result_dir(root), DISPATCH_NAME)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 9999, "event": "agent-d')  # torn write
        status = agents_status(root)  # must not raise
        assert status["totals"]["completed"] is True

    def test_missing_sidecar_is_a_clear_error(self, tmp_path):
        from repro.core.errors import ExperimentError

        root = str(tmp_path / "none")
        run_case_study("vpos", root, **KWARGS)  # serial: no sidecar
        with pytest.raises(ExperimentError, match="--agents"):
            agents_status(root)
