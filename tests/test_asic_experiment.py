"""Heterogeneity (R1) end to end: an ASIC switch as experiment host.

Section 4.2: a Tofino-class switch "can be added to the testbed as a
new experiment host and managed through the provided configuration
APIs."  This integration test runs a full pos experiment where the
device under test is an :class:`~repro.netsim.asicswitch.AsicSwitch`
managed over HTTP, while the load generator is a regular SSH-managed
Linux host — two different configuration interfaces inside one
experiment, orchestrated by the same controller.
"""

from __future__ import annotations

import pytest

from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.evaluation.loader import load_experiment
from repro.loadgen.moongen import MoonGen, format_report
from repro.netsim.asicswitch import AsicSwitch, attach_http_control
from repro.netsim.engine import Simulator
from repro.netsim.host import SimHost
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic
from repro.testbed.images import default_registry
from repro.testbed.node import Node
from repro.testbed.power import IpmiController, SwitchablePowerPlug
from repro.testbed.transport import HttpTransport, SshTransport


class AsicRig:
    """LoadGen (SSH) wired through an ASIC switch (HTTP-managed)."""

    def __init__(self):
        self.sim = Simulator()
        # LoadGen: a normal Linux host with two hardware ports.
        self.lg_host = SimHost("riga")
        for iface in self.lg_host.interfaces.values():
            iface.nic = HardwareNic(
                self.sim, f"riga.{iface.name}", line_rate_bps=100e9
            )
        self.moongen = MoonGen(
            self.sim,
            tx_nic=self.lg_host.interfaces["eno1"].nic,
            rx_nic=self.lg_host.interfaces["eno2"].nic,
        )
        # The switch and its management agent.
        self.switch = AsicSwitch(self.sim, ports=2)
        agent_host = SimHost("tofino-agent", interfaces=[])
        agent_host.boot("switch-os", "v1")
        self.agent_host = agent_host
        http = HttpTransport(agent_host)
        attach_http_control(self.switch, http)
        DirectWire(self.sim, self.lg_host.interfaces["eno1"].nic,
                   self.switch.ports[0], length_m=0.0)
        DirectWire(self.sim, self.switch.ports[1],
                   self.lg_host.interfaces["eno2"].nic, length_m=0.0)
        self.nodes = {
            "riga": Node("riga", host=self.lg_host,
                         power=IpmiController(self.lg_host),
                         transport=SshTransport(self.lg_host)),
            # The switch is power-cycled through a dumb power plug and
            # configured over HTTP — a maximally different device.
            "tofino": Node("tofino", host=agent_host,
                           power=SwitchablePowerPlug(agent_host),
                           transport=http),
        }

    def controller(self, tmp_path):
        calendar = Calendar(clock=lambda: 0.0)
        registry = default_registry()
        registry.register("switch-os", "v1", kernel="sdk-9.7")
        return Controller(
            Allocator(calendar, self.nodes),
            registry,
            ResultStore(str(tmp_path / "results"), clock=lambda: 1.0),
        )


def loadgen_measure(ctx):
    rig: AsicRig = ctx.setup
    job = rig.moongen.start(
        rate_pps=int(ctx.variables["pkt_rate"]), frame_size=64, duration_s=0.01
    )
    rig.sim.run(until=rig.sim.now + 0.02)
    ctx.tools.upload("moongen.log", format_report(job))
    ctx.tools.barrier("run-done")


def asic_experiment():
    return Experiment(
        name="asic-forwarding",
        roles=[
            Role(
                name="loadgen",
                node="riga",
                setup=CommandScript("lg-setup", [
                    "ip link set eno1 up",
                    "ip link set eno2 up",
                    "pos barrier setup-done",
                ]),
                measurement=PythonScript("lg-measure", loadgen_measure),
            ),
            Role(
                name="switch",
                node="tofino",
                image=("switch-os", "v1"),
                # The entire switch setup is HTTP requests — the same
                # CommandScript machinery, a different transport.
                setup=CommandScript("switch-setup", [
                    "POST /tables/forward riga.eno2 1",
                    "POST /tables/forward riga.eno1 0",
                    "GET /tables/forward",
                    "pos barrier setup-done",
                ]),
                measurement=CommandScript("switch-measure", [
                    "GET /tables/forward",
                    "pos barrier run-done",
                ]),
            ),
        ],
        variables=Variables(loop_vars={"pkt_rate": [1_000_000, 8_000_000]}),
        duration_s=120.0,
    )


class TestAsicExperiment:
    def test_full_experiment_through_http_managed_switch(self, tmp_path):
        rig = AsicRig()
        controller = rig.controller(tmp_path)
        handle = controller.run(
            asic_experiment(), setup_context_extra={"setup": rig}
        )
        assert handle.completed_runs == 2
        results = load_experiment(handle.result_path)
        # The ASIC forwards 8 Mpps losslessly — no software router can.
        fast = results.filter(pkt_rate=8_000_000)[0].moongen()
        assert fast.rx_mpps == pytest.approx(8.0, rel=0.02)
        assert fast.loss_fraction < 0.01

    def test_switch_rules_captured_in_results(self, tmp_path):
        rig = AsicRig()
        controller = rig.controller(tmp_path)
        handle = controller.run(
            asic_experiment(), setup_context_extra={"setup": rig}
        )
        results = load_experiment(handle.result_path)
        log = results.runs[0].output("switch", "commands.log")
        assert "riga.eno2->1" in log  # the table listing was captured

    def test_unconfigured_switch_blackholes(self, tmp_path):
        """Skipping the switch's setup script loses every packet —
        configuration-by-script is load-bearing on this device too."""
        rig = AsicRig()
        controller = rig.controller(tmp_path)
        experiment = asic_experiment()
        experiment.roles[1].setup = CommandScript(
            "switch-setup", ["pos barrier setup-done"]
        )
        handle = controller.run(
            experiment, setup_context_extra={"setup": rig}, max_runs=1
        )
        results = load_experiment(handle.result_path)
        assert results.runs[0].moongen().rx_mpps == 0.0

    def test_power_plug_reset_works_for_the_switch(self, tmp_path):
        rig = AsicRig()
        controller = rig.controller(tmp_path)
        controller.run(asic_experiment(), setup_context_extra={"setup": rig})
        assert rig.nodes["tofino"].power.power_cycles >= 1
