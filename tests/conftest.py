"""Shared fixtures for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.core.calendar import Calendar
from repro.core.envcache import refresh_all
from repro.testbed.scenarios import build_pos_pair, build_vpos_pair


@pytest.fixture(autouse=True)
def _fresh_env_switches():
    """Re-resolve cached kill switches around every test.

    Kill switches (POS_NETSIM_BATCH, POS_TELEMETRY, ...) are resolved
    once per world and cached; tests that set them via monkeypatch need
    the cache dropped on both sides of the test body.
    """
    refresh_all()
    yield
    refresh_all()


@pytest.fixture
def frozen_clock():
    """A deterministic clock advancing one second per call."""
    counter = itertools.count(1_600_000_000)
    return lambda: float(next(counter))


@pytest.fixture
def calendar(frozen_clock):
    return Calendar(clock=frozen_clock)


@pytest.fixture
def pos_setup():
    """The hardware two-node testbed, freshly built."""
    return build_pos_pair()


@pytest.fixture
def vpos_setup():
    """The virtual two-node testbed, freshly built (seeded)."""
    setup = build_vpos_pair(seed=42)
    yield setup
    if setup.hypervisor is not None:
        setup.hypervisor.stop()


def boot_and_configure(setup):
    """Boot both nodes and run the canonical DuT/LoadGen configuration."""
    dut_name = "tartu" if setup.platform == "pos" else "vtartu"
    lg_name = "riga" if setup.platform == "pos" else "vriga"
    for name in (lg_name, dut_name):
        node = setup.nodes[name]
        node.set_image(setup.images.resolve("debian-buster", "latest"))
        node.reset()
    dut = setup.nodes[dut_name]
    for command in (
        "sysctl -w net.ipv4.ip_forward=1",
        "ip link set eno1 up",
        "ip link set eno2 up",
    ):
        result = dut.execute(command)
        assert result.ok, result.stdout
    lg = setup.nodes[lg_name]
    for command in ("ip link set eno1 up", "ip link set eno2 up"):
        assert lg.execute(command).ok
    return setup
