"""Tests for the Fig. 2 workflow-diagram generator."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.casestudy import build_case_study_experiment
from repro.core.experiment import Experiment, Role
from repro.core.scripts import CommandScript
from repro.core.variables import Variables
from repro.publication.workflow import workflow_outline, workflow_svg


@pytest.fixture
def experiment():
    return build_case_study_experiment("pos", rates=[1, 2], sizes=(64,))


class TestOutline:
    def test_three_phases_in_order(self, experiment):
        outline = workflow_outline(experiment)
        setup = outline.index("phase: setup")
        measure = outline.index("phase: measurement")
        evaluate = outline.index("phase: evaluation")
        assert setup < measure < evaluate

    def test_allocation_lists_nodes(self, experiment):
        outline = workflow_outline(experiment)
        assert "allocate riga, tartu" in outline

    def test_variable_files_listed_per_role(self, experiment):
        outline = workflow_outline(experiment)
        assert "local[loadgen]" in outline and "local[dut]" in outline

    def test_run_count_from_cross_product(self, experiment):
        outline = workflow_outline(experiment)
        assert "runs: 2" in outline

    def test_image_pins_shown(self, experiment):
        outline = workflow_outline(experiment)
        assert "boot debian-buster@20201012T000000Z on tartu" in outline

    def test_scripts_named(self, experiment):
        outline = workflow_outline(experiment)
        assert "run loadgen-setup" in outline
        assert "run dut-measurement per run" in outline


class TestSvg:
    def test_valid_xml(self, experiment):
        ET.fromstring(workflow_svg(experiment))

    def test_band_per_phase(self, experiment):
        svg = workflow_svg(experiment)
        for phase in ("setup phase", "measurement phase", "evaluation phase"):
            assert phase in svg

    def test_labels_escaped(self):
        experiment = Experiment(
            name="a<b>&c",
            roles=[
                Role(
                    name="dut",
                    node="tartu",
                    setup=CommandScript("s<etup", ["true"]),
                    measurement=CommandScript("m&easure", ["true"]),
                )
            ],
            variables=Variables(),
        )
        svg = workflow_svg(experiment)
        ET.fromstring(svg)  # would fail on raw < or &
        assert "a&lt;b&gt;&amp;c" in svg

    def test_file_boxes_for_every_script(self, experiment):
        svg = workflow_svg(experiment)
        assert "loadgen-setup @ riga" in svg
        assert "dut-measurement @ tartu" in svg
        assert "publication script" in svg
