"""Tests for bundling, website generation, and the publish step."""

from __future__ import annotations

import os
import tarfile

import pytest

from repro.core import yamlite
from repro.core.errors import PublicationError
from repro.publication.bundle import (
    build_manifest,
    bundle_artifacts,
    verify_bundle,
)
from repro.publication.publish import publish
from repro.publication.website import (
    generate_html,
    generate_readme,
    generate_website,
)


@pytest.fixture
def artifact_tree(tmp_path):
    """A miniature experiment result folder."""
    root = tmp_path / "2020-10-12_11-20-32_230471"
    root.mkdir()
    yamlite.dump_file(
        {
            "name": "router-exp",
            "description": "demo experiment",
            "user": "alice",
            "runs_completed": 2,
            "runs_failed": 0,
            "roles": [
                {"role": "dut", "node": "tartu", "image": ["debian-buster", "v1"]}
            ],
        },
        root / "experiment.yml",
    )
    yamlite.dump_file({"loop": {"pkt_sz": [64, 1500]}}, root / "variables.yml")
    run_dir = root / "run-000" / "loadgen"
    run_dir.mkdir(parents=True)
    (run_dir / "moongen.log").write_text("[Device: id=0] TX: 0.1 Mpps "
                                         "(total 1 packets with 64 bytes payload)\n")
    figures = root / "figures"
    figures.mkdir()
    (figures / "throughput.svg").write_text("<svg/>")
    return root


class TestManifest:
    def test_lists_every_file(self, artifact_tree):
        manifest = build_manifest(str(artifact_tree))
        paths = {entry["path"] for entry in manifest}
        assert "experiment.yml" in paths
        assert "run-000/loadgen/moongen.log" in paths
        assert "figures/throughput.svg" in paths

    def test_digests_are_correct(self, artifact_tree):
        import hashlib

        manifest = build_manifest(str(artifact_tree))
        entry = next(e for e in manifest if e["path"] == "figures/throughput.svg")
        expected = hashlib.sha256(b"<svg/>").hexdigest()
        assert entry["sha256"] == expected
        assert entry["size"] == 6

    def test_missing_folder_rejected(self):
        with pytest.raises(PublicationError, match="no such"):
            build_manifest("/nonexistent/folder")


class TestBundle:
    def test_archive_contains_everything(self, artifact_tree, tmp_path):
        archive = str(tmp_path / "release.tar.gz")
        bundle_artifacts(str(artifact_tree), archive)
        with tarfile.open(archive) as tar:
            names = tar.getnames()
        assert any(name.endswith("experiment.yml") for name in names)
        assert any("run-000" in name for name in names)

    def test_bundle_is_deterministic(self, artifact_tree, tmp_path):
        """Byte-identical archives for identical artifacts — releases
        can be compared by checksum."""
        a = str(tmp_path / "a.tar.gz")
        b = str(tmp_path / "b.tar.gz")
        bundle_artifacts(str(artifact_tree), a)
        bundle_artifacts(str(artifact_tree), b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_verify_round_trip(self, artifact_tree, tmp_path):
        archive = str(tmp_path / "release.tar.gz")
        bundle_artifacts(str(artifact_tree), archive)
        assert verify_bundle(archive, str(artifact_tree))

    def test_verify_detects_tampering(self, artifact_tree, tmp_path):
        archive = str(tmp_path / "release.tar.gz")
        bundle_artifacts(str(artifact_tree), archive)
        (artifact_tree / "figures" / "throughput.svg").write_text("<svg>changed</svg>")
        assert not verify_bundle(archive, str(artifact_tree))

    def test_empty_folder_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(PublicationError, match="empty"):
            bundle_artifacts(str(empty), str(tmp_path / "x.tar.gz"))


class TestWebsite:
    def test_readme_lists_artifacts_and_metadata(self, artifact_tree):
        readme = generate_readme(str(artifact_tree), "https://example.org/repo")
        assert "# Experiment artifacts: router-exp" in readme
        assert "demo experiment" in readme
        assert "https://example.org/repo" in readme
        assert "run-000/loadgen/moongen.log" in readme
        assert "![throughput.svg](figures/throughput.svg)" in readme

    def test_readme_shows_variables(self, artifact_tree):
        readme = generate_readme(str(artifact_tree))
        assert "pkt_sz" in readme

    def test_html_is_escaped_and_linked(self, artifact_tree):
        html = generate_html(str(artifact_tree), "https://e.org/?a=1&b=2")
        assert "a=1&amp;b=2" in html
        assert '<a href="figures/throughput.svg">' in html

    def test_generate_website_writes_both(self, artifact_tree):
        files = generate_website(str(artifact_tree))
        assert sorted(os.path.basename(f) for f in files) == [
            "README.md", "index.html",
        ]
        for path in files:
            assert os.path.getsize(path) > 0

    def test_missing_folder_rejected(self):
        with pytest.raises(PublicationError):
            generate_readme("/no/such/folder")


class TestPublish:
    def test_full_publication(self, artifact_tree):
        report = publish(str(artifact_tree), repository_url="https://e.org/r",
                         make_plots=False)
        assert os.path.isfile(report.manifest_path)
        assert os.path.isfile(report.archive_path)
        assert len(report.website_files) == 2
        manifest = yamlite.load_file(report.manifest_path)
        assert manifest["files"]

    def test_publish_with_plots_from_real_run(self, tmp_path):
        from repro.casestudy import run_case_study

        handle = run_case_study(
            "pos", str(tmp_path), rates=[1_000_000], sizes=(64,),
            duration_s=0.02, interval_s=0.01,
        )
        report = publish(handle.result_path)
        assert report.figures  # throughput + latency figures generated
        assert verify_bundle(report.archive_path, handle.result_path)
        # A real run carries telemetry, so the dashboard page joins the
        # website and the index links to it.
        assert sorted(os.path.basename(f) for f in report.website_files) == [
            "README.md", "dashboard.html", "index.html",
        ]
        with open(os.path.join(handle.result_path, "dashboard.html")) as f:
            dashboard = f.read()
        assert "Per-run provenance" in dashboard
        assert "<svg" in dashboard  # inline, self-contained charts
        assert "Node health" in dashboard
        with open(os.path.join(handle.result_path, "index.html")) as f:
            assert "dashboard.html" in f.read()

    def test_dashboard_omitted_without_telemetry(self, artifact_tree):
        from repro.publication.website import generate_dashboard

        # The miniature tree has no journal: no dashboard, no error.
        assert generate_dashboard(str(artifact_tree)) is None

    def test_archive_path_default_next_to_folder(self, artifact_tree):
        report = publish(str(artifact_tree), make_plots=False)
        assert report.archive_path == str(artifact_tree) + ".tar.gz"
